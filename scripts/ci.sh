#!/usr/bin/env bash
# CI entry point: build, test, lint. Mirrors the tier-1 gate the repo is
# held to; run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# Crash-recovery e2e: kill-at-every-boundary matrix, seeded disk faults,
# and the supervised `lisa serve` daemon.
cargo test -q -p lisa --test e2e_recovery

# E11 smoke: the durability invariant end to end (asserts internally).
cargo run -q --release -p lisa-experiments --bin e11_recovery > /dev/null
echo "e11 recovery smoke: ok"

# Telemetry smoke: `lisa gate --trace-out/--metrics-out` on the ZooKeeper
# corpus emits valid trace/metrics JSON (validated via core::json, with
# the expected top-level spans and live solver counters) and telemetry
# never perturbs the verdict artifact.
cargo test -q -p lisa --test e2e_telemetry
echo "telemetry smoke: ok"
