#!/usr/bin/env bash
# CI entry point: build, test, lint. Mirrors the tier-1 gate the repo is
# held to; run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings
