#!/usr/bin/env bash
# CI entry point: build, test, lint. Mirrors the tier-1 gate the repo is
# held to; run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# No call sites may depend on deprecated APIs: the old free-function
# entry points are gone, and nothing new may rot behind a deprecation
# warning either.
RUSTFLAGS="-D deprecated" cargo check -q --workspace --all-targets
echo "deny-deprecated check: ok"

# Crash-recovery e2e: kill-at-every-boundary matrix, seeded disk faults,
# and the supervised `lisa serve` daemon.
cargo test -q -p lisa --test e2e_recovery

# E11 smoke: the durability invariant end to end (asserts internally).
cargo run -q --release -p lisa-experiments --bin e11_recovery > /dev/null
echo "e11 recovery smoke: ok"

# Telemetry smoke: `lisa gate --trace-out/--metrics-out` on the ZooKeeper
# corpus emits valid trace/metrics JSON (validated via core::json, with
# the expected top-level spans and live solver counters) and telemetry
# never perturbs the verdict artifact.
cargo test -q -p lisa --test e2e_telemetry
echo "telemetry smoke: ok"

# Cache smoke: the version-scoped caches must be invisible in every
# artifact and pay off on a repeat. Gate a fixture with the cache off and
# on (stdout must be byte-identical, and the two same-target rules must
# share one trace batch), then run the durable gate twice over one state
# dir — the second run must reuse every journaled verdict.
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cat > "$SMOKE/orders.sir" <<'SIR'
struct Order { id: int, paid: bool, cancelled: bool }
global orders: map<int, Order>;
global shipped: map<int, int>;

fn ship_order(o: Order, courier: int) { shipped.put(o.id, courier); }

fn checkout_ship(oid: int, courier: int) {
    let o: Order = orders.get(oid);
    if (o == null || o.paid == false || o.cancelled) { return; }
    ship_order(o, courier);
}

fn seed(id: int, paid: bool, cancelled: bool) {
    orders.put(id, new Order { id: id, paid: paid, cancelled: cancelled });
}

fn test_checkout() { seed(1, true, false); checkout_ship(1, 7); assert(shipped.contains(1), "ok"); }
SIR
cat > "$SMOKE/rules.txt" <<'RULES'
when calling ship_order, require o != null && o.paid == true && o.cancelled == false
when calling ship_order, require o.cancelled == false
RULES
LISA=target/release/lisa
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --cache off > "$SMOKE/off.out"
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --cache on \
    --metrics-out "$SMOKE/m1.json" > "$SMOKE/on.out"
cmp "$SMOKE/off.out" "$SMOKE/on.out"
grep -Eq '"cache\.trace\.hits":[1-9]' "$SMOKE/m1.json"
grep -q '"smt\.session\.opened"' "$SMOKE/m1.json"
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --state "$SMOKE/state" > /dev/null
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --state "$SMOKE/state" \
    --metrics-out "$SMOKE/m2.json" > "$SMOKE/d2.out"
grep -q '2 reused from journal, 0 fresh' "$SMOKE/d2.out"
grep -Eq '"service\.verdicts_reused":2' "$SMOKE/m2.json"
echo "cache smoke: ok"

# Repeated-version cache bench: asserts the warm repeat of an unchanged
# version is >= 2x faster and writes BENCH_cache.json. The same bench
# measures solver-session clause reuse on the multi-check-per-rule
# workload; hold the session to >= 1.5x over fresh per-query solving.
cargo bench -q -p lisa-bench --bench cache > /dev/null
SESSION_SPEEDUP="$(grep -o '"session_speedup":[0-9.]*' BENCH_cache.json | cut -d: -f2)"
awk -v s="$SESSION_SPEEDUP" 'BEGIN { exit !(s >= 1.5) }' \
    || { echo "cache bench: session speedup $SESSION_SPEEDUP < 1.5x"; exit 1; }
echo "cache bench: ok (session reuse speedup ${SESSION_SPEEDUP}x)"

# Parallel gate: worker count must be a throughput knob, never an input.
# The width-1/2/4/8 byte-identity matrix (corpus, CLI, WAL) lives in the
# e2e suite; here we re-gate the cache fixture at --workers 8 against the
# sequential stdout, then run the scaling bench and hold the 4-worker
# speedup to >= 2.0x — on the real cold-corpus workload when the machine
# has >= 4 cores, else on the stall-overlap workload (sleeps overlap even
# on one core, so it isolates scheduler correctness from core count).
cargo test -q -p lisa --test e2e_parallel
cargo test -q -p lisa --test par_prop
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --cache off --workers 8 \
    > "$SMOKE/off-w8.out"
cmp "$SMOKE/off.out" "$SMOKE/off-w8.out"
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --cache on --workers 8 \
    > "$SMOKE/on-w8.out"
cmp "$SMOKE/on.out" "$SMOKE/on-w8.out"
cargo bench -q -p lisa-bench --bench parallel > /dev/null
CORES="$(nproc)"
if [ "$CORES" -ge 4 ]; then
    SPEEDUP="$(grep -o '"cold_speedup_4w":[0-9.]*' BENCH_parallel.json | cut -d: -f2)"
    WORKLOAD="cold corpus"
else
    SPEEDUP="$(grep -o '"stall_speedup_4w":[0-9.]*' BENCH_parallel.json | cut -d: -f2)"
    WORKLOAD="stall overlap ($CORES core(s) < 4, cold-corpus scaling not measurable)"
fi
awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 2.0) }' \
    || { echo "parallel gate: 4-worker speedup $SPEEDUP < 2.0x ($WORKLOAD)"; exit 1; }
echo "parallel gate: ok (4-worker speedup ${SPEEDUP}x, $WORKLOAD)"

# Failover e2e: kill-at-every-frame-boundary byte-identity (cache on and
# off), full-sync bootstrap, seeded stream-fault quarantine sweep, and
# the process-level SIGKILL + promotion test.
cargo test -q -p lisa --test e2e_failover

# Warm-failover smoke: a leader and a follower over TCP, a job settled
# on the leader, the leader SIGKILLed, the follower promoted —
# the mirrored journal must be byte-identical and the promoted daemon
# must answer the same verdict without re-executing anything.
LEADER=""; FOLLOWER=""; SERVE=""
trap 'kill -9 $LEADER $FOLLOWER $SERVE 2>/dev/null || true; rm -rf "$SMOKE"' EXIT
FPORT=$((20000 + RANDOM % 20000))
"$LISA" serve --socket "$SMOKE/leader.sock" --state-root "$SMOKE/lstate" \
    --repl-listen "127.0.0.1:$FPORT" --heartbeat-ms 100 &
LEADER=$!
"$LISA" serve --socket "$SMOKE/follower.sock" --state-root "$SMOKE/fstate" \
    --follow "tcp:127.0.0.1:$FPORT" --heartbeat-ms 100 --heartbeat-timeout-ms 800 &
FOLLOWER=$!
for _ in $(seq 100); do
    "$LISA" submit --socket "$SMOKE/follower.sock" --op stats 2>/dev/null \
        | grep -q '"synced":true' && break
    sleep 0.1
done
"$LISA" submit --socket "$SMOKE/leader.sock" --system "$SMOKE" \
    --rules "$SMOKE/rules.txt" --job-id fo1 > "$SMOKE/fo-leader.out"
grep -q '"decision":"PASS"' "$SMOKE/fo-leader.out"
for _ in $(seq 100); do
    "$LISA" submit --socket "$SMOKE/follower.sock" --op stats 2>/dev/null \
        | grep -q '"lag_frames":0' && break
    sleep 0.1
done
cmp "$SMOKE/lstate/fo1/wal.log" "$SMOKE/fstate/fo1/wal.log"
kill -9 "$LEADER"
for _ in $(seq 200); do
    "$LISA" submit --socket "$SMOKE/follower.sock" --op stats \
        > "$SMOKE/fo-stats.json" 2>/dev/null || true
    grep -q '"role":"leader"' "$SMOKE/fo-stats.json" && break
    sleep 0.1
done
grep -q '"role":"leader"' "$SMOKE/fo-stats.json"
grep -Eq '"repl\.frames_applied":[1-9]' "$SMOKE/fo-stats.json"
"$LISA" submit --socket "$SMOKE/follower.sock" --system "$SMOKE" \
    --rules "$SMOKE/rules.txt" --job-id fo1 > "$SMOKE/fo-promoted.out"
grep -q '"decision":"PASS"' "$SMOKE/fo-promoted.out"
grep -q '"reused":2' "$SMOKE/fo-promoted.out"
grep -q '"fresh":0' "$SMOKE/fo-promoted.out"
"$LISA" submit --socket "$SMOKE/follower.sock" --op shutdown > /dev/null
wait "$FOLLOWER"
echo "failover smoke: ok"

# Multi-tenant serve e2e: transport byte-parity, weighted-fair dequeue,
# structured load-shedding, bounded job ids, per-tenant stats.
cargo test -q -p lisa --test e2e_serve_load

# Serve-load smoke: a starved daemon (1 worker, 2-deep queues) under a
# TCP burst must answer every connection, shed the overflow with
# structured retry hints, expose per-tenant queue state in `stats`, and
# drain cleanly on shutdown.
SPORT=$((20000 + RANDOM % 20000))
"$LISA" serve --socket "$SMOKE/load.sock" --state-root "$SMOKE/loadstate" \
    --listen "127.0.0.1:$SPORT" --workers 1 --queue-cap 2 --tenant-cap 2 \
    --tenants "alpha:4,beta:2,gamma:1,delta:1" &
SERVE=$!
# serve_load itself asserts zero lost and zero malformed replies.
target/release/serve_load --addr "127.0.0.1:$SPORT" --clients 48 --window-ms 100 \
    > "$SMOKE/load.out"
grep -Eq '"shed":[1-9]' "$SMOKE/load.out"
grep -q '"alpha":{"weight":4,"queued":' "$SMOKE/load.out"
grep -q '"retry_budget":' "$SMOKE/load.out"
target/release/serve_load --addr "127.0.0.1:$SPORT" --clients 4 --window-ms 0 \
    --shutdown > /dev/null
wait "$SERVE"
SERVE=""
echo "serve-load smoke: ok"

# Multi-tenant serve bench: >=1000 concurrent TCP clients across 4
# skew-weighted tenants; asserts zero lost/malformed replies and a
# structurally-shedding saturation phase, then writes BENCH_serve.json.
cargo run -q --release -p lisa-bench --bin serve_load > /dev/null
echo "serve bench: ok"
