#!/usr/bin/env bash
# CI entry point: build, test, lint. Mirrors the tier-1 gate the repo is
# held to; run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# Crash-recovery e2e: kill-at-every-boundary matrix, seeded disk faults,
# and the supervised `lisa serve` daemon.
cargo test -q -p lisa --test e2e_recovery

# E11 smoke: the durability invariant end to end (asserts internally).
cargo run -q --release -p lisa-experiments --bin e11_recovery > /dev/null
echo "e11 recovery smoke: ok"

# Telemetry smoke: `lisa gate --trace-out/--metrics-out` on the ZooKeeper
# corpus emits valid trace/metrics JSON (validated via core::json, with
# the expected top-level spans and live solver counters) and telemetry
# never perturbs the verdict artifact.
cargo test -q -p lisa --test e2e_telemetry
echo "telemetry smoke: ok"

# Cache smoke: the version-scoped caches must be invisible in every
# artifact and pay off on a repeat. Gate a fixture with the cache off and
# on (stdout must be byte-identical, and the two same-target rules must
# share one trace batch), then run the durable gate twice over one state
# dir — the second run must reuse every journaled verdict.
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cat > "$SMOKE/orders.sir" <<'SIR'
struct Order { id: int, paid: bool, cancelled: bool }
global orders: map<int, Order>;
global shipped: map<int, int>;

fn ship_order(o: Order, courier: int) { shipped.put(o.id, courier); }

fn checkout_ship(oid: int, courier: int) {
    let o: Order = orders.get(oid);
    if (o == null || o.paid == false || o.cancelled) { return; }
    ship_order(o, courier);
}

fn seed(id: int, paid: bool, cancelled: bool) {
    orders.put(id, new Order { id: id, paid: paid, cancelled: cancelled });
}

fn test_checkout() { seed(1, true, false); checkout_ship(1, 7); assert(shipped.contains(1), "ok"); }
SIR
cat > "$SMOKE/rules.txt" <<'RULES'
when calling ship_order, require o != null && o.paid == true && o.cancelled == false
when calling ship_order, require o.cancelled == false
RULES
LISA=target/release/lisa
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --cache off > "$SMOKE/off.out"
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --cache on \
    --metrics-out "$SMOKE/m1.json" > "$SMOKE/on.out"
cmp "$SMOKE/off.out" "$SMOKE/on.out"
grep -Eq '"cache\.trace\.hits":[1-9]' "$SMOKE/m1.json"
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --state "$SMOKE/state" > /dev/null
"$LISA" gate --system "$SMOKE" --rules "$SMOKE/rules.txt" --state "$SMOKE/state" \
    --metrics-out "$SMOKE/m2.json" > "$SMOKE/d2.out"
grep -q '2 reused from journal, 0 fresh' "$SMOKE/d2.out"
grep -Eq '"service\.verdicts_reused":2' "$SMOKE/m2.json"
echo "cache smoke: ok"

# Repeated-version cache bench: asserts the warm repeat of an unchanged
# version is >= 2x faster and writes BENCH_cache.json.
cargo bench -q -p lisa-bench --bench cache > /dev/null
echo "cache bench: ok"
