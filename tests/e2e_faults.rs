//! End-to-end fault-injection suite for the enforcement gate.
//!
//! The resilience contract under test: the gate never aborts — every
//! registered rule gets a report no matter what faults fire; rules the
//! fault plan does not touch keep byte-identical verdicts; fail-closed
//! blocks on engine errors where fail-open passes with a warning; and the
//! CLI reserves exit code 2 for true engine errors (usage/load failures,
//! or a fail-closed gate that could not complete a check).

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::process::Command;
use std::time::Duration;

use lisa::{
    FailMode, FaultInjector, FaultKind, FaultPlan, Gate, GateDecision, GateOptions,
    PipelineConfig, RuleReport, RuleRegistry, TestSelection,
};
use lisa_analysis::TargetSpec;
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_lang::Program;
use lisa_oracle::SemanticRule;
use lisa_util::RetryPolicy;

/// A small multi-subsystem version: an ephemeral-session path (with or
/// without the `closing` guard), a fully guarded checkout path, and a
/// guarded audit path. Four rules target it so random fault plans have
/// room to hit some rules and spare others.
fn version(fixed: bool) -> SystemVersion {
    let prep_guard =
        if fixed { "session == null || session.closing" } else { "session == null" };
    let src = format!(
        "struct Session {{ id: int, closing: bool }}\n\
         struct Order {{ id: int, paid: bool }}\n\
         global sessions: map<int, Session>;\n\
         global orders: map<int, Order>;\n\
         fn create_ephemeral(s: Session, path: str) {{}}\n\
         fn ship(o: Order) {{}}\n\
         fn audit(n: int) {{}}\n\
         fn prep_create(sid: int, path: str) {{\n\
             let session: Session = sessions.get(sid);\n\
             if ({prep_guard}) {{ return; }}\n\
             create_ephemeral(session, path);\n\
         }}\n\
         fn checkout(oid: int) {{\n\
             let o: Order = orders.get(oid);\n\
             if (o == null || o.paid == false) {{ return; }}\n\
             ship(o);\n\
         }}\n\
         fn audit_all(n: int) {{ if (n > 0) {{ audit(n); }} }}\n\
         fn test_prep() {{ sessions.put(1, new Session {{ id: 1 }}); prep_create(1, \"/a\"); }}\n\
         fn test_checkout() {{ orders.put(2, new Order {{ id: 2, paid: true }}); checkout(2); }}\n\
         fn test_audit() {{ audit_all(3); }}"
    );
    let p = Program::parse_single("sys", &src).expect("parse");
    let tests = discover_tests(&p, "test_");
    SystemVersion::new(if fixed { "fixed" } else { "regressed" }, p, tests)
}

fn registry() -> RuleRegistry {
    let mut reg = RuleRegistry::new();
    for (id, desc, callee, cond) in [
        ("ZK-1208", "no ephemeral create on closing session", "create_ephemeral",
         "s != null && s.closing == false"),
        ("SHOP-1", "never ship unpaid orders", "ship", "o != null && o.paid == true"),
        ("SHOP-2", "never ship null orders", "ship", "o != null"),
        ("AUD-1", "audit counts are positive", "audit", "n > 0"),
    ] {
        reg.register(
            SemanticRule::new(id, desc, TargetSpec::Call { callee: callee.into() }, cond)
                .expect("rule"),
        );
    }
    reg
}

fn rule_ids(reg: &RuleRegistry) -> Vec<String> {
    reg.rules().iter().map(|r| r.id.clone()).collect()
}

fn config() -> PipelineConfig {
    PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
}

/// Byte-exact verdict fingerprint of a rule report: every chain's label
/// and rendered path plus the fold counts. Deliberately excludes wall
/// times, which legitimately vary run to run.
fn fingerprint(r: &RuleReport) -> String {
    let mut s = String::new();
    for c in &r.chains {
        s.push_str(&format!("[{}] {}\n", c.verdict.label(), c.rendered));
    }
    s.push_str(&format!(
        "verified={} violated={} not_covered={} sanity_ok={}",
        r.verified_count(),
        r.violated_count(),
        r.not_covered_count(),
        r.sanity_ok
    ));
    s
}

fn fingerprints(reports: &[RuleReport]) -> HashMap<String, String> {
    reports.iter().map(|r| (r.rule_id.clone(), fingerprint(r))).collect()
}

/// Which rules a plan will fault (probe a throwaway injector: `arm`
/// answers `Some` on the first attempt for every injected kind).
fn faulted_rules(plan: &FaultPlan, ids: &[String]) -> HashSet<String> {
    let probe = FaultInjector::new(plan.clone());
    ids.iter().filter(|id| probe.arm(id).is_some()).cloned().collect()
}

fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
    }
}

#[test]
fn twenty_seeded_fault_plans_never_abort_and_spare_unaffected_rules() {
    let reg = registry();
    let v = version(false);
    let cfg = config();
    let ids = rule_ids(&reg);
    let clean = Gate::new(&reg).config(cfg.clone()).workers(2).run(&v);
    assert_eq!(clean.decision, GateDecision::Block, "baseline: ZK-1208 regression");
    let clean_fp = fingerprints(&clean.reports);

    for seed in 0..20u64 {
        let plan = FaultPlan::random(seed, 0.5, &ids);
        let faulted = faulted_rules(&plan, &ids);
        let options = GateOptions {
            faults: Some(FaultInjector::new(plan)),
            retry: quick_retry(),
            ..GateOptions::default()
        };
        let report = Gate::new(&reg).config(cfg.clone()).workers(2).options(options).run(&v);
        assert_eq!(
            report.reports.len(),
            reg.len(),
            "seed {seed}: every rule must be reported"
        );
        for r in &report.reports {
            if faulted.contains(&r.rule_id) {
                continue;
            }
            assert_eq!(
                fingerprint(r),
                clean_fp[&r.rule_id],
                "seed {seed}: unaffected rule {} drifted from the clean run",
                r.rule_id
            );
        }
        // Fail-closed: any engine error must surface as a block, never a
        // silent pass.
        if report.engine_errors > 0 {
            assert_eq!(report.decision, GateDecision::Block, "seed {seed}");
            assert!(report.review_needed > 0, "seed {seed}");
        }
    }
}

#[test]
fn each_fault_kind_is_contained_to_its_rule() {
    let reg = registry();
    let v = version(false);
    let cfg = config();
    let ids = rule_ids(&reg);
    let clean_fp = fingerprints(&Gate::new(&reg).config(cfg.clone()).workers(2).run(&v).reports);

    for kind in [
        FaultKind::Panic,
        FaultKind::TransientPanic,
        FaultKind::SolverExhaustion,
        FaultKind::MalformedCondition,
        FaultKind::Stall,
    ] {
        let options = GateOptions {
            faults: Some(FaultInjector::new(FaultPlan::new().inject("SHOP-1", kind))),
            retry: RetryPolicy::none(),
            ..GateOptions::default()
        };
        let report = Gate::new(&reg).config(cfg.clone()).workers(2).options(options).run(&v);
        assert_eq!(report.reports.len(), reg.len(), "{kind:?}: report must be complete");
        for id in &ids {
            if id == "SHOP-1" {
                continue;
            }
            let r = report.reports.iter().find(|r| &r.rule_id == id).expect("report");
            assert_eq!(
                fingerprint(r),
                clean_fp[id],
                "{kind:?} on SHOP-1 must not disturb {id}"
            );
        }
        let shop = report.reports.iter().find(|r| r.rule_id == "SHOP-1").expect("SHOP-1");
        match kind {
            FaultKind::Panic | FaultKind::TransientPanic | FaultKind::MalformedCondition => {
                // No retries allowed, so even the transient blip becomes a
                // contained engine error.
                assert!(shop.has_engine_error(), "{kind:?} should be an engine error");
                assert_eq!(report.engine_errors, 1, "{kind:?}");
            }
            FaultKind::SolverExhaustion => {
                // Budget exhaustion degrades to uncertainty, never to a
                // crash or a phantom violation.
                assert!(!shop.has_engine_error(), "{kind:?}");
                assert_eq!(shop.violated_count(), 0, "{kind:?}");
                assert_eq!(report.engine_errors, 0, "{kind:?}");
            }
            FaultKind::Stall => {
                // A slow stage changes timing only.
                assert_eq!(fingerprint(shop), clean_fp["SHOP-1"], "{kind:?}");
                assert_eq!(report.engine_errors, 0, "{kind:?}");
            }
        }
    }
}

#[test]
fn fail_closed_blocks_where_fail_open_passes_with_warning() {
    let reg = registry();
    let v = version(true); // no genuine violations
    let cfg = config();
    let plan = || FaultPlan::new().inject("AUD-1", FaultKind::Panic);

    let closed = Gate::new(&reg)
        .config(cfg.clone())
        .workers(2)
        .options(GateOptions {
            faults: Some(FaultInjector::new(plan())),
            retry: RetryPolicy::none(),
            ..GateOptions::default()
        })
        .run(&v);
    assert_eq!(closed.decision, GateDecision::Block);
    assert_eq!(closed.engine_errors, 1);
    assert!(closed.review_needed >= 1);

    let open = Gate::new(&reg)
        .config(cfg)
        .workers(2)
        .options(GateOptions {
            fail_mode: FailMode::Open,
            faults: Some(FaultInjector::new(plan())),
            retry: RetryPolicy::none(),
            ..GateOptions::default()
        })
        .run(&v);
    assert_eq!(open.decision, GateDecision::Pass);
    assert_eq!(open.engine_errors, 1);
    assert!(
        open.warnings.iter().any(|w| w.contains("engine error")),
        "fail-open must warn: {:?}",
        open.warnings
    );
}

#[test]
fn panic_isolation_is_deterministic_across_worker_counts() {
    let reg = registry();
    let v = version(false);
    let cfg = config();
    let ids = rule_ids(&reg);
    for seed in 0..8u64 {
        let run = |workers: usize| {
            let options = GateOptions {
                faults: Some(FaultInjector::new(FaultPlan::random(seed, 0.5, &ids))),
                retry: RetryPolicy::none(),
                ..GateOptions::default()
            };
            Gate::new(&reg).config(cfg.clone()).workers(workers).options(options).run(&v)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.decision, par.decision, "seed {seed}");
        assert_eq!(seq.engine_errors, par.engine_errors, "seed {seed}");
        assert_eq!(fingerprints(&seq.reports), fingerprints(&par.reports), "seed {seed}");
    }
}

#[test]
fn deadline_plus_faults_still_produce_a_complete_decision() {
    let reg = registry();
    let v = version(false);
    let options = GateOptions {
        deadline: Some(Duration::ZERO),
        faults: Some(FaultInjector::new(FaultPlan::new().inject("SHOP-2", FaultKind::Panic))),
        retry: RetryPolicy::none(),
        ..GateOptions::default()
    };
    let report = Gate::new(&reg).config(config()).workers(1).options(options).run(&v);
    assert_eq!(report.reports.len(), reg.len());
    assert!(report.engine_errors >= 1, "the injected panic still fires in degraded mode");
    assert!(report.degraded_rules >= 1, "past-deadline rules run degraded");
    assert!(report.warnings.iter().any(|w| w.contains("deadline")), "{:?}", report.warnings);
    // Fail-closed + engine error: the gate must block rather than guess.
    assert_eq!(report.decision, GateDecision::Block);
}

// ---------------------------------------------------------------------------
// CLI exit-code contract: 2 is reserved for true engine errors.
// ---------------------------------------------------------------------------

const CLI_SYSTEM: &str = r#"
struct Session { id: int, closing: bool }
global sessions: map<int, Session>;

fn create_ephemeral(s: Session, path: str) {}

fn prep_create(sid: int, path: str) {
    let session: Session = sessions.get(sid);
    if (session == null || session.closing) { return; }
    create_ephemeral(session, path);
}

fn test_prep() { sessions.put(1, new Session { id: 1 }); prep_create(1, "/a"); }
"#;

const CLI_RULES: &str = "# shield rule\n\
    when calling create_ephemeral, require s != null && s.closing == false\n";

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("lisa-faults-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut f = std::fs::File::create(dir.join("sys.sir")).expect("sir");
        f.write_all(CLI_SYSTEM.as_bytes()).expect("write");
        let mut f = std::fs::File::create(dir.join("rules.txt")).expect("rules");
        f.write_all(CLI_RULES.as_bytes()).expect("write");
        Fixture { dir }
    }

    fn gate(&self, extra: &[&str]) -> (i32, String) {
        let sys = self.dir.to_string_lossy().into_owned();
        let rules = self.dir.join("rules.txt").to_string_lossy().into_owned();
        let mut args = vec!["gate", "--system", &sys, "--rules", &rules];
        args.extend_from_slice(extra);
        let out = Command::new(env!("CARGO_BIN_EXE_lisa"))
            .args(&args)
            .output()
            .expect("spawn lisa");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code().unwrap_or(-1), text)
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Find a seed whose random plan (rate 1.0) assigns the wanted kind to
/// the CLI's single rule. `FaultPlan::random` is deterministic in the
/// seed, so the search result is stable.
fn seed_for_kind(rule_id: &str, want: FaultKind) -> u64 {
    let ids = vec![rule_id.to_string()];
    (0..500u64)
        .find(|&seed| {
            let probe = FaultInjector::new(FaultPlan::random(seed, 1.0, &ids));
            probe.arm(rule_id) == Some(want)
        })
        .expect("a seed yielding the wanted fault kind")
}

#[test]
fn cli_reserves_exit_two_for_true_engine_errors() {
    let fx = Fixture::new("exit2");
    // The rules file is `# comment` on line 1, the rule on line 2 → id rule-2.
    let seed = seed_for_kind("rule-2", FaultKind::Panic).to_string();

    // Clean gate on a guarded system: exit 0.
    let (code, out) = fx.gate(&[]);
    assert_eq!(code, 0, "{out}");

    // Injected panic under fail-closed (default): a true engine error, exit 2.
    let (code, out) = fx.gate(&["--fault-seed", &seed, "--fault-rate", "1.0"]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("engine error"), "{out}");
    assert!(out.contains("decision: BLOCK"), "{out}");

    // Same fault under fail-open: pass with a warning, exit 0.
    let (code, out) = fx.gate(&[
        "--fault-seed", &seed, "--fault-rate", "1.0", "--fail-mode", "open",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("warning:"), "{out}");

    // Solver-budget exhaustion is uncertainty, not an engine error: the
    // gate may ask for review but must not claim the engine failed.
    let (code, out) = fx.gate(&["--max-solver-conflicts", "0"]);
    assert_ne!(code, 2, "budget exhaustion is not an engine error: {out}");
}

#[test]
fn cli_violations_keep_exit_one_even_with_resilience_flags() {
    let fx = Fixture::new("exit1");
    // Drop the closing guard: a genuine violation.
    let regressed = CLI_SYSTEM.replace(
        "if (session == null || session.closing) { return; }",
        "if (session == null) { return; }",
    );
    std::fs::write(fx.dir.join("sys.sir"), regressed).expect("write");
    let (code, out) = fx.gate(&["--fail-mode", "closed", "--deadline-ms", "60000"]);
    assert_eq!(code, 1, "violations are exit 1, not 2: {out}");
    assert!(out.contains("decision: BLOCK"), "{out}");
}
