//! End-to-end tests for the `lisa` CLI: load a system from `.sir` files,
//! author rules from a rules file, and gate — exit codes double as the
//! CI contract.

use std::io::Write as _;
use std::process::Command;

const SYSTEM: &str = r#"
struct Order { id: int, paid: bool, cancelled: bool }
global orders: map<int, Order>;
global shipped: map<int, int>;

fn ship_order(o: Order, courier: int) { shipped.put(o.id, courier); }

fn checkout_ship(oid: int, courier: int) {
    let o: Order = orders.get(oid);
    if (o == null || o.paid == false || o.cancelled) { return; }
    ship_order(o, courier);
}

fn admin_reship(oid: int, courier: int) {
    let ord: Order = orders.get(oid);
    if (ord == null || ord.paid == false) { return; }
    ship_order(ord, courier);
}

fn seed(id: int, paid: bool, cancelled: bool) {
    orders.put(id, new Order { id: id, paid: paid, cancelled: cancelled });
}

fn test_checkout() { seed(1, true, false); checkout_ship(1, 7); assert(shipped.contains(1), "ok"); }
fn test_reship() { seed(2, true, false); admin_reship(2, 9); assert(shipped.contains(2), "ok"); }
"#;

const RULES: &str = "# shield rule\n\
    when calling ship_order, require o != null && o.paid == true && o.cancelled == false\n";

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("lisa-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut f = std::fs::File::create(dir.join("orders.sir")).expect("sir");
        f.write_all(SYSTEM.as_bytes()).expect("write");
        let mut f = std::fs::File::create(dir.join("rules.txt")).expect("rules");
        f.write_all(RULES.as_bytes()).expect("write");
        Fixture { dir }
    }

    fn run(&self, args: &[&str]) -> (i32, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_lisa"))
            .args(args)
            .output()
            .expect("spawn lisa");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code().unwrap_or(-1), text)
    }

    fn system(&self) -> String {
        self.dir.to_string_lossy().into_owned()
    }

    fn rules(&self) -> String {
        self.dir.join("rules.txt").to_string_lossy().into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn gate_blocks_the_unguarded_path_with_exit_code_1() {
    let fx = Fixture::new("gate");
    let (code, out) = fx.run(&["gate", "--system", &fx.system(), "--rules", &fx.rules()]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("decision: BLOCK"), "{out}");
    assert!(out.contains("admin_reship"), "{out}");
    assert!(out.contains("o.cancelled = true"), "{out}");
}

#[test]
fn check_reports_chain_verdicts() {
    let fx = Fixture::new("check");
    let (code, out) = fx.run(&["check", "--system", &fx.system(), "--rules", &fx.rules()]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("[VIOLATED] admin_reship"), "{out}");
    assert!(out.contains("[verified] checkout_ship"), "{out}");
}

#[test]
fn suggest_mines_existing_guards() {
    let fx = Fixture::new("suggest");
    let (code, out) =
        fx.run(&["suggest", "--system", &fx.system(), "--target", "ship_order"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("o != null && o.paid && !o.cancelled"), "{out}");
}

#[test]
fn paths_lists_execution_chains() {
    let fx = Fixture::new("paths");
    let (code, out) = fx.run(&["paths", "--system", &fx.system(), "--target", "ship_order"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("2 chain(s)"), "{out}");
    assert!(out.contains("checkout_ship [ship_order]"), "{out}");
    assert!(out.contains("admin_reship [ship_order]"), "{out}");
}

#[test]
fn usage_errors_exit_2() {
    let fx = Fixture::new("usage");
    let (code, out) = fx.run(&["frobnicate"]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("usage:"), "{out}");
    let (code, _) = fx.run(&["gate", "--system", &fx.system()]);
    assert_eq!(code, 2);
    let (code, out) = fx.run(&["gate", "--system", "/no/such/dir", "--rules", &fx.rules()]);
    assert_eq!(code, 2, "{out}");
}

#[test]
fn bad_rules_file_reports_line() {
    let fx = Fixture::new("badrules");
    std::fs::write(fx.dir.join("bad.txt"), "please be correct\n").expect("write");
    let bad = fx.dir.join("bad.txt").to_string_lossy().into_owned();
    let (code, out) = fx.run(&["gate", "--system", &fx.system(), "--rules", &bad]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains(":1:"), "error should carry the line: {out}");
}

#[test]
fn gate_passes_after_the_fix() {
    let fx = Fixture::new("fixed");
    // Apply the fix the gate asks for.
    let fixed = SYSTEM.replace(
        "if (ord == null || ord.paid == false) { return; }",
        "if (ord == null || ord.paid == false || ord.cancelled) { return; }",
    );
    std::fs::write(fx.dir.join("orders.sir"), fixed).expect("write");
    let (code, out) = fx.run(&["gate", "--system", &fx.system(), "--rules", &fx.rules()]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("decision: PASS"), "{out}");
}

#[test]
fn json_format_emits_machine_readable_gate() {
    let fx = Fixture::new("json");
    let (code, out) = fx.run(&[
        "gate",
        "--system",
        &fx.system(),
        "--rules",
        &fx.rules(),
        "--format",
        "json",
    ]);
    assert_eq!(code, 1, "{out}");
    let line = out.lines().find(|l| l.starts_with('{')).expect("json line");
    // The schema is versioned and the version leads the document — CI
    // consumers pin on this, so a bump must be deliberate.
    assert!(line.starts_with("{\"schema_version\":1,"), "{line}");
    assert!(line.contains("\"decision\":\"BLOCK\""), "{line}");
    assert!(line.contains("\"verdict\":\"VIOLATED\""), "{line}");
    assert!(line.ends_with('}'), "{line}");
    // No human-readable noise in json mode.
    assert!(!out.contains("== LISA gate"), "{out}");
}
