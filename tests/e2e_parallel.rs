//! End-to-end parallel-enforcement suite.
//!
//! The work-stealing scheduler's external contract: `--workers N` is a
//! throughput knob, never an input. Gate stdout (human and JSON), exit
//! codes, and the durable journal must be byte-identical at widths 1, 2,
//! 4, and 8 across the whole corpus; `--workers auto` resolves to the
//! machine; the resolved width surfaces only on the verbose stderr
//! channel; and a parallel run publishes `sched.*` telemetry.

use std::path::PathBuf;
use std::process::Command;

use lisa::report::render_enforcement;
use lisa::{Gate, GateDecision, GateOptions, PipelineConfig, RuleRegistry, TestSelection};
use lisa_analysis::TargetSpec;
use lisa_corpus::{all_cases, case};
use lisa_oracle::{infer_rules, rescope, Scope};

fn config() -> PipelineConfig {
    PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
}

// ---------------------------------------------------------------------------
// Library level: every corpus case, every width, one report.
// ---------------------------------------------------------------------------

#[test]
fn every_corpus_case_renders_identically_at_every_width() {
    for case in all_cases() {
        let Ok(out) = infer_rules(case.original_ticket()) else { continue };
        let mut reg = RuleRegistry::new();
        for rule in out.rules {
            let rule = match &rule.target {
                TargetSpec::Call { .. } => rule,
                _ => rescope(&rule, Scope::Generalized).expect("rescope"),
            };
            reg.register(rule);
        }
        for version in [&case.versions.regressed, &case.versions.fixed] {
            let baseline =
                render_enforcement(&Gate::new(&reg).config(config()).workers(1).run(version));
            for workers in [2, 4, 8] {
                let report = Gate::new(&reg).config(config()).workers(workers).run(version);
                assert_eq!(
                    render_enforcement(&report),
                    baseline,
                    "{}@{}: report drifted at width {workers}",
                    case.meta.id,
                    version.label
                );
            }
        }
    }
}

#[test]
fn zero_deadline_at_width_8_degrades_every_rule_and_still_decides() {
    let zk = case("zk-ephemeral").expect("case");
    let mut reg = RuleRegistry::new();
    let out = infer_rules(zk.original_ticket()).expect("rules");
    for rule in out.rules {
        reg.register(rule);
    }
    let options = GateOptions {
        deadline: Some(std::time::Duration::ZERO),
        ..GateOptions::default()
    };
    let report =
        Gate::new(&reg).config(config()).workers(8).options(options).run(&zk.versions.regressed);
    assert_eq!(report.degraded_rules, report.reports.len(), "every rule past the deadline");
    assert!(report.reports.iter().all(|r| r.degraded));
    assert!(report.warnings.iter().any(|w| w.contains("deadline")));
    // The fixed-path sanity check is allowed to miss the bug (it runs one
    // test under tight budgets); what it must never do is fail to decide
    // or drop a rule from the report.
    assert_eq!(report.reports.len(), reg.len(), "every rule still settles");
    assert!(matches!(report.decision, GateDecision::Pass | GateDecision::Block));
    assert_eq!(report.workers, 8, "resolved width is reported for introspection");
}

// ---------------------------------------------------------------------------
// CLI level: stdout bytes, auto resolution, stderr surfacing, telemetry.
// ---------------------------------------------------------------------------

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    /// Dump the regressed ZooKeeper corpus version to `.sir` files plus
    /// two rules (the ground truth and a second target) so the gate has
    /// real rule- and leaf-level fan-out to schedule.
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("lisa-e2e-par-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sys")).expect("mkdir");
        let case = case("zk-ephemeral").expect("zookeeper corpus case");
        for m in &case.versions.regressed.program.modules {
            let name = m.name.replace(['/', '\\'], "_");
            std::fs::write(dir.join(format!("sys/{name}.sir")), &m.source).expect("sir");
        }
        let callee = case.ground_truth.target.callee();
        let rules = format!(
            "when calling {callee}, require {}\n\
             when calling {callee}, require s != null\n",
            case.ground_truth.condition_src,
        );
        std::fs::write(dir.join("rules.txt"), rules).expect("rules");
        Fixture { dir }
    }

    fn path(&self, rel: &str) -> String {
        self.dir.join(rel).to_string_lossy().into_owned()
    }

    fn gate(&self, extra: &[&str]) -> (i32, Vec<u8>, String) {
        let mut args = vec!["gate", "--system", &self.path("sys"), "--rules", &self.path("rules.txt")]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>();
        args.extend(extra.iter().map(|s| s.to_string()));
        let out =
            Command::new(env!("CARGO_BIN_EXE_lisa")).args(&args).output().expect("spawn lisa");
        (
            out.status.code().unwrap_or(-1),
            out.stdout,
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn cli_stdout_is_byte_identical_across_widths_and_cache_settings() {
    let fx = Fixture::new("stdout");
    let (code1, out1, _) = fx.gate(&["--workers", "1"]);
    assert_eq!(code1, 1, "regressed version must block");
    for workers in ["2", "4", "8", "auto"] {
        for cache in ["on", "off"] {
            let (code, out, _) = fx.gate(&["--workers", workers, "--cache", cache]);
            assert_eq!(code, code1, "--workers {workers} --cache {cache}: exit code drifted");
            assert_eq!(
                out, out1,
                "--workers {workers} --cache {cache}: stdout drifted from width 1"
            );
        }
    }
}

#[test]
fn cli_durable_wal_is_byte_identical_across_widths() {
    let fx = Fixture::new("wal");
    let (code1, out1, _) = fx.gate(&["--workers", "1", "--state", &fx.path("state-1")]);
    let (code8, out8, _) = fx.gate(&["--workers", "8", "--state", &fx.path("state-8")]);
    assert_eq!(code8, code1);
    assert_eq!(out8, out1, "durable summary drifted across widths");
    let wal1 = std::fs::read(fx.dir.join("state-1/wal.log")).expect("wal 1");
    let wal8 = std::fs::read(fx.dir.join("state-8/wal.log")).expect("wal 8");
    assert_eq!(wal8, wal1, "wal.log bytes must not depend on worker count");
}

#[test]
fn cli_rejects_bad_workers_and_accepts_auto() {
    let fx = Fixture::new("flags");
    let (code, _, stderr) = fx.gate(&["--workers", "many"]);
    assert_eq!(code, 2, "bad --workers must be a usage error");
    assert!(stderr.contains("expected a number or `auto`"), "stderr: {stderr}");
    let (code, _, _) = fx.gate(&["--workers", "auto"]);
    assert_eq!(code, 1, "auto must run the gate normally");
}

#[test]
fn verbose_stderr_surfaces_resolved_width_and_stdout_stays_clean() {
    let fx = Fixture::new("verbose");
    let (_, quiet_out, _) = fx.gate(&["--workers", "4"]);
    let (_, out, stderr) = fx.gate(&["--workers", "4", "--verbose"]);
    assert_eq!(out, quiet_out, "--verbose must not touch stdout");
    assert!(
        stderr.contains("scheduler width 4 (--workers 4)"),
        "verbose stderr must name the resolved width: {stderr}"
    );
    let (_, _, stderr_auto) = fx.gate(&["--workers", "auto", "--verbose"]);
    assert!(
        stderr_auto.contains("(--workers 0)"),
        "auto resolves through 0: {stderr_auto}"
    );
}

#[test]
fn parallel_gate_publishes_sched_telemetry() {
    let fx = Fixture::new("metrics");
    let metrics = fx.path("metrics.json");
    let (_, _, _) = fx.gate(&["--workers", "4", "--metrics-out", &metrics]);
    let snapshot = std::fs::read_to_string(&metrics).expect("metrics snapshot");
    for counter in
        ["sched.tasks_spawned", "sched.rule_tasks", "sched.leaf_tasks", "sched.tasks_stolen"]
    {
        assert!(snapshot.contains(counter), "metrics missing {counter}: {snapshot}");
    }
    assert!(
        snapshot.contains("sched.worker_busy_us") && snapshot.contains("sched.queue_depth_peak"),
        "metrics missing sched histograms: {snapshot}"
    );
    assert!(
        snapshot.contains("cache.analysis.lock_acquires")
            && snapshot.contains("cache.smt.lock_acquires"),
        "metrics missing cache lock counters: {snapshot}"
    );
}
