//! End-to-end tests for the multi-tenant `lisa serve --listen` TCP gate:
//! verdict replies are byte-identical across the unix and TCP
//! transports, weighted-fair dequeue keeps a noisy tenant from starving
//! a quiet one, saturation is answered with structured sheds (never
//! silence), oversized job ids get a structured bad-request, and the
//! `stats` op exposes per-tenant depth and tail latency.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa::Json;

/// Small gate fixture (passes): cheap jobs for protocol-level tests.
const SYSTEM: &str = "struct Session { id: int, closing: bool }\n\
     global sessions: map<int, Session>;\n\
     fn create_ephemeral(s: Session, path: str) {}\n\
     fn prep_create(sid: int, path: str) {\n\
         let session: Session = sessions.get(sid);\n\
         if (session == null) { return; }\n\
         create_ephemeral(session, path);\n\
     }\n\
     fn test_create() {\n\
         sessions.put(1, new Session { id: 1 });\n\
         prep_create(1, \"/a\");\n\
     }";

const RULES: &str = "when calling create_ephemeral, require s != null\n";

/// Heavier fixture for the fairness test: several tests and rules so
/// each job takes long enough that a backlog is observable via `stats`.
const SLOW_SYSTEM: &str = "struct Order { id: int, paid: bool, cancelled: bool }\n\
     global orders: map<int, Order>;\n\
     global shipped: map<int, int>;\n\
     fn ship_order(o: Order, courier: int) { shipped.put(o.id, courier); }\n\
     fn checkout_ship(oid: int, courier: int) {\n\
         let o: Order = orders.get(oid);\n\
         if (o == null || o.paid == false || o.cancelled) { return; }\n\
         ship_order(o, courier);\n\
     }\n\
     fn admin_reship(oid: int, courier: int) {\n\
         let ord: Order = orders.get(oid);\n\
         if (ord == null || ord.paid == false) { return; }\n\
         ship_order(ord, courier);\n\
     }\n\
     fn seed(id: int, paid: bool, cancelled: bool) {\n\
         orders.put(id, new Order { id: id, paid: paid, cancelled: cancelled });\n\
     }\n\
     fn test_checkout() { seed(1, true, false); checkout_ship(1, 7); }\n\
     fn test_reship() { seed(2, true, false); admin_reship(2, 9); }\n\
     fn test_cancelled() { seed(3, true, true); checkout_ship(3, 7); }\n\
     fn test_unpaid() { seed(4, false, false); admin_reship(4, 9); }\n";

const SLOW_RULES: &str = "when calling ship_order, require o != null && o.paid == true\n\
     when calling ship_order, require o != null\n\
     when calling ship_order, require o.cancelled == false || o.paid == true\n";

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("lisa-e2e-load-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sys")).expect("mkdir");
        std::fs::create_dir_all(dir.join("slow-sys")).expect("mkdir");
        std::fs::write(dir.join("sys/session.sir"), SYSTEM).expect("sir");
        std::fs::write(dir.join("slow-sys/orders.sir"), SLOW_SYSTEM).expect("sir");
        std::fs::write(dir.join("rules.txt"), RULES).expect("rules");
        std::fs::write(dir.join("slow-rules.txt"), SLOW_RULES).expect("rules");
        Fixture { dir }
    }

    fn path(&self, rel: &str) -> String {
        self.dir.join(rel).to_string_lossy().into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe port")
        .local_addr()
        .expect("probe addr")
        .port()
}

struct Daemon {
    child: Child,
    socket: String,
    addr: String,
}

impl Daemon {
    fn start(fx: &Fixture, tag: &str, extra: &[&str]) -> Daemon {
        let socket = fx.path(&format!("{tag}.sock"));
        let addr = format!("127.0.0.1:{}", free_port());
        let state = fx.path(&format!("state-{tag}"));
        let mut args = vec![
            "serve", "--socket", &socket, "--state-root", &state, "--listen", &addr,
        ];
        args.extend_from_slice(extra);
        let child = Command::new(env!("CARGO_BIN_EXE_lisa"))
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn lisa serve");
        let daemon = Daemon { child, socket, addr };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(reply) = daemon.try_tcp("{\"v\":1,\"op\":\"ping\"}") {
                assert!(reply.contains("\"ok\""), "ping: {reply}");
                break;
            }
            assert!(Instant::now() < deadline, "daemon never answered ping on {}", daemon.addr);
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn try_tcp(&self, line: &str) -> Option<String> {
        let stream = TcpStream::connect(&self.addr).ok()?;
        exchange(&stream, &stream, line)
    }

    fn tcp(&self, line: &str) -> String {
        self.try_tcp(line).expect("tcp reply")
    }

    fn unix(&self, line: &str) -> String {
        let stream = UnixStream::connect(&self.socket).expect("unix connect");
        exchange(&stream, &stream, line).expect("unix reply")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One NDJSON request/reply on an already connected stream pair.
fn exchange<R: std::io::Read, W: Write>(r: R, mut w: W, line: &str) -> Option<String> {
    w.write_all(line.as_bytes()).ok()?;
    w.write_all(b"\n").ok()?;
    let mut reply = String::new();
    BufReader::new(r).read_line(&mut reply).ok()?;
    if reply.is_empty() {
        None
    } else {
        Some(reply)
    }
}

fn gate_line(job_id: &str, tenant: &str, system: &str, rules: &str) -> String {
    format!(
        "{{\"v\":1,\"op\":\"gate\",\"job_id\":\"{job_id}\",\"tenant\":\"{tenant}\",\
         \"system\":\"{}\",\"rules\":\"{}\",\"fail_mode\":\"open\"}}",
        lisa::json::escape(system),
        lisa::json::escape(rules),
    )
}

// ---------------------------------------------------------------------------
// Verdict-byte parity across transports
// ---------------------------------------------------------------------------

#[test]
fn tcp_and_unix_replies_are_byte_identical_modulo_job_id() {
    let fx = Fixture::new("parity");
    let daemon = Daemon::start(&fx, "parity", &["--workers", "2"]);
    let sys = fx.path("sys");
    let rules = fx.path("rules.txt");

    let via_tcp = daemon.tcp(&gate_line("par-tcp", "acme", &sys, &rules));
    let via_unix = daemon.unix(&gate_line("par-unix", "acme", &sys, &rules));
    assert!(via_tcp.contains("\"status\":\"done\""), "tcp: {via_tcp}");
    assert!(via_unix.contains("\"status\":\"done\""), "unix: {via_unix}");
    // Same job body, fresh state dirs: the only divergence allowed
    // between the two transports is the job id itself.
    assert_eq!(
        via_tcp.replace("par-tcp", "par-unix"),
        via_unix,
        "verdict bytes must be transport-independent"
    );

    // The stored verdict artifact is also transport-independent.
    let v_tcp = daemon.tcp("{\"v\":1,\"op\":\"verdict\",\"job_id\":\"par-tcp\"}");
    let v_unix = daemon.unix("{\"v\":1,\"op\":\"verdict\",\"job_id\":\"par-unix\"}");
    assert_eq!(v_tcp.replace("par-tcp", "par-unix"), v_unix);
}

// ---------------------------------------------------------------------------
// Fairness: a noisy tenant cannot starve a quiet one
// ---------------------------------------------------------------------------

#[test]
fn quiet_tenant_overtakes_noisy_backlog() {
    let fx = Fixture::new("fair");
    let daemon = Daemon::start(
        &fx,
        "fair",
        &["--workers", "1", "--queue-cap", "256", "--tenants", "noisy:1,quiet:1"],
    );
    let sys = fx.path("slow-sys");
    let rules = fx.path("slow-rules.txt");

    // Flood from the noisy tenant; every reply bumps the shared finish
    // sequence so we can place the quiet job in the completion order.
    const NOISY: usize = 24;
    let seq = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for i in 0..NOISY {
        let addr = daemon.addr.clone();
        let line = gate_line(&format!("noisy-{i}"), "noisy", &sys, &rules);
        let seq = Arc::clone(&seq);
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            let reply = exchange(&stream, &stream, &line).expect("noisy reply");
            assert!(reply.contains("\"status\":\"done\""), "noisy: {reply}");
            seq.fetch_add(1, Ordering::SeqCst)
        }));
    }

    // Wait until the backlog is real: stats must show a deep noisy queue.
    let deadline = Instant::now() + Duration::from_secs(30);
    let depth_when_quiet_sent;
    loop {
        let stats = daemon.tcp("{\"v\":1,\"op\":\"stats\"}");
        let json = Json::parse(stats.trim()).expect("stats parses");
        let depth = json
            .get("tenants")
            .and_then(|t| t.get("noisy"))
            .and_then(|n| n.u64_of("queued"))
            .unwrap_or(0);
        if depth >= 8 {
            depth_when_quiet_sent = depth;
            break;
        }
        assert!(Instant::now() < deadline, "noisy backlog never formed: {stats}");
        std::thread::sleep(Duration::from_millis(5));
    }

    let quiet = daemon.tcp(&gate_line("quiet-0", "quiet", &sys, &rules));
    assert!(quiet.contains("\"status\":\"done\""), "quiet: {quiet}");
    let quiet_seq = seq.load(Ordering::SeqCst);

    for handle in handles {
        handle.join().expect("noisy client");
    }

    // With equal weights, stride scheduling admits the newcomer within a
    // couple of dequeues: the quiet job must finish ahead of most of the
    // backlog that was queued when it arrived (allow a small margin for
    // jobs in flight at submission time).
    let overtaken = depth_when_quiet_sent.saturating_sub(3);
    assert!(
        (quiet_seq as u64) <= NOISY as u64 - overtaken,
        "quiet job finished at sequence {quiet_seq} of {NOISY}, but {depth_when_quiet_sent} \
         noisy jobs were queued when it was submitted — the noisy tenant starved it"
    );
}

// ---------------------------------------------------------------------------
// Saturation: structured sheds, every connection answered
// ---------------------------------------------------------------------------

#[test]
fn saturated_daemon_sheds_structurally_and_answers_everyone() {
    let fx = Fixture::new("shed");
    let daemon = Daemon::start(
        &fx,
        "shed",
        &["--workers", "1", "--queue-cap", "2", "--tenant-cap", "2"],
    );
    let sys = fx.path("sys");
    let rules = fx.path("rules.txt");

    const BURST: usize = 20;
    let mut handles = Vec::new();
    for i in 0..BURST {
        let addr = daemon.addr.clone();
        let line = gate_line(&format!("burst-{i}"), "acme", &sys, &rules);
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            exchange(&stream, &stream, &line).expect("reply")
        }));
    }
    let replies: Vec<String> = handles.into_iter().map(|h| h.join().expect("client")).collect();
    assert_eq!(replies.len(), BURST, "every connection must be answered");

    let mut done = 0;
    let mut shed = 0;
    for reply in &replies {
        let json = Json::parse(reply.trim()).expect("reply parses");
        match json.str_of("status") {
            Some("done") => done += 1,
            Some("shed") => {
                shed += 1;
                assert!(
                    json.u64_of("retry_after_ms").unwrap_or(0) > 0,
                    "shed reply must carry a retry hint: {reply}"
                );
                assert!(json.str_of("error").is_some(), "shed carries a reason: {reply}");
            }
            other => panic!("unexpected status {other:?}: {reply}"),
        }
    }
    assert!(shed >= 1, "a 2-deep queue under a {BURST}-client burst must shed");
    assert_eq!(done + shed, BURST);

    // The shed counter shows up in stats.
    let stats = daemon.tcp("{\"v\":1,\"op\":\"stats\"}");
    let json = Json::parse(stats.trim()).expect("stats parses");
    let tenant_shed = json
        .get("tenants")
        .and_then(|t| t.get("acme"))
        .and_then(|a| a.u64_of("shed"))
        .unwrap_or(0);
    assert!(tenant_shed >= 1, "per-tenant shed count missing: {stats}");
}

// ---------------------------------------------------------------------------
// Bounded job ids and per-tenant stats
// ---------------------------------------------------------------------------

#[test]
fn oversized_job_id_gets_structured_bad_request() {
    let fx = Fixture::new("jobid");
    let daemon = Daemon::start(&fx, "jobid", &["--workers", "1"]);
    let long_id = "x".repeat(lisa::MAX_JOB_ID_LEN + 1);
    let reply =
        daemon.tcp(&gate_line(&long_id, "acme", &fx.path("sys"), &fx.path("rules.txt")));
    let json = Json::parse(reply.trim()).expect("reply parses");
    assert_eq!(json.str_of("status"), Some("bad-request"), "{reply}");
    assert!(
        json.str_of("error").unwrap_or("").contains("128-byte bound"),
        "error names the bound: {reply}"
    );
    // The same bound holds on the read path and the unix transport.
    let verdict = daemon
        .unix(&format!("{{\"v\":1,\"op\":\"verdict\",\"job_id\":\"{long_id}\"}}"));
    assert!(verdict.contains("bad-request"), "{verdict}");
}

#[test]
fn stats_reports_per_tenant_depth_and_tail_latency() {
    let fx = Fixture::new("stats");
    let daemon = Daemon::start(&fx, "stats", &["--workers", "2", "--tenants", "acme:4,beta:1"]);
    let sys = fx.path("sys");
    let rules = fx.path("rules.txt");
    for (i, tenant) in [(0, "acme"), (1, "acme"), (2, "beta")] {
        let reply = daemon.tcp(&gate_line(&format!("s-{i}"), tenant, &sys, &rules));
        assert!(reply.contains("\"status\":\"done\""), "{reply}");
    }
    // The done reply is written before the worker settles its tenant
    // accounting, so poll until the counters catch up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = daemon.tcp("{\"v\":1,\"op\":\"stats\"}");
        if Json::parse(stats.trim())
            .ok()
            .and_then(|j| j.get("tenants").and_then(|t| t.get("beta")).and_then(|b| b.u64_of("done")))
            == Some(1)
        {
            break stats;
        }
        assert!(Instant::now() < deadline, "tenant accounting never settled: {stats}");
        std::thread::sleep(Duration::from_millis(10));
    };
    let json = Json::parse(stats.trim()).expect("stats parses");
    let tenants = json.get("tenants").expect("tenants object");
    for (name, weight, jobs) in [("acme", 4, 2), ("beta", 1, 1)] {
        let t = tenants.get(name).unwrap_or_else(|| panic!("tenant {name}: {stats}"));
        assert_eq!(t.u64_of("weight"), Some(weight), "{stats}");
        assert_eq!(t.u64_of("done"), Some(jobs), "{stats}");
        assert_eq!(t.u64_of("queued"), Some(0), "drained: {stats}");
        assert!(t.u64_of("p99_us").is_some(), "per-tenant p99 missing: {stats}");
        assert!(t.u64_of("retry_budget").is_some(), "retry budget missing: {stats}");
    }
    assert!(stats.contains("\"listen_conns\""), "{stats}");
}
