//! Cross-cutting consistency properties over the full corpus:
//! configuration choices that must not change *verdicts* (only cost),
//! and the persistence layer round-tripping real pipeline evidence.

use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_concolic::Policy;
use lisa_corpus::all_cases;
use lisa_oracle::{infer_rules, rescope, Scope, SemanticRule};

fn mined_rule(case: &lisa_corpus::Case) -> SemanticRule {
    let rule = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");
    match &rule.target {
        lisa_analysis::TargetSpec::Call { .. } => rule,
        _ => rescope(&rule, Scope::Generalized).expect("rescope"),
    }
}

fn pipeline(selection: TestSelection, policy: Policy) -> Pipeline {
    Pipeline::new(PipelineConfig { selection, policy, ..PipelineConfig::default() })
}

#[test]
fn pruning_policy_never_changes_verdicts() {
    // E8's headline invariant, asserted corpus-wide on every version.
    for case in all_cases() {
        let rule = mined_rule(&case);
        for version in case.versions.all() {
            let pruned =
                pipeline(TestSelection::All, Policy::RelevantOnly).check_rule(version, &rule);
            let full =
                pipeline(TestSelection::All, Policy::RecordAll).check_rule(version, &rule);
            assert_eq!(
                pruned.has_violation(),
                full.has_violation(),
                "{}/{}: pruning changed the verdict",
                case.meta.id,
                version.label
            );
            assert_eq!(pruned.verified_count(), full.verified_count());
            assert!(pruned.stats.branches_recorded <= full.stats.branches_recorded);
        }
    }
}

#[test]
fn rag_selection_matches_exhaustive_on_regressed_versions() {
    // E9's operating point: RAG top-3 must not lose any recurrence the
    // exhaustive run catches.
    for case in all_cases() {
        let rule = mined_rule(&case);
        let version = &case.versions.regressed;
        let rag = pipeline(TestSelection::Rag { k: 3 }, Policy::RelevantOnly)
            .check_rule(version, &rule);
        let all =
            pipeline(TestSelection::All, Policy::RelevantOnly).check_rule(version, &rule);
        assert_eq!(
            rag.has_violation(),
            all.has_violation(),
            "{}: RAG top-3 lost the recurrence",
            case.meta.id
        );
        assert!(rag.stats.tests_executed <= all.stats.tests_executed);
    }
}

#[test]
fn trace_logs_roundtrip_real_pipeline_evidence() {
    // Persist every violation's π from the corpus sweep and re-judge
    // offline: the same violations must reappear.
    use lisa_concolic::tracelog::{decode, encode, rejudge, TraceRecord};
    let mut records = Vec::new();
    let mut rules: Vec<(usize, SemanticRule)> = Vec::new();
    for case in all_cases() {
        let rule = mined_rule(&case);
        let report = pipeline(TestSelection::All, Policy::RelevantOnly)
            .check_rule(&case.versions.regressed, &rule);
        for v in report.violations() {
            records.push(TraceRecord {
                test: v.test.clone(),
                caller: v.chain.last().cloned().unwrap_or_default(),
                callee: rule.target.callee().to_string(),
                pi: v.pi.clone(),
                chain: v.chain.clone(),
                locks_held: 0,
            });
            rules.push((records.len() - 1, rule.clone()));
        }
    }
    assert!(records.len() >= 16, "one violation per case expected, got {}", records.len());
    let blob = encode(&records);
    let decoded = decode(blob).expect("decode");
    assert_eq!(decoded.len(), records.len());
    // Offline re-judging flags every persisted violation again.
    for (idx, rule) in &rules {
        let flagged = rejudge(&decoded[*idx..*idx + 1], &rule.condition);
        assert_eq!(flagged.len(), 1, "persisted violation must re-judge as violating");
    }
}

#[test]
fn gate_workers_do_not_change_decisions() {
    use lisa::{Gate, RuleRegistry};
    let mut registry = RuleRegistry::new();
    for case in all_cases().into_iter().take(6) {
        registry.register(mined_rule(&case));
    }
    let case = lisa_corpus::case("zk-ephemeral").expect("case");
    let config =
        PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() };
    let decisions: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            Gate::new(&registry).config(config.clone()).workers(w).run(&case.versions.regressed).decision
        })
        .collect();
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
}
