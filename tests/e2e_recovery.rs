//! End-to-end crash-recovery tests: the journaled gate killed at every
//! record boundary (with and without seeded disk faults) recovers to
//! byte-identical verdicts without re-executing settled checks, and the
//! `lisa serve` daemon survives panicking/stalling workers while keeping
//! the CLI exit-code contract (0 = pass, 1 = violations, 2 = engine
//! errors / dead-letter).

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa::{
    gate_durable, DiskFaultInjector, DurableGateReport, DurableOptions, GateOptions,
    PipelineConfig, RuleRegistry, TestSelection,
};
use lisa_analysis::TargetSpec;
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_lang::Program;
use lisa_oracle::SemanticRule;
use lisa_store::{scan, GateEvent};

// ---------------------------------------------------------------------------
// Library-level recovery fixture
// ---------------------------------------------------------------------------

fn version() -> SystemVersion {
    let src = "struct Session { id: int, closing: bool }\n\
         global sessions: map<int, Session>;\n\
         fn create_ephemeral(s: Session, path: str) {}\n\
         fn prep_create(sid: int, path: str) {\n\
             let session: Session = sessions.get(sid);\n\
             if (session == null) { return; }\n\
             create_ephemeral(session, path);\n\
         }\n\
         fn test_create() {\n\
             sessions.put(1, new Session { id: 1 });\n\
             prep_create(1, \"/a\");\n\
         }";
    let p = Program::parse_single("zk", src).expect("fixture parses");
    let tests = discover_tests(&p, "test_");
    SystemVersion::new("zk", p, tests)
}

fn registry() -> RuleRegistry {
    let mut reg = RuleRegistry::new();
    for (id, cond) in [
        ("ZK-1208-r0", "s != null && s.closing == false"),
        ("ZK-NULL-r0", "s != null"),
    ] {
        reg.register(
            SemanticRule::new(
                id,
                id,
                TargetSpec::Call { callee: "create_ephemeral".into() },
                cond,
            )
            .expect("fixture rule"),
        );
    }
    reg
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lisa-e2e-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn run_durable(dir: &std::path::Path, faults: Option<Arc<DiskFaultInjector>>) -> DurableGateReport {
    let durable = DurableOptions {
        state_dir: dir.to_path_buf(),
        disk_faults: faults.map(|f| f as Arc<dyn lisa_store::IoFaults>),
        ..DurableOptions::default()
    };
    gate_durable(
        &registry(),
        &version(),
        &PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() },
        &GateOptions::default(),
        &durable,
    )
    .expect("durable gate run")
}

fn finished_count(bytes: &[u8]) -> usize {
    scan(bytes)
        .records
        .iter()
        .filter(|r| matches!(GateEvent::decode(r), Ok(GateEvent::RuleCheckFinished { .. })))
        .count()
}

/// Baseline verdict artifact + the full journal it produced.
fn baseline() -> (String, Vec<u8>) {
    let dir = tmpdir("baseline");
    let report = run_durable(&dir, None);
    assert!(report.durable);
    let journal = std::fs::read(dir.join("wal.log")).expect("journal");
    let _ = std::fs::remove_dir_all(&dir);
    (report.verdicts_text(), journal)
}

#[test]
fn kill_at_every_record_boundary_recovers_byte_identical_verdicts() {
    let (v0, journal) = baseline();
    let rules = registry().len();
    let scanned = scan(&journal);
    assert!(scanned.corrupt.is_empty());
    for (i, kp) in
        std::iter::once(0u64).chain(scanned.boundaries.iter().copied()).enumerate()
    {
        let dir = tmpdir(&format!("kill-{i}"));
        std::fs::write(dir.join("wal.log"), &journal[..kp as usize]).expect("truncate");
        let settled = finished_count(&journal[..kp as usize]);
        let report = run_durable(&dir, None);
        assert_eq!(report.verdicts_text(), v0, "kill point {i}: verdicts must be identical");
        // Settled verdicts are reused, never re-executed: the resumed
        // journal ends with exactly one finished record per rule.
        assert_eq!(report.reused, settled, "kill point {i}");
        assert_eq!(report.fresh, rules - settled, "kill point {i}");
        let final_journal = std::fs::read(dir.join("wal.log")).expect("final journal");
        assert_eq!(finished_count(&final_journal), rules, "kill point {i}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn seeded_disk_faults_may_force_rechecks_but_never_change_verdicts() {
    let (v0, journal) = baseline();
    let rules = registry().len();
    let scanned = scan(&journal);
    let kill_points: Vec<u64> =
        std::iter::once(0u64).chain(scanned.boundaries.iter().copied()).collect();
    let mut fired = 0usize;
    for seed in 0..20u64 {
        let kp = kill_points[(seed as usize) % kill_points.len()] as usize;
        let settled = finished_count(&journal[..kp]);
        let dir = tmpdir(&format!("fault-{seed}"));
        std::fs::write(dir.join("wal.log"), &journal[..kp]).expect("truncate");
        let injector = Arc::new(DiskFaultInjector::random(seed));
        let report = run_durable(&dir, Some(injector.clone()));
        assert_eq!(report.verdicts_text(), v0, "fault plan {seed}: verdict bytes changed");
        assert_eq!(report.reused + report.fresh, rules, "fault plan {seed}");
        assert!(report.reused <= settled, "fault plan {seed}: verdict invented from thin air");
        if !injector.fired().is_empty() {
            fired += 1;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(fired > 0, "the sweep must exercise at least one disk fault");
}

#[test]
fn corrupted_journal_tail_only_costs_rechecks() {
    let (v0, journal) = baseline();
    // Flip one byte in the middle of the journal: that record is
    // quarantined on open; the verdict it held is re-checked.
    let mut damaged = journal.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0xff;
    let dir = tmpdir("corrupt");
    std::fs::write(dir.join("wal.log"), &damaged).expect("write damaged journal");
    let report = run_durable(&dir, None);
    assert_eq!(report.verdicts_text(), v0, "corruption must never change verdicts");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// CLI: durable gate, resume, and the serve daemon
// ---------------------------------------------------------------------------

const SYSTEM: &str = r#"
struct Order { id: int, paid: bool, cancelled: bool }
global orders: map<int, Order>;
global shipped: map<int, int>;

fn ship_order(o: Order, courier: int) { shipped.put(o.id, courier); }

fn checkout_ship(oid: int, courier: int) {
    let o: Order = orders.get(oid);
    if (o == null || o.paid == false || o.cancelled) { return; }
    ship_order(o, courier);
}

fn admin_reship(oid: int, courier: int) {
    let ord: Order = orders.get(oid);
    if (ord == null || ord.paid == false) { return; }
    ship_order(ord, courier);
}

fn seed(id: int, paid: bool, cancelled: bool) {
    orders.put(id, new Order { id: id, paid: paid, cancelled: cancelled });
}

fn test_checkout() { seed(1, true, false); checkout_ship(1, 7); assert(shipped.contains(1), "ok"); }
fn test_reship() { seed(2, true, false); admin_reship(2, 9); assert(shipped.contains(2), "ok"); }
"#;

/// `admin_reship` misses the `cancelled` guard: violated.
const STRICT_RULES: &str =
    "when calling ship_order, require o != null && o.paid == true && o.cancelled == false\n";
/// Both call sites guard null + paid: passes.
const LAX_RULES: &str = "when calling ship_order, require o != null && o.paid == true\n";

struct CliFixture {
    dir: PathBuf,
}

impl CliFixture {
    fn new(tag: &str) -> CliFixture {
        let dir = std::env::temp_dir().join(format!("lisa-rec-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sys")).expect("mkdir");
        std::fs::write(dir.join("sys/orders.sir"), SYSTEM).expect("sir");
        std::fs::write(dir.join("strict.txt"), STRICT_RULES).expect("rules");
        std::fs::write(dir.join("lax.txt"), LAX_RULES).expect("rules");
        CliFixture { dir }
    }

    fn run(&self, args: &[&str]) -> (i32, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_lisa"))
            .args(args)
            .output()
            .expect("spawn lisa");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code().unwrap_or(-1), text)
    }

    fn path(&self, rel: &str) -> String {
        self.dir.join(rel).to_string_lossy().into_owned()
    }
}

impl Drop for CliFixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn cli_gate_with_state_resumes_after_torn_tail() {
    let fx = CliFixture::new("state");
    let state = fx.path("state");
    let (code, out) = fx.run(&[
        "gate",
        "--system",
        &fx.path("sys"),
        "--rules",
        &fx.path("strict.txt"),
        "--state",
        &state,
    ]);
    assert_eq!(code, 1, "violations block: {out}");
    assert!(out.contains("BLOCK"), "{out}");

    // Tear the journal tail (simulated crash mid-final-write), then
    // resume: the settled verdict is reused and the decision identical.
    let wal = fx.dir.join("state/wal.log");
    let bytes = std::fs::read(&wal).expect("journal");
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).expect("tear tail");
    let (code, out) = fx.run(&[
        "resume",
        "--system",
        &fx.path("sys"),
        "--rules",
        &fx.path("strict.txt"),
        "--state",
        &state,
    ]);
    assert_eq!(code, 1, "resumed decision identical: {out}");
    assert!(out.contains("1 reused from journal"), "{out}");
    assert!(out.contains("0 fresh"), "{out}");
}

struct Daemon {
    child: Child,
    socket: String,
}

impl Daemon {
    fn start(fx: &CliFixture) -> Daemon {
        let socket = fx.path("lisa.sock");
        let child = Command::new(env!("CARGO_BIN_EXE_lisa"))
            .args([
                "serve",
                "--socket",
                &socket,
                "--state-root",
                &fx.path("served"),
                "--workers",
                "2",
                "--job-timeout-ms",
                "1500",
                "--max-attempts",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn lisa serve");
        let deadline = Instant::now() + Duration::from_secs(10);
        while !std::path::Path::new(&socket).exists() {
            assert!(Instant::now() < deadline, "daemon never bound its socket");
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, socket }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn serve_daemon_keeps_exit_contract_and_survives_chaos() {
    let fx = CliFixture::new("serve");
    let mut daemon = Daemon::start(&fx);
    let submit = |extra: &[&str]| {
        let mut args = vec!["submit", "--socket", daemon.socket.as_str()];
        args.extend_from_slice(extra);
        fx.run(&args)
    };

    let (code, out) = submit(&["--op", "ping"]);
    assert_eq!(code, 0, "{out}");

    // Clean job → pass, exit 0.
    let sys = fx.path("sys");
    let lax = fx.path("lax.txt");
    let strict = fx.path("strict.txt");
    let (code, out) = submit(&["--system", &sys, "--rules", &lax, "--job-id", "clean"]);
    assert_eq!(code, 0, "clean gate must pass: {out}");
    assert!(out.contains("\"decision\":\"PASS\""), "{out}");

    // Violating job → blocked, exit 1.
    let (code, out) = submit(&["--system", &sys, "--rules", &strict, "--job-id", "viol"]);
    assert_eq!(code, 1, "violations must block: {out}");
    assert!(out.contains("\"decision\":\"BLOCK\""), "{out}");

    // A worker that panics once: the supervisor respawns it and the retry
    // succeeds — same verdict as the undisturbed job.
    let (code, out) = submit(&[
        "--system", &sys, "--rules", &strict, "--job-id", "flaky", "--chaos", "panic-once",
    ]);
    assert_eq!(code, 1, "retried job settles normally: {out}");
    assert!(out.contains("\"decision\":\"BLOCK\""), "{out}");

    // A worker that panics every attempt: dead-lettered with exit 2 (the
    // engine-error half of the contract).
    let (code, out) = submit(&[
        "--system", &sys, "--rules", &strict, "--job-id", "poison", "--chaos", "panic",
    ]);
    assert_eq!(code, 2, "poison job must dead-letter: {out}");
    assert!(out.contains("dead-letter"), "{out}");

    // Graceful drain: shutdown reply, then the daemon exits cleanly.
    let (code, out) = submit(&["--op", "shutdown"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("draining"), "{out}");
    let status = daemon.child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0), "drained daemon exits 0");

    // Durable state survived under the daemon's state root: the clean
    // job's journal holds its settled verdict.
    let clean_wal = fx.dir.join("served/clean/wal.log");
    assert!(clean_wal.exists(), "per-job durable state directory");
    let bytes = std::fs::read(&clean_wal).expect("job journal");
    assert_eq!(finished_count(&bytes), 1, "one settled verdict for the one rule");
}

#[test]
fn serve_daemon_recovers_stalled_workers() {
    let fx = CliFixture::new("stall");
    let mut daemon = Daemon::start(&fx);
    let sys = fx.path("sys");
    let strict = fx.path("strict.txt");

    // Every attempt stalls past the 1.5s job timeout; the supervisor
    // abandons each worker, retries, and dead-letters after max attempts.
    let (code, out) = fx.run(&[
        "submit", "--socket", &daemon.socket, "--system", &sys, "--rules", &strict,
        "--job-id", "slow", "--chaos", "stall",
    ]);
    assert_eq!(code, 2, "stalled job dead-letters: {out}");
    assert!(out.contains("stalled"), "{out}");

    // The daemon is still healthy afterwards.
    let (code, out) =
        fx.run(&["submit", "--socket", &daemon.socket, "--system", &sys, "--rules", &strict]);
    assert_eq!(code, 1, "daemon still gates after stall recovery: {out}");

    let (code, _) = fx.run(&["submit", "--socket", &daemon.socket, "--op", "shutdown"]);
    assert_eq!(code, 0);
    let status = daemon.child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn serve_replies_structured_error_to_malformed_request() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    let fx = CliFixture::new("badjson");
    let mut daemon = Daemon::start(&fx);

    // Raw garbage on the wire: the daemon must answer with a structured
    // error object — never drop the connection, never die.
    let mut stream = UnixStream::connect(&daemon.socket).expect("connect");
    stream.write_all(b"this is not json\n").expect("write");
    stream.flush().expect("flush");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("read reply");
    let parsed = lisa::Json::parse(reply.trim()).expect("reply is valid JSON");
    assert_eq!(parsed.str_of("status"), Some("bad-request"), "{reply}");
    assert!(parsed.str_of("error").is_some(), "{reply}");
    assert_eq!(parsed.u64_of("exit"), Some(2), "{reply}");

    // Truncated JSON, an unknown op, a gate without its required fields,
    // and a protocol version the daemon does not speak (future number or
    // non-numeric) get the same structured treatment.
    for bad in [
        "{\"op\":\"gate\",",
        "{\"op\":\"no-such-op\"}",
        "{\"op\":\"gate\"}",
        "{\"v\":2,\"op\":\"ping\"}",
        "{\"v\":\"one\",\"op\":\"ping\"}",
    ] {
        let mut stream = UnixStream::connect(&daemon.socket).expect("connect");
        stream.write_all(bad.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("newline");
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).expect("read reply");
        let parsed = lisa::Json::parse(reply.trim())
            .unwrap_or_else(|e| panic!("{bad}: reply not JSON ({e}): {reply}"));
        assert_eq!(parsed.str_of("status"), Some("bad-request"), "{bad} -> {reply}");
    }

    // An explicit `"v":1` and a version-less request (v1 implied, the
    // pre-versioning wire format) are both accepted.
    for good in ["{\"v\":1,\"op\":\"ping\"}", "{\"op\":\"ping\"}"] {
        let mut stream = UnixStream::connect(&daemon.socket).expect("connect");
        stream.write_all(good.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("newline");
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).expect("read reply");
        let parsed = lisa::Json::parse(reply.trim())
            .unwrap_or_else(|e| panic!("{good}: reply not JSON ({e}): {reply}"));
        assert_eq!(parsed.str_of("status"), Some("ok"), "{good} -> {reply}");
    }

    // The daemon is unharmed: ping still answers, drain still clean.
    let (code, out) = fx.run(&["submit", "--socket", &daemon.socket, "--op", "ping"]);
    assert_eq!(code, 0, "{out}");
    let (code, _) = fx.run(&["submit", "--socket", &daemon.socket, "--op", "shutdown"]);
    assert_eq!(code, 0);
    let status = daemon.child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn serve_stats_reports_queue_workers_and_counters() {
    let fx = CliFixture::new("stats");
    let mut daemon = Daemon::start(&fx);
    let sys = fx.path("sys");
    let lax = fx.path("lax.txt");

    // Settle one clean job so cumulative counters are nonzero.
    let (code, out) = fx.run(&[
        "submit", "--socket", &daemon.socket, "--system", &sys, "--rules", &lax,
        "--job-id", "one",
    ]);
    assert_eq!(code, 0, "{out}");

    let (code, out) = fx.run(&["submit", "--socket", &daemon.socket, "--op", "stats"]);
    assert_eq!(code, 0, "{out}");
    let line = out.lines().find(|l| l.trim_start().starts_with('{')).expect("stats line");
    let parsed = lisa::Json::parse(line.trim()).expect("stats is valid JSON");
    assert_eq!(parsed.u64_of("jobs_done"), Some(1), "{out}");
    assert_eq!(parsed.u64_of("queued"), Some(0), "{out}");

    // Worker states: the whole pool is visible and idle after the job.
    let Some(lisa::Json::Arr(workers)) = parsed.get("workers") else {
        panic!("workers array missing: {out}")
    };
    assert_eq!(workers.len(), 2, "{out}");
    assert!(workers.iter().all(|w| w.str_of("state") == Some("idle")), "{out}");

    // Cumulative per-stage counters flowed up from the pipeline layers.
    let counters = parsed.get("counters").expect("counters object");
    assert_eq!(counters.u64_of("serve.jobs_done"), Some(1), "{out}");
    assert!(counters.u64_of("pipeline.rules_checked").unwrap_or(0) >= 1, "{out}");
    assert!(counters.u64_of("smt.queries").unwrap_or(0) >= 1, "{out}");
    assert!(counters.u64_of("store.appends").unwrap_or(0) >= 1, "{out}");

    // Timing summaries carry per-job latency.
    let timings = parsed.get("timings").expect("timings object");
    let job_us = timings.get("serve.job_us").expect("serve.job_us summary");
    assert!(job_us.u64_of("count").unwrap_or(0) >= 1, "{out}");

    let (code, _) = fx.run(&["submit", "--socket", &daemon.socket, "--op", "shutdown"]);
    assert_eq!(code, 0);
    let status = daemon.child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn serve_metrics_snapshots_survive_restart() {
    let fx = CliFixture::new("metrics-persist");
    let sys = fx.path("sys");
    let lax = fx.path("lax.txt");

    let mut daemon = Daemon::start(&fx);
    let (code, out) = fx.run(&[
        "submit", "--socket", &daemon.socket, "--system", &sys, "--rules", &lax,
        "--job-id", "m1",
    ]);
    assert_eq!(code, 0, "{out}");
    let (code, _) = fx.run(&["submit", "--socket", &daemon.socket, "--op", "shutdown"]);
    assert_eq!(code, 0);
    let status = daemon.child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0), "first daemon drains cleanly");

    // Restart over the same state root: the journaled metrics snapshot is
    // restored, so cumulative counters survive even though this process
    // has settled no jobs yet.
    let mut daemon = Daemon::start(&fx);
    let (code, out) = fx.run(&["submit", "--socket", &daemon.socket, "--op", "stats"]);
    assert_eq!(code, 0, "{out}");
    let line = out.lines().find(|l| l.trim_start().starts_with('{')).expect("stats line");
    let parsed = lisa::Json::parse(line.trim()).expect("stats is valid JSON");
    assert_eq!(parsed.u64_of("jobs_done"), Some(0), "fresh process, no jobs yet: {out}");
    let counters = parsed.get("counters").expect("counters object");
    assert!(
        counters.u64_of("serve.jobs_done").unwrap_or(0) >= 1,
        "cumulative counters restored from the metrics journal: {out}"
    );

    let (code, _) = fx.run(&["submit", "--socket", &daemon.socket, "--op", "shutdown"]);
    assert_eq!(code, 0);
    let status = daemon.child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0));
}
