//! Corpus-wide end-to-end sweep: for every one of the 16 cases, the
//! workflow of Figure 5 holds — the rule mined from the original ticket
//! grounds on the fixed version, the fixed version passes the gate, and
//! the regressed version (the recurrence that cost real clusters a
//! second outage) is blocked.

use lisa::{cross_check, Gate, GateDecision, PipelineConfig, RuleRegistry, TestSelection};
use lisa_analysis::TargetSpec;
use lisa_corpus::all_cases;
use lisa_oracle::{infer_rules, rescope, Scope, SemanticRule};

fn config() -> PipelineConfig {
    PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
}

/// Mine the case's rule from its original ticket; builtin-family rules
/// are generalized (Figure 6) before enforcement.
fn mined_rule(case: &lisa_corpus::Case) -> SemanticRule {
    let out = infer_rules(case.original_ticket())
        .unwrap_or_else(|e| panic!("{}: inference failed: {e}", case.meta.id));
    let rule = out.rules.into_iter().next().expect("at least one rule");
    match &rule.target {
        TargetSpec::Call { .. } => rule,
        _ => rescope(&rule, Scope::Generalized).expect("builtin rules rescope"),
    }
}

#[test]
fn every_case_infers_a_rule_matching_ground_truth() {
    for case in all_cases() {
        let rule = mined_rule(&case);
        let truth = lisa_smt::parse_cond(&case.ground_truth.condition_src).expect("truth");
        assert!(
            lisa_smt::equivalent(&rule.condition, &truth),
            "{}: inferred `{}` != truth `{}`",
            case.meta.id,
            rule.condition,
            case.ground_truth.condition_src
        );
        assert_eq!(
            rule.target, case.ground_truth.target,
            "{}: target mismatch",
            case.meta.id
        );
    }
}

#[test]
fn every_rule_grounds_on_its_fixed_version() {
    for case in all_cases() {
        let rule = mined_rule(&case);
        let cc = cross_check(&case.versions.fixed, &rule);
        assert!(cc.grounded, "{}: {}", case.meta.id, cc.reason);
    }
}

#[test]
fn fixed_versions_pass_and_regressed_versions_are_blocked() {
    for case in all_cases() {
        let rule = mined_rule(&case);
        let mut registry = RuleRegistry::new();
        registry.register(rule);
        let gate = Gate::new(&registry).config(config()).workers(2);
        let fixed = gate.run(&case.versions.fixed);
        assert_eq!(
            fixed.decision,
            GateDecision::Pass,
            "{}: fixed version must pass: {:#?}",
            case.meta.id,
            fixed.reports[0].chains
        );
        let regressed = gate.run(&case.versions.regressed);
        assert_eq!(
            regressed.decision,
            GateDecision::Block,
            "{}: regression must be blocked: {:#?}",
            case.meta.id,
            regressed.reports[0].chains
        );
        // Sanity check (§3.2): the originally fixed path stays verified.
        // (Only meaningful for call-target rules; a builtin-family fix
        // removes the site entirely, so there is no fixed path to verify.)
        if matches!(case.ground_truth.target, TargetSpec::Call { .. }) {
            assert!(regressed.reports[0].sanity_ok, "{}", case.meta.id);
        }
    }
}

#[test]
fn latest_versions_split_by_latent_bug() {
    for case in all_cases() {
        let rule = mined_rule(&case);
        let mut registry = RuleRegistry::new();
        registry.register(rule);
        let latest = Gate::new(&registry).config(config()).workers(2).run(&case.versions.latest);
        if case.ground_truth.latent_bug_in_latest {
            assert_eq!(
                latest.decision,
                GateDecision::Block,
                "{}: the latent unknown bug must surface",
                case.meta.id
            );
        } else {
            assert_eq!(
                latest.decision,
                GateDecision::Pass,
                "{}: clean latest must pass: {:#?}",
                case.meta.id,
                latest.reports[0].chains
            );
        }
    }
}

#[test]
fn regression_test_baseline_misses_every_recurrence() {
    // Figure 4's left column: across the whole corpus, replaying the
    // original fix's regression tests never detects the recurrence.
    let mut detected = 0;
    let mut total = 0;
    for case in all_cases() {
        total += 1;
        let replay = lisa::baselines::regression_test_baseline(
            &case.versions.regressed,
            &case.original_ticket().regression_tests,
        );
        if replay.detected() {
            detected += 1;
        }
    }
    assert_eq!(total, 16);
    assert_eq!(detected, 0, "the baseline is blind to cross-path recurrences");
}
