//! End-to-end cache-transparency suite.
//!
//! The contract under test: caching is an optimization, never an input.
//! A gate run with the version-scoped caches enabled must produce
//! byte-identical artifacts — human-readable stdout, verdict JSON
//! (modulo wall-clock fields), and the durable journal — to a run with
//! caching off, including across a kill-and-resume and across versions
//! where the fingerprint file lets unchanged rules reuse their verdicts.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use lisa::report::render_enforcement;
use lisa::{
    gate_durable, DurableGateReport, DurableOptions, Gate, GateCache, GateOptions,
    PipelineConfig, RuleRegistry, TestSelection,
};
use lisa_analysis::TargetSpec;
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_lang::Program;
use lisa_oracle::SemanticRule;
use lisa_store::{scan, GateEvent};

// ---------------------------------------------------------------------------
// Library-level fixtures: two rule families over separate subsystems, so
// a change to one function dirties one rule and spares the other.
// ---------------------------------------------------------------------------

/// `audit_floor` is the knob: versions that differ only there leave the
/// ephemeral-session subsystem (and the ZK rule's dependencies) intact.
fn version(label: &str, guard_closing: bool, audit_floor: i64) -> SystemVersion {
    let guard =
        if guard_closing { "session == null || session.closing" } else { "session == null" };
    let src = format!(
        "struct Session {{ id: int, closing: bool }}\n\
         global sessions: map<int, Session>;\n\
         fn create_ephemeral(s: Session, path: str) {{}}\n\
         fn audit(n: int) {{}}\n\
         fn prep_create(sid: int, path: str) {{\n\
             let session: Session = sessions.get(sid);\n\
             if ({guard}) {{ return; }}\n\
             create_ephemeral(session, path);\n\
         }}\n\
         fn audit_all(n: int) {{ if (n > {audit_floor}) {{ audit(n); }} }}\n\
         fn test_prep() {{ sessions.put(1, new Session {{ id: 1 }}); prep_create(1, \"/a\"); }}\n\
         fn test_audit() {{ audit_all(3); }}"
    );
    let p = Program::parse_single("sys", &src).expect("fixture parses");
    let tests = discover_tests(&p, "test_");
    SystemVersion::new(label, p, tests)
}

fn registry() -> RuleRegistry {
    let mut reg = RuleRegistry::new();
    for (id, callee, cond) in [
        ("ZK-1208", "create_ephemeral", "s != null && s.closing == false"),
        ("AUD-1", "audit", "n > 0"),
    ] {
        reg.register(
            SemanticRule::new(id, id, TargetSpec::Call { callee: callee.into() }, cond)
                .expect("fixture rule"),
        );
    }
    reg
}

fn config() -> PipelineConfig {
    PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lisa-e2e-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn run_durable(
    dir: &std::path::Path,
    v: &SystemVersion,
    cache: Option<&Arc<GateCache>>,
) -> DurableGateReport {
    let durable = DurableOptions {
        state_dir: dir.to_path_buf(),
        cache: cache.map(Arc::clone),
        ..DurableOptions::default()
    };
    gate_durable(&registry(), v, &config(), &GateOptions::default(), &durable)
        .expect("durable gate run")
}

// ---------------------------------------------------------------------------
// Plain gate: identical reports, and a shared cache actually hits.
// ---------------------------------------------------------------------------

#[test]
fn cached_gate_report_is_byte_identical_to_uncached() {
    let reg = registry();
    let v = version("v1", false, 0);
    let uncached = Gate::new(&reg).config(config()).workers(2).run(&v);

    let cache = Arc::new(GateCache::new());
    let gate = Gate::new(&reg).config(config()).workers(2).cache(&cache);
    let first = gate.run(&v);
    let second = gate.run(&v);

    let baseline = render_enforcement(&uncached);
    assert_eq!(render_enforcement(&first), baseline, "cold cache changed the report");
    assert_eq!(render_enforcement(&second), baseline, "warm cache changed the report");
    assert_eq!(first.decision, uncached.decision);

    // The second run must be served from the cache, not re-explored.
    assert!(cache.hits() > 0, "warm run produced no cache hits");
    assert!(cache.analysis().stats().hits > 0, "analysis layer never hit");
    assert!(cache.traces().stats().hits > 0, "trace layer never hit");
    assert!(cache.queries().stats().hits > 0, "SMT query layer never hit");
}

#[test]
fn cache_is_transparent_across_every_corpus_case() {
    use lisa_corpus::all_cases;
    use lisa_oracle::{infer_rules, rescope, Scope};
    for case in all_cases().into_iter().take(6) {
        let Ok(out) = infer_rules(case.original_ticket()) else { continue };
        let mut reg = RuleRegistry::new();
        for rule in out.rules {
            let rule = match &rule.target {
                TargetSpec::Call { .. } => rule,
                _ => rescope(&rule, Scope::Generalized).expect("rescope"),
            };
            reg.register(rule);
        }
        let cache = Arc::new(GateCache::new());
        for v in [&case.versions.fixed, &case.versions.regressed, &case.versions.latest] {
            let plain = Gate::new(&reg).config(config()).workers(2).run(v);
            let cached =
                Gate::new(&reg).config(config()).workers(2).cache(&cache).run(v);
            assert_eq!(
                render_enforcement(&cached),
                render_enforcement(&plain),
                "{}@{}: cached report drifted",
                case.meta.id,
                v.label
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Durable gate: journal bytes, kill-and-resume, cross-version reuse.
// ---------------------------------------------------------------------------

#[test]
fn durable_journal_is_byte_identical_with_and_without_cache() {
    let v = version("v1", false, 0);
    let dir_off = tmpdir("wal-off");
    let dir_on = tmpdir("wal-on");
    let off = run_durable(&dir_off, &v, None);
    let cache = Arc::new(GateCache::new());
    let on = run_durable(&dir_on, &v, Some(&cache));

    assert_eq!(on.verdicts_text(), off.verdicts_text());
    assert_eq!(on.render(), off.render(), "cache must not leak into the summary");
    let wal_off = std::fs::read(dir_off.join("wal.log")).expect("wal off");
    let wal_on = std::fs::read(dir_on.join("wal.log")).expect("wal on");
    assert_eq!(wal_on, wal_off, "journal bytes must not depend on caching");

    // The cached run also persisted the fingerprint sieve beside the wal.
    assert!(dir_on.join("fingerprints.log").exists());
    assert!(!dir_off.join("fingerprints.log").exists(), "uncached run must not write it");
    let _ = std::fs::remove_dir_all(&dir_off);
    let _ = std::fs::remove_dir_all(&dir_on);
}

#[test]
fn kill_and_resume_with_cache_recovers_byte_identical_verdicts() {
    let v = version("v1", false, 0);
    // Uncached, uninterrupted baseline.
    let dir = tmpdir("kill-base");
    let baseline = run_durable(&dir, &v, None);
    let journal = std::fs::read(dir.join("wal.log")).expect("journal");
    let _ = std::fs::remove_dir_all(&dir);

    let scanned = scan(&journal);
    assert!(scanned.corrupt.is_empty());
    let finished = |bytes: &[u8]| {
        scan(bytes)
            .records
            .iter()
            .filter(|r| matches!(GateEvent::decode(r), Ok(GateEvent::RuleCheckFinished { .. })))
            .count()
    };
    for (i, kp) in std::iter::once(0u64).chain(scanned.boundaries.iter().copied()).enumerate() {
        let dir = tmpdir(&format!("kill-{i}"));
        std::fs::write(dir.join("wal.log"), &journal[..kp as usize]).expect("truncate");
        let settled = finished(&journal[..kp as usize]);
        // Resume with a cold cache — the journal, not the cache, is the
        // source of settled verdicts; the cache only speeds up the rest.
        let cache = Arc::new(GateCache::new());
        let report = run_durable(&dir, &v, Some(&cache));
        assert_eq!(
            report.verdicts_text(),
            baseline.verdicts_text(),
            "kill point {i}: cached resume changed verdicts"
        );
        assert_eq!(report.reused, settled, "kill point {i}");
        let final_journal = std::fs::read(dir.join("wal.log")).expect("final journal");
        assert_eq!(finished(&final_journal), registry().len(), "kill point {i}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn unchanged_rules_reuse_verdicts_across_versions() {
    let cache = Arc::new(GateCache::new());
    let dir = tmpdir("xver");

    // First version: everything is explored fresh.
    let v1 = version("v1", false, 0);
    let r1 = run_durable(&dir, &v1, Some(&cache));
    assert_eq!(r1.fresh, 2);
    assert_eq!(r1.cross_version, 0, "nothing to reuse on the first version");

    // Second version changes only the audit subsystem: the ZK rule's
    // dependency hash is unchanged, so its verdict is reused from the
    // fingerprint file; AUD-1 is genuinely re-explored (and now passes,
    // since the floor rises to the rule's threshold).
    let v2 = version("v2", false, 1);
    let r2 = run_durable(&dir, &v2, Some(&cache));
    assert_eq!(r2.reused, 0, "different run key: the journal donates nothing");
    assert_eq!(r2.cross_version, 1, "exactly the untouched rule is reused");

    // Byte-identity: an uncached from-scratch run of v2 agrees exactly.
    let dir_fresh = tmpdir("xver-fresh");
    let fresh = run_durable(&dir_fresh, &v2, None);
    assert_eq!(r2.verdicts_text(), fresh.verdicts_text());
    // r2 additionally warns about archiving v1's stale journal — a
    // consequence of sharing the state dir, not of caching; the verdict
    // lines themselves must match exactly.
    let sans_warnings = |r: &DurableGateReport| -> String {
        r.render().lines().filter(|l| !l.trim_start().starts_with("warning:")).fold(
            String::new(),
            |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            },
        )
    };
    assert_eq!(sans_warnings(&r2), sans_warnings(&fresh));
    assert_eq!(
        std::fs::read(dir.join("wal.log")).expect("wal"),
        std::fs::read(dir_fresh.join("wal.log")).expect("wal fresh"),
        "reused verdicts must journal the same records a re-check would"
    );

    // Third version touches the guarded subsystem: the ZK rule's hash
    // moves and it is re-explored — reuse never masks a regression fix.
    let v3 = version("v3", true, 1);
    let r3 = run_durable(&dir, &v3, Some(&cache));
    assert_eq!(r3.cross_version, 1, "only the audit rule is reusable now");
    assert!(!r3.has_violation(), "the fix must be observed, not the stale verdict");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_fresh);
}

#[test]
fn fault_or_deadline_runs_never_reuse_fingerprints() {
    let cache = Arc::new(GateCache::new());
    let dir = tmpdir("nofp");
    let v = version("v1", false, 0);
    let r1 = run_durable(&dir, &v, Some(&cache));
    assert_eq!(r1.fresh, 2);

    // A deadline makes verdicts timing-dependent: reuse must switch off
    // even though the fingerprint file matches perfectly.
    let durable = DurableOptions {
        state_dir: dir.clone(),
        cache: Some(Arc::clone(&cache)),
        ..DurableOptions::default()
    };
    let options = GateOptions {
        deadline: Some(std::time::Duration::from_secs(3600)),
        ..GateOptions::default()
    };
    let v2 = version("v2", false, 0);
    let r2 = gate_durable(&registry(), &v2, &config(), &options, &durable)
        .expect("durable gate run");
    assert_eq!(r2.cross_version, 0, "deadline runs must not reuse recorded verdicts");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// CLI: full stdout byte-identity, cache on vs off.
// ---------------------------------------------------------------------------

const CLI_SYSTEM: &str = r#"
struct Order { id: int, paid: bool, cancelled: bool }
global orders: map<int, Order>;
global shipped: map<int, int>;

fn ship_order(o: Order, courier: int) { shipped.put(o.id, courier); }

fn checkout_ship(oid: int, courier: int) {
    let o: Order = orders.get(oid);
    if (o == null || o.paid == false || o.cancelled) { return; }
    ship_order(o, courier);
}

fn admin_reship(oid: int, courier: int) {
    let ord: Order = orders.get(oid);
    if (ord == null || ord.paid == false) { return; }
    ship_order(ord, courier);
}

fn seed(id: int, paid: bool, cancelled: bool) {
    orders.put(id, new Order { id: id, paid: paid, cancelled: cancelled });
}

fn test_checkout() { seed(1, true, false); checkout_ship(1, 7); assert(shipped.contains(1), "ok"); }
fn test_reship() { seed(2, true, false); admin_reship(2, 9); assert(shipped.contains(2), "ok"); }
"#;

const CLI_RULES: &str =
    "when calling ship_order, require o != null && o.paid == true && o.cancelled == false\n";

struct CliFixture {
    dir: PathBuf,
}

impl CliFixture {
    fn new(tag: &str) -> CliFixture {
        let dir =
            std::env::temp_dir().join(format!("lisa-cache-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sys")).expect("mkdir");
        std::fs::write(dir.join("sys/orders.sir"), CLI_SYSTEM).expect("sir");
        std::fs::write(dir.join("rules.txt"), CLI_RULES).expect("rules");
        CliFixture { dir }
    }

    fn gate(&self, extra: &[&str]) -> (i32, String, String) {
        let sys = self.dir.join("sys").to_string_lossy().into_owned();
        let rules = self.dir.join("rules.txt").to_string_lossy().into_owned();
        let mut args = vec!["gate", "--system", &sys, "--rules", &rules];
        args.extend_from_slice(extra);
        let out = Command::new(env!("CARGO_BIN_EXE_lisa"))
            .args(&args)
            .output()
            .expect("spawn lisa");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for CliFixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Zero every `"wall_ms":N` in a JSON artifact — the one field that
/// legitimately differs between any two runs, cached or not.
fn normalize_wall(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(at) = rest.find("\"wall_ms\":") {
        let tail = &rest[at + "\"wall_ms\":".len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..at]);
        out.push_str("\"wall_ms\":0");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

#[test]
fn cli_stdout_is_byte_identical_cache_on_vs_off() {
    let fx = CliFixture::new("stdout");
    let (code_off, out_off, _) = fx.gate(&["--cache", "off"]);
    let (code_on, out_on, _) = fx.gate(&["--cache", "on"]);
    let (code_default, out_default, _) = fx.gate(&[]);
    assert_eq!(code_off, 1, "{out_off}");
    assert_eq!(code_on, code_off);
    assert_eq!(code_default, code_off);
    assert_eq!(out_on, out_off, "cache flipped a stdout byte");
    assert_eq!(out_default, out_off, "default (cache on) drifted from --cache off");

    let (_, json_off, _) = fx.gate(&["--cache", "off", "--format", "json"]);
    let (_, json_on, _) = fx.gate(&["--cache", "on", "--format", "json"]);
    assert_eq!(
        normalize_wall(&json_on),
        normalize_wall(&json_off),
        "cache flipped a JSON byte (beyond wall_ms)"
    );
}

#[test]
fn cli_durable_state_is_byte_identical_cache_on_vs_off() {
    let fx = CliFixture::new("state");
    let state_off = fx.dir.join("state-off");
    let state_on = fx.dir.join("state-on");
    let (code_off, out_off, _) =
        fx.gate(&["--cache", "off", "--state", &state_off.to_string_lossy()]);
    let (code_on, out_on, _) =
        fx.gate(&["--cache", "on", "--state", &state_on.to_string_lossy()]);
    assert_eq!(code_on, code_off);
    assert_eq!(out_on, out_off, "durable summary drifted under caching");
    let wal_off = std::fs::read(state_off.join("wal.log")).expect("wal off");
    let wal_on = std::fs::read(state_on.join("wal.log")).expect("wal on");
    assert_eq!(wal_on, wal_off, "wal.log bytes must not depend on caching");
}
