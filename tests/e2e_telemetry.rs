//! End-to-end telemetry smoke: `lisa gate --trace-out/--metrics-out` on
//! the ZooKeeper corpus case emits a valid Chrome trace covering every
//! pipeline stage (analysis, concolic, SMT, store) and a metrics snapshot
//! with live solver counters — and enabling telemetry never perturbs the
//! verdict artifact (the byte-identical guarantee from the durable gate).

use std::path::PathBuf;
use std::process::Command;

use lisa::Json;
use lisa_corpus::case;

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    /// Dump the regressed ZooKeeper corpus version to `.sir` files plus
    /// the ground-truth rule, so the CLI runs the paper's flagship case.
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("lisa-e2e-tel-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sys")).expect("mkdir");
        let case = case("zk-ephemeral").expect("zookeeper corpus case");
        for m in &case.versions.regressed.program.modules {
            let name = m.name.replace(['/', '\\'], "_");
            std::fs::write(dir.join(format!("sys/{name}.sir")), &m.source).expect("sir");
        }
        // The ground-truth rule plus one conjoining atoms the path
        // condition leaves free: its violation query negates to a clause
        // of free literals, which unit propagation alone cannot settle —
        // the solver must branch, exercising the decision counters.
        let callee = case.ground_truth.target.callee();
        let rules = format!(
            "when calling {callee}, require {}\n\
             when calling {callee}, require s != null && s.timeout > 0 && s.id > 0\n",
            case.ground_truth.condition_src,
        );
        std::fs::write(dir.join("rules.txt"), rules).expect("rules");
        Fixture { dir }
    }

    fn path(&self, rel: &str) -> String {
        self.dir.join(rel).to_string_lossy().into_owned()
    }

    /// Run the CLI; returns the exit code and raw stdout bytes (stdout is
    /// the artifact channel, so byte comparisons happen on it directly).
    fn run(&self, args: &[&str]) -> (i32, Vec<u8>) {
        let out =
            Command::new(env!("CARGO_BIN_EXE_lisa")).args(args).output().expect("spawn lisa");
        (out.status.code().unwrap_or(-1), out.stdout)
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn gate_trace_covers_every_pipeline_stage() {
    let fx = Fixture::new("trace");
    let trace = fx.path("trace.json");
    let metrics = fx.path("metrics.json");
    let (code, _) = fx.run(&[
        "gate",
        "--system",
        &fx.path("sys"),
        "--rules",
        &fx.path("rules.txt"),
        "--state",
        &fx.path("state"),
        "--format",
        "json",
        "--trace-out",
        &trace,
        "--metrics-out",
        &metrics,
    ]);
    assert_eq!(code, 1, "the regressed version must block");

    // The trace parses under the project's own strict JSON reader and
    // holds complete-span events for every pipeline layer.
    let trace_text = std::fs::read_to_string(&trace).expect("trace file");
    let parsed = Json::parse(&trace_text).expect("trace is valid JSON");
    let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
        panic!("no traceEvents array")
    };
    assert!(!events.is_empty(), "trace must not be empty");
    let names: Vec<&str> = events.iter().filter_map(|e| e.str_of("name")).collect();
    for expected in [
        "service.durable_run",
        "gate.enforce",
        "pipeline.rule",
        "analysis.callgraph",
        "analysis.tree",
        "concolic.run",
        "concolic.test",
        "smt.check",
        "store.recover",
    ] {
        assert!(names.contains(&expected), "missing span `{expected}` in {names:?}");
    }
    // Span events carry timing and argument payloads Perfetto can render.
    let smt = events
        .iter()
        .find(|e| e.str_of("name") == Some("smt.check"))
        .expect("smt.check span");
    assert_eq!(smt.str_of("ph"), Some("X"), "complete event");
    assert!(smt.get("dur").is_some() && smt.get("ts").is_some());
    let args = smt.get("args").expect("span args");
    assert!(args.get("decisions").is_some(), "solver introspection args");

    // The metrics snapshot parses and the SMT counters are live.
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics file");
    let parsed = Json::parse(&metrics_text).expect("metrics is valid JSON");
    let counters = parsed.get("counters").expect("counters object");
    assert!(counters.u64_of("smt.queries").unwrap_or(0) > 0, "{metrics_text}");
    assert!(counters.u64_of("smt.decisions").unwrap_or(0) > 0, "{metrics_text}");
    assert!(counters.u64_of("smt.clauses").unwrap_or(0) > 0, "{metrics_text}");
    // The session layer reports its reuse economics: one session per
    // (rule, batch) dispatch, every query accounted for.
    assert!(counters.u64_of("smt.session.opened").unwrap_or(0) > 0, "{metrics_text}");
    assert!(counters.u64_of("smt.session.queries").unwrap_or(0) > 0, "{metrics_text}");
    assert!(counters.u64_of("concolic.steps").unwrap_or(0) > 0, "{metrics_text}");
    assert!(counters.u64_of("analysis.chains").unwrap_or(0) > 0, "{metrics_text}");
    assert!(counters.u64_of("store.appends").unwrap_or(0) > 0, "{metrics_text}");
    assert!(counters.u64_of("verdict.violated").unwrap_or(0) > 0, "{metrics_text}");
    // Per-stage latency histograms back the bench breakdowns.
    let hists = parsed.get("histograms").expect("histograms object");
    for h in ["stage.callgraph_us", "stage.concolic_us", "stage.judge_us", "smt.query_us"] {
        let entry = hists.get(h).unwrap_or_else(|| panic!("missing histogram {h}"));
        assert!(entry.u64_of("count").unwrap_or(0) > 0, "{h} must have observations");
    }
}

#[test]
fn telemetry_never_perturbs_the_verdict_artifact() {
    let fx = Fixture::new("determinism");
    let base_args = |state: &str| {
        [
            "gate".to_string(),
            "--system".into(),
            fx.path("sys"),
            "--rules".into(),
            fx.path("rules.txt"),
            "--state".into(),
            fx.path(state),
            "--format".into(),
            "json".into(),
        ]
    };

    // Telemetry fully off.
    let off: Vec<String> = base_args("state-off").to_vec();
    let off_refs: Vec<&str> = off.iter().map(String::as_str).collect();
    let (code_off, stdout_off) = fx.run(&off_refs);

    // Telemetry fully on (spans + metrics + verbose notes).
    let mut on: Vec<String> = base_args("state-on").to_vec();
    on.extend([
        "--trace-out".into(),
        fx.path("t.json"),
        "--metrics-out".into(),
        fx.path("m.json"),
        "--verbose".into(),
    ]);
    let on_refs: Vec<&str> = on.iter().map(String::as_str).collect();
    let (code_on, stdout_on) = fx.run(&on_refs);

    assert_eq!(code_off, code_on, "same decision either way");
    assert_eq!(stdout_off, stdout_on, "stdout artifact must be byte-identical");

    // The journaled verdict artifact — the PR 2 determinism guarantee —
    // is byte-identical too: telemetry is a write-only side channel.
    let wal_off = std::fs::read(fx.dir.join("state-off/wal.log")).expect("off journal");
    let wal_on = std::fs::read(fx.dir.join("state-on/wal.log")).expect("on journal");
    assert_eq!(wal_off, wal_on, "journaled verdicts must be byte-identical");
}
