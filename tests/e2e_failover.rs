//! End-to-end failover tests for replicated gate state: a leader ships
//! its journal frame-by-frame to a follower; the leader is killed at
//! every frame boundary; the follower promotes and finishes the run
//! with verdicts byte-identical to an uninterrupted leader — with the
//! version-scoped cache on and off. A seeded stream-fault sweep proves
//! the follower quarantines corrupt frames (re-requesting a full sync)
//! instead of applying them, and a process-level test runs the real
//! `lisa serve --follow` pair over TCP, SIGKILLs the leader, and
//! watches the follower take over.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa::{
    gate_durable, DurableGateReport, DurableOptions, GateCache, GateOptions, PipelineConfig,
    RuleRegistry, StreamFaultInjector, TestSelection,
};
use lisa_analysis::TargetSpec;
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_lang::Program;
use lisa_oracle::SemanticRule;
use lisa_store::journal::frame;
use lisa_store::{
    decode_wire, Applier, BusPoll, FrameDecoder, ReplBus, StreamFault, StreamFaults, Wire,
};

// ---------------------------------------------------------------------------
// Library-level fixture (same shape as e2e_recovery's)
// ---------------------------------------------------------------------------

fn version() -> SystemVersion {
    let src = "struct Session { id: int, closing: bool }\n\
         global sessions: map<int, Session>;\n\
         fn create_ephemeral(s: Session, path: str) {}\n\
         fn prep_create(sid: int, path: str) {\n\
             let session: Session = sessions.get(sid);\n\
             if (session == null) { return; }\n\
             create_ephemeral(session, path);\n\
         }\n\
         fn test_create() {\n\
             sessions.put(1, new Session { id: 1 });\n\
             prep_create(1, \"/a\");\n\
         }";
    let p = Program::parse_single("zk", src).expect("fixture parses");
    let tests = discover_tests(&p, "test_");
    SystemVersion::new("zk", p, tests)
}

fn registry() -> RuleRegistry {
    let mut reg = RuleRegistry::new();
    for (id, cond) in [
        ("ZK-1208-r0", "s != null && s.closing == false"),
        ("ZK-NULL-r0", "s != null"),
    ] {
        reg.register(
            SemanticRule::new(
                id,
                id,
                TargetSpec::Call { callee: "create_ephemeral".into() },
                cond,
            )
            .expect("fixture rule"),
        );
    }
    reg
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lisa-e2e-fo-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Run the durable gate with a replication bus attached, under
/// `root/job`, with the cache on or off.
fn run_replicated(root: &std::path::Path, bus: Arc<ReplBus>, cached: bool) -> DurableGateReport {
    let durable = DurableOptions {
        state_dir: root.join("job"),
        repl: Some(bus),
        cache: cached.then(|| Arc::new(GateCache::new())),
        ..DurableOptions::default()
    };
    gate_durable(
        &registry(),
        &version(),
        &PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() },
        &GateOptions::default(),
        &durable,
    )
    .expect("durable gate run")
}

/// Resume (promote) a run on a follower's mirrored state root.
fn run_promoted(froot: &std::path::Path, cached: bool) -> DurableGateReport {
    let durable = DurableOptions {
        state_dir: froot.join("job"),
        cache: cached.then(|| Arc::new(GateCache::new())),
        ..DurableOptions::default()
    };
    gate_durable(
        &registry(),
        &version(),
        &PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() },
        &GateOptions::default(),
        &durable,
    )
    .expect("promoted gate run")
}

/// Drain every frame past `pos` from the bus.
fn drain(bus: &ReplBus, pos: &mut u64) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        match bus.poll_after(*pos, Duration::from_millis(1)) {
            BusPoll::Frames(frames) => {
                for (seq, payload) in frames {
                    *pos = seq;
                    out.push(payload.as_ref().clone());
                }
            }
            BusPoll::Idle { .. } => return out,
            BusPoll::Gap => panic!("retention too small for the test"),
        }
    }
}

/// One uninterrupted leader run: (verdict artifact, shipped payloads).
fn shipped_baseline(cached: bool) -> (String, Vec<Vec<u8>>) {
    let root = tmpdir(&format!("baseline-{cached}"));
    let bus = ReplBus::with_retention(&root, 1_000_000);
    let report = run_replicated(&root, bus.clone(), cached);
    assert!(report.durable);
    let mut pos = 0u64;
    let frames = drain(&bus, &mut pos);
    assert!(!frames.is_empty(), "the run must publish frames");
    let _ = std::fs::remove_dir_all(&root);
    (report.verdicts_text(), frames)
}

fn apply_prefix(froot: &std::path::Path, frames: &[Vec<u8>]) {
    let applier = Applier::new(froot).expect("applier");
    for payload in frames {
        match decode_wire(payload).expect("shipped frame decodes") {
            Wire::Event { event, .. } => applier.apply(&event).expect("apply"),
            other => panic!("bus never ships {other:?}"),
        }
    }
}

fn kill_matrix(cached: bool) {
    let (v0, frames) = shipped_baseline(cached);
    let rules = registry().len();
    for k in 0..=frames.len() {
        let froot = tmpdir(&format!("kill-{cached}-{k}"));
        apply_prefix(&froot, &frames[..k]);
        // The leader is dead; the follower promotes and resumes the run
        // through the ordinary recovery path on its mirrored root.
        let report = run_promoted(&froot, cached);
        assert_eq!(
            report.verdicts_text(),
            v0,
            "cache={cached}, kill point {k}: promoted verdicts must be byte-identical"
        );
        assert_eq!(report.reused + report.fresh, rules, "cache={cached}, kill point {k}");
        let _ = std::fs::remove_dir_all(&froot);
    }
}

#[test]
fn leader_killed_at_every_frame_boundary_follower_finishes_identically() {
    kill_matrix(false);
}

#[test]
fn leader_killed_at_every_frame_boundary_follower_finishes_identically_with_cache() {
    kill_matrix(true);
}

#[test]
fn full_sync_bootstraps_a_late_follower_to_all_reused() {
    // The follower attaches only after the leader's run is over: the
    // full-sync walk alone must hand it every settled verdict.
    let root = tmpdir("late-leader");
    let bus = ReplBus::with_retention(&root, 1_000_000);
    let report = run_replicated(&root, bus.clone(), false);
    let v0 = report.verdicts_text();
    let rules = registry().len();

    let (payloads, _pos) = bus.sync_payloads();
    let froot = tmpdir("late-follower");
    let applier = Applier::new(&froot).expect("applier");
    let mut synced = false;
    for payload in &payloads {
        match decode_wire(payload).expect("sync frame decodes") {
            Wire::Event { event, .. } => applier.apply(&event).expect("apply"),
            Wire::SyncDone { .. } => synced = true,
            Wire::Heartbeat { .. } => {}
        }
    }
    assert!(synced, "full sync must end with SyncDone");

    let promoted = run_promoted(&froot, false);
    assert_eq!(promoted.verdicts_text(), v0, "late follower verdicts must be identical");
    assert_eq!(promoted.reused, rules, "every verdict came from the mirror");
    assert_eq!(promoted.fresh, 0, "nothing re-executed");
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&froot);
}

#[test]
fn seeded_stream_faults_quarantine_the_stream_never_the_state() {
    // The follower's contract under a hostile stream: a corrupt frame is
    // never applied — the connection is quarantined and a full re-sync
    // requested — so the mirrored journal is at every moment a byte
    // prefix of the clean mirror, and the sweep always converges once
    // the fault budget is spent.
    let (v0, frames) = shipped_baseline(false);

    // Clean full application, for the prefix oracle.
    let clean = tmpdir("fault-clean");
    apply_prefix(&clean, &frames);
    let full_wal = std::fs::read(clean.join("job/wal.log")).expect("clean mirror wal");
    let _ = std::fs::remove_dir_all(&clean);

    let mut any_fired = false;
    let mut any_requarantined = false;
    for seed in 0..20u64 {
        let injector = StreamFaultInjector::random(seed);
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            assert!(attempts <= 10, "fault plan {seed}: follower never converged");
            let froot = tmpdir(&format!("fault-{seed}"));
            let applier = Applier::new(&froot).expect("applier");
            let mut dec = FrameDecoder::new();
            let mut desync = false;
            let mut torn = false;
            for payload in &frames {
                let mut chunk = frame(payload);
                match injector.on_chunk(chunk.len()) {
                    Some(StreamFault::Torn { keep }) => {
                        // The connection dies mid-frame: the tail of this
                        // chunk and everything after it never arrives.
                        chunk.truncate(keep.min(chunk.len()));
                        torn = true;
                    }
                    Some(StreamFault::Short { keep }) => {
                        // A short read silently loses bytes: the stream
                        // keeps flowing but is desynced from here on.
                        chunk.truncate(keep.min(chunk.len()));
                    }
                    Some(StreamFault::Flip { at }) => {
                        let n = chunk.len();
                        chunk[at % n] ^= 0x20;
                    }
                    Some(StreamFault::DropHeartbeat) | None => {}
                }
                dec.feed(&chunk);
                loop {
                    match dec.next_frame() {
                        Ok(Some(p)) => match decode_wire(&p) {
                            Ok(Wire::Event { event, .. }) => {
                                if applier.apply(&event).is_err() {
                                    desync = true;
                                }
                            }
                            Ok(_) => {}
                            Err(_) => desync = true,
                        },
                        Ok(None) => break,
                        Err(_) => {
                            // Checksum or length-sanity failure: the real
                            // follower drops the connection here.
                            desync = true;
                            break;
                        }
                    }
                    if desync {
                        break;
                    }
                }
                if desync || torn {
                    break;
                }
            }
            // A partial frame left buffered at end-of-stream is the
            // silent-desync case the staleness guard catches.
            let stalled = dec.pending() > 0;
            let wal = std::fs::read(froot.join("job/wal.log")).unwrap_or_default();
            assert!(
                full_wal.starts_with(&wal),
                "fault plan {seed}, attempt {attempts}: corrupt bytes reached the mirror"
            );
            if !(desync || torn || stalled) {
                // Converged: promotion from this mirror is byte-identical.
                let promoted = run_promoted(&froot, false);
                assert_eq!(promoted.verdicts_text(), v0, "fault plan {seed}");
                let _ = std::fs::remove_dir_all(&froot);
                break;
            }
            any_requarantined = true;
            let _ = std::fs::remove_dir_all(&froot);
        }
        if !injector.fired().is_empty() {
            any_fired = true;
        }
    }
    assert!(any_fired, "the sweep must exercise at least one stream fault");
    assert!(any_requarantined, "at least one plan must force a quarantine + re-sync");
}

// ---------------------------------------------------------------------------
// Process-level: lisa serve --repl-listen / --follow, SIGKILL, promotion
// ---------------------------------------------------------------------------

const SYSTEM: &str = r#"
struct Order { id: int, paid: bool, cancelled: bool }
global orders: map<int, Order>;
global shipped: map<int, int>;

fn ship_order(o: Order, courier: int) { shipped.put(o.id, courier); }

fn checkout_ship(oid: int, courier: int) {
    let o: Order = orders.get(oid);
    if (o == null || o.paid == false || o.cancelled) { return; }
    ship_order(o, courier);
}

fn admin_reship(oid: int, courier: int) {
    let ord: Order = orders.get(oid);
    if (ord == null || ord.paid == false) { return; }
    ship_order(ord, courier);
}

fn seed(id: int, paid: bool, cancelled: bool) {
    orders.put(id, new Order { id: id, paid: paid, cancelled: cancelled });
}

fn test_checkout() { seed(1, true, false); checkout_ship(1, 7); assert(shipped.contains(1), "ok"); }
fn test_reship() { seed(2, true, false); admin_reship(2, 9); assert(shipped.contains(2), "ok"); }
"#;

/// `admin_reship` misses the `cancelled` guard: violated.
const STRICT_RULES: &str =
    "when calling ship_order, require o != null && o.paid == true && o.cancelled == false\n";

struct CliFixture {
    dir: PathBuf,
}

impl CliFixture {
    fn new(tag: &str) -> CliFixture {
        let dir = std::env::temp_dir().join(format!("lisa-fo-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sys")).expect("mkdir");
        std::fs::write(dir.join("sys/orders.sir"), SYSTEM).expect("sir");
        std::fs::write(dir.join("strict.txt"), STRICT_RULES).expect("rules");
        CliFixture { dir }
    }

    fn run(&self, args: &[&str]) -> (i32, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_lisa"))
            .args(args)
            .output()
            .expect("spawn lisa");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code().unwrap_or(-1), text)
    }

    fn path(&self, rel: &str) -> String {
        self.dir.join(rel).to_string_lossy().into_owned()
    }
}

impl Drop for CliFixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

struct Daemon {
    child: Child,
    socket: String,
}

impl Daemon {
    fn start(fx: &CliFixture, socket: &str, state: &str, extra: &[&str]) -> Daemon {
        let socket = fx.path(socket);
        let mut args = vec![
            "serve".to_string(),
            "--socket".to_string(),
            socket.clone(),
            "--state-root".to_string(),
            fx.path(state),
            "--workers".to_string(),
            "2".to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let child = Command::new(env!("CARGO_BIN_EXE_lisa"))
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn lisa serve");
        let deadline = Instant::now() + Duration::from_secs(10);
        while !std::path::Path::new(&socket).exists() {
            assert!(Instant::now() < deadline, "daemon never bound its socket");
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, socket }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A TCP port that was free a moment ago.
fn free_port() -> u16 {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let port = listener.local_addr().expect("probe addr").port();
    drop(listener);
    port
}

/// Poll an op against a socket until `want(reply)` or the deadline.
fn poll_until(
    fx: &CliFixture,
    socket: &str,
    args: &[&str],
    what: &str,
    want: impl Fn(&str) -> bool,
) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let mut full = vec!["submit", "--socket", socket];
        full.extend_from_slice(args);
        let (_code, out) = fx.run(&full);
        if want(&out) {
            return out;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: last reply {out}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn sigkilled_leader_is_replaced_by_its_promoted_follower() {
    let fx = CliFixture::new("promo");
    let port = free_port();
    let repl = format!("127.0.0.1:{port}");
    let mut leader = Daemon::start(
        &fx,
        "leader.sock",
        "lstate",
        &["--repl-listen", &repl, "--heartbeat-ms", "100"],
    );
    let follow = format!("tcp:{repl}");
    let follower = Daemon::start(
        &fx,
        "follower.sock",
        "fstate",
        &["--follow", &follow, "--heartbeat-ms", "100", "--heartbeat-timeout-ms", "800"],
    );

    // The follower attaches and completes its initial full sync.
    let out = poll_until(&fx, &follower.socket, &["--op", "stats"], "initial sync", |o| {
        o.contains("\"synced\":true")
    });
    assert!(out.contains("\"role\":\"follower\""), "{out}");

    // Settle a violating job on the leader.
    let sys = fx.path("sys");
    let strict = fx.path("strict.txt");
    let (code, out) = fx.run(&[
        "submit", "--socket", &leader.socket, "--system", &sys, "--rules", &strict,
        "--job-id", "job1",
    ]);
    assert_eq!(code, 1, "violations must block: {out}");
    assert!(out.contains("\"decision\":\"BLOCK\""), "{out}");

    // The verdict reaches the follower's mirror; both sides answer the
    // read-only verdict op with the same digest.
    let fout = poll_until(
        &fx,
        &follower.socket,
        &["--op", "verdict", "--job-id", "job1"],
        "mirrored verdict",
        |o| o.contains("\"decision\":\"BLOCK\""),
    );
    let (_, lout) =
        fx.run(&["submit", "--socket", &leader.socket, "--op", "verdict", "--job-id", "job1"]);
    let fnv_of = |s: &str| {
        s.split("\"verdicts_fnv\":\"")
            .nth(1)
            .and_then(|t| t.split('"').next())
            .map(str::to_owned)
    };
    let ffnv = fnv_of(&fout).expect("follower digest");
    assert_eq!(Some(ffnv.clone()), fnv_of(&lout), "mirror digest diverged: {fout} vs {lout}");

    // Writes are refused while the leader is alive (Degradation:
    // stale reads allowed, no split-brain writes).
    let (_code, out) = fx.run(&[
        "submit", "--socket", &follower.socket, "--system", &sys, "--rules", &strict,
        "--job-id", "rogue",
    ]);
    assert!(out.contains("read-only"), "follower must refuse writes: {out}");

    // Quiesce, then compare the mirrored journal byte-for-byte.
    poll_until(&fx, &follower.socket, &["--op", "stats"], "zero lag", |o| {
        o.contains("\"lag_frames\":0")
    });
    let lwal = std::fs::read(fx.dir.join("lstate/job1/wal.log")).expect("leader wal");
    let fwal = std::fs::read(fx.dir.join("fstate/job1/wal.log")).expect("follower wal");
    assert_eq!(lwal, fwal, "mirrored journal must be byte-identical");

    // SIGKILL the leader: heartbeats stop, the follower times out and
    // promotes itself into a full read-write daemon.
    leader.child.kill().expect("SIGKILL leader");
    leader.child.wait().expect("reap leader");
    let out = poll_until(&fx, &follower.socket, &["--op", "stats"], "promotion", |o| {
        o.contains("\"role\":\"leader\"")
    });
    assert!(out.contains("\"promotions\":1"), "{out}");
    assert!(out.contains("repl.frames_applied"), "repl counters must survive promotion: {out}");

    // Resubmitting the settled job to the promoted follower reuses every
    // verdict from the mirrored journal — nothing re-executes, and the
    // decision is identical to the dead leader's.
    let (code, out) = fx.run(&[
        "submit", "--socket", &follower.socket, "--system", &sys, "--rules", &strict,
        "--job-id", "job1",
    ]);
    assert_eq!(code, 1, "promoted decision identical: {out}");
    assert!(out.contains("\"decision\":\"BLOCK\""), "{out}");
    assert!(out.contains("\"reused\":1"), "verdict must come from the mirror: {out}");
    assert!(out.contains("\"fresh\":0"), "nothing re-executed: {out}");

    // And it accepts brand-new work.
    let (code, out) = fx.run(&[
        "submit", "--socket", &follower.socket, "--system", &sys, "--rules", &strict,
        "--job-id", "job2",
    ]);
    assert_eq!(code, 1, "promoted daemon gates new jobs: {out}");

    let (code, _) = fx.run(&["submit", "--socket", &follower.socket, "--op", "shutdown"]);
    assert_eq!(code, 0);
}
