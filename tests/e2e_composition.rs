//! §5 Q3 end-to-end: composing validated low-level semantics into a
//! high-level guarantee on a real corpus version.

use lisa::{compose, HighLevelProperty, Obligation, Pipeline, PipelineConfig, TestSelection};
use lisa_corpus::case;
use lisa_oracle::{author_rule, infer_rules};

fn pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig {
        selection: TestSelection::All,
        ..PipelineConfig::default()
    })
}

#[test]
fn ephemeral_lifecycle_property_guaranteed_on_fixed_version() {
    let case = case("zk-ephemeral").expect("case");
    // The mined rule plus a developer-authored strengthening compose into
    // the high-level lifecycle property of §3.1.
    let mined = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");
    let authored = author_rule(
        "DEV-ZK-1",
        "when calling create_ephemeral_node, require s != null",
    )
    .expect("authored");

    let property = HighLevelProperty::new(
        "H-EPHEMERAL",
        "no client may create an ephemeral node when the session is missing or CLOSING",
        "session != null && session.closing == false",
    )
    .expect("property");

    let p = pipeline();
    let reports = vec![
        p.check_rule(&case.versions.fixed, &mined),
        p.check_rule(&case.versions.fixed, &authored),
    ];
    let result = compose(
        &property,
        &[
            Obligation::new(mined.clone()).bind("s", "session"),
            Obligation::new(authored.clone()).bind("s", "session"),
        ],
        &reports,
    );
    assert!(result.sufficient, "combined: {}", result.combined);
    assert!(result.guaranteed(), "unenforced: {:?}", result.unenforced_rules);
    assert!(lisa_smt::is_sat(&result.combined), "composition is not vacuous");
}

#[test]
fn property_not_guaranteed_on_regressed_version() {
    let case = case("zk-ephemeral").expect("case");
    let mined = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");
    let property = HighLevelProperty::new(
        "H-EPHEMERAL",
        "no create on closing session",
        "session != null && session.closing == false",
    )
    .expect("property");
    let reports = vec![pipeline().check_rule(&case.versions.regressed, &mined)];
    let result = compose(
        &property,
        &[Obligation::new(mined).bind("s", "session")],
        &reports,
    );
    // Logically sufficient, but the rule is violated on this version, so
    // the high-level guarantee does not hold.
    assert!(result.sufficient);
    assert!(!result.guaranteed());
    assert_eq!(result.unenforced_rules.len(), 1);
}

#[test]
fn missing_obligation_is_detected() {
    let case = case("hbase-snapshot-ttl").expect("case");
    let mined = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");
    // A stronger property than the rules provide: freshness margin.
    let property = HighLevelProperty::new(
        "H-SNAPSHOT-MARGIN",
        "snapshots served with at least 100 ticks of ttl margin",
        "snap != null && margin >= 100",
    )
    .expect("property");
    let result = compose(&property, &[Obligation::new(mined)], &[]);
    assert!(!result.sufficient, "the margin obligation is not covered by the mined rule");
}

#[test]
fn authored_suggestions_match_mined_rules() {
    // The §5 Q2 assistant: suggestions mined from the fixed codebase
    // agree with what inference extracted from the ticket.
    let case = case("zk-ephemeral").expect("case");
    let suggestions = lisa_oracle::suggest_conditions(
        &case.versions.fixed.program,
        "create_ephemeral_node",
    );
    assert!(!suggestions.is_empty());
    let top = lisa_smt::parse_cond(&suggestions[0].condition_src).expect("cond");
    let truth = lisa_smt::parse_cond(&case.ground_truth.condition_src).expect("truth");
    assert!(
        lisa_smt::equivalent(&top, &truth),
        "suggested `{}` vs truth `{}`",
        suggestions[0].condition_src,
        case.ground_truth.condition_src
    );
}
