//! §4 / experiment E6: "Applying LISA to a small set of historical
//! failures, we identified two previously unknown bugs in HBase and
//! HDFS" — plus the latent multi-op path in the ZooKeeper flagship.
//!
//! The *latest* version of each flagship system has every historically
//! reported bug fixed; LISA, enforcing the rules mined from the old
//! tickets, still finds an unchecked path that no ticket ever described.

use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_corpus::case;
use lisa_oracle::infer_rules;

fn pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig {
        selection: TestSelection::All,
        ..PipelineConfig::default()
    })
}

fn check_latest(case_id: &str) -> lisa::RuleReport {
    let case = case(case_id).expect("case");
    let rule = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");
    pipeline().check_rule(&case.versions.latest, &rule)
}

#[test]
fn hbase_bug1_expired_snapshot_scan_path() {
    // HBASE-29296 analogue: the scanner path misses the expiration check.
    let report = check_latest("hbase-snapshot-ttl");
    let violated: Vec<&str> = report
        .chains
        .iter()
        .filter(|c| c.verdict.is_violated())
        .map(|c| c.entry.as_str())
        .collect();
    assert_eq!(violated, vec!["scan_snapshot"], "{:#?}", report.chains);
    // The historically fixed paths verify.
    assert!(report.sanity_ok);
    let verified: Vec<&str> = report
        .chains
        .iter()
        .filter(|c| matches!(c.verdict, lisa::ChainVerdict::Verified))
        .map(|c| c.entry.as_str())
        .collect();
    assert!(verified.contains(&"restore_snapshot"));
    assert!(verified.contains(&"export_snapshot"));
}

#[test]
fn hdfs_bug2_batched_listing_without_locations() {
    // HDFS-17768 analogue: getBatchedListing returns locationless blocks.
    let report = check_latest("hdfs-observer-read");
    let violated: Vec<&str> = report
        .chains
        .iter()
        .filter(|c| c.verdict.is_violated())
        .map(|c| c.entry.as_str())
        .collect();
    assert_eq!(violated, vec!["get_batched_listing"], "{:#?}", report.chains);
    // Witness shows the unchecked location flag.
    let v = report.violations()[0];
    assert_eq!(
        v.witness.get("b.has_location"),
        Some(&lisa_smt::Value::Bool(false)),
        "{}",
        v.witness
    );
}

#[test]
fn zookeeper_latent_multi_op_path() {
    let report = check_latest("zk-ephemeral");
    let violated: Vec<&str> = report
        .chains
        .iter()
        .filter(|c| c.verdict.is_violated())
        .map(|c| c.entry.as_str())
        .collect();
    assert_eq!(violated, vec!["multi_op_create"], "{:#?}", report.chains);
}

#[test]
fn proposed_fixes_close_the_gap() {
    // "We propose to add timestamp checks to other paths, and the
    // solution has been accepted" — model the accepted fix by checking
    // that the fully-guarded variant of each path shape verifies: the
    // fixed paths of the same version all carry the full condition and
    // all verify, so adding the same guard to the flagged path closes it.
    for id in ["hbase-snapshot-ttl", "hdfs-observer-read", "zk-ephemeral"] {
        let report = check_latest(id);
        assert_eq!(report.violated_count(), 1, "{id}: exactly one unknown bug");
        assert!(
            report.verified_count() >= 2,
            "{id}: the guarded siblings demonstrate the accepted fix shape"
        );
    }
}
