//! End-to-end reproduction of the paper's running example (Figures 2-3):
//! ZK-1208 is fixed, LISA mines the low-level semantic from the ticket,
//! and the ZK-1496-class regression is caught at the gate before it can
//! ship — while the original fixed path verifies (the sanity check).

use lisa::{Gate, GateDecision, Pipeline, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::case;
use lisa_oracle::infer_rules;

fn config() -> PipelineConfig {
    PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
}

#[test]
fn the_full_story_of_zk_1208() {
    let case = case("zk-ephemeral").expect("corpus case");

    // 1. The first incident is fixed; the ticket bundle exists.
    let ticket = case.original_ticket();
    assert_eq!(ticket.id, "ZK-9208");

    // 2. LISA infers the low-level semantic from the ticket.
    let inference = infer_rules(ticket).expect("inference succeeds");
    assert_eq!(inference.rules.len(), 1);
    let rule = &inference.rules[0];
    assert_eq!(rule.target.callee(), "create_ephemeral_node");
    let truth = lisa_smt::parse_cond(&case.ground_truth.condition_src).expect("truth");
    assert!(
        lisa_smt::equivalent(&rule.condition, &truth),
        "inferred `{}` must match ground truth `{}`",
        rule.condition,
        case.ground_truth.condition_src
    );

    // 3. The rule is grounded against the fixed version (cross-check).
    let cc = lisa::cross_check(&case.versions.fixed, rule);
    assert!(cc.grounded, "{}", cc.reason);

    // 4. The fixed version passes the gate.
    let mut registry = RuleRegistry::new();
    registry.register(rule.clone());
    let gate = Gate::new(&registry).config(config()).workers(2);
    let fixed_report = gate.run(&case.versions.fixed);
    assert_eq!(fixed_report.decision, GateDecision::Pass);

    // 5. A year later the touch-session path lands: the gate blocks it —
    //    the ZK-1496 regression never ships.
    let regressed_report = gate.run(&case.versions.regressed);
    assert_eq!(regressed_report.decision, GateDecision::Block);
    let rr = &regressed_report.reports[0];
    assert!(rr.sanity_ok, "the original fixed path must still verify");
    let violated: Vec<&str> = rr
        .chains
        .iter()
        .filter(|c| c.verdict.is_violated())
        .map(|c| c.entry.as_str())
        .collect();
    assert_eq!(violated, vec!["touch_session_create"], "{:#?}", rr.chains);

    // 6. The violation evidence names the unchecked state.
    let v = rr.violations()[0];
    assert_eq!(
        v.witness.get("s.closing"),
        Some(&lisa_smt::Value::Bool(true)),
        "witness must show a closing session slipping through: {}",
        v.witness
    );
}

#[test]
fn regression_tests_alone_miss_the_recurrence() {
    // The contrast the paper draws in §2.1: the regression test added for
    // ZK-1208 exercises only the original path and stays green on the
    // regressed version.
    let case = case("zk-ephemeral").expect("corpus case");
    let replay = lisa::baselines::regression_test_baseline(
        &case.versions.regressed,
        &case.original_ticket().regression_tests,
    );
    assert_eq!(replay.tests_run, 1);
    assert!(!replay.detected(), "the old test is blind to the new path");
}

#[test]
fn pipeline_works_with_rag_selection() {
    let case = case("zk-ephemeral").expect("corpus case");
    let ticket = case.original_ticket();
    let rule = infer_rules(ticket)
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("one rule");
    let pipeline = Pipeline::new(PipelineConfig {
        selection: TestSelection::Rag { k: 3 },
        ..PipelineConfig::default()
    });
    let report = pipeline.check_rule(&case.versions.regressed, &rule);
    assert!(report.has_violation(), "RAG-selected tests still expose the violation");
    assert!(
        (report.stats.tests_selected as usize) <= case.versions.regressed.tests.len(),
        "selection must not exceed the suite"
    );
}
