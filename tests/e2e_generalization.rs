//! Figure 6 / experiment E5: rule generalization on the serialization
//! case (ZK-2201 → ZK-3531 analogue).
//!
//! - the *specific* rule (blocking I/O inside `serialize_tree` only)
//!   misses the recurrence in the ACL serializer,
//! - the *generalized* rule ("no blocking I/O within synchronized
//!   blocks") catches it with no false positives,
//! - the *naively broadened* rule (no blocking I/O anywhere) catches it
//!   too but also flags the legitimate unlocked snapshot write.

use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_corpus::case;
use lisa_oracle::{infer_rules, rescope, Scope};

fn pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig {
        selection: TestSelection::All,
        ..PipelineConfig::default()
    })
}

fn scoped_rule(scope: Scope) -> lisa_oracle::SemanticRule {
    let case = case("zk-sync-serialize").expect("case");
    let mined = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");
    // The mined rule is the specific BuiltinInCaller form.
    assert!(matches!(
        mined.target,
        lisa_analysis::TargetSpec::BuiltinInCaller { .. }
    ));
    rescope(&mined, scope).expect("rescope")
}

#[test]
fn specific_rule_misses_the_recurrence() {
    let case = case("zk-sync-serialize").expect("case");
    let rule = scoped_rule(Scope::Specific);
    let report = pipeline().check_rule(&case.versions.regressed, &rule);
    assert_eq!(
        report.violated_count(),
        0,
        "the specific rule only watches serialize_tree: {:#?}",
        report.chains
    );
}

#[test]
fn generalized_rule_catches_it_without_false_positives() {
    let case = case("zk-sync-serialize").expect("case");
    let rule = scoped_rule(Scope::Generalized);
    let report = pipeline().check_rule(&case.versions.regressed, &rule);
    assert_eq!(report.violated_count(), 1, "{:#?}", report.chains);
    let violated: Vec<&str> =
        report.chains.iter().filter(|c| c.verdict.is_violated()).map(|c| c.entry.as_str()).collect();
    assert_eq!(violated, vec!["serialize_acl_cache"]);
    // And on the clean latest version: nothing flagged.
    let clean = pipeline().check_rule(&case.versions.latest, &rule);
    assert_eq!(clean.violated_count(), 0, "{:#?}", clean.chains);
}

#[test]
fn naive_broadening_adds_false_positives() {
    let case = case("zk-sync-serialize").expect("case");
    let rule = scoped_rule(Scope::NaiveBroad);
    // On the *clean* latest version the naive rule still fires — on the
    // legitimate unlocked snapshot write and the moved serializer writes.
    let clean = pipeline().check_rule(&case.versions.latest, &rule);
    assert!(
        clean.violated_count() >= 1,
        "naive broadening must produce false positives: {:#?}",
        clean.chains
    );
    let flagged: Vec<&str> =
        clean.chains.iter().filter(|c| c.verdict.is_violated()).map(|c| c.entry.as_str()).collect();
    assert!(
        flagged.contains(&"write_snapshot"),
        "the legitimate snapshot write gets flagged: {flagged:?}"
    );
}

#[test]
fn generalization_summary_matches_figure_6() {
    // The three-scope contrast in one table: (catches recurrence, false
    // positives on clean code).
    let case = case("zk-sync-serialize").expect("case");
    let mut rows = Vec::new();
    for scope in [Scope::Specific, Scope::Generalized, Scope::NaiveBroad] {
        let rule = scoped_rule(scope);
        let on_regressed = pipeline().check_rule(&case.versions.regressed, &rule);
        let on_clean = pipeline().check_rule(&case.versions.latest, &rule);
        rows.push((scope, on_regressed.violated_count() > 0, on_clean.violated_count()));
    }
    assert_eq!(rows[0], (Scope::Specific, false, 0));
    assert_eq!(rows[1].0, Scope::Generalized);
    assert!(rows[1].1 && rows[1].2 == 0);
    assert_eq!(rows[2].0, Scope::NaiveBroad);
    assert!(rows[2].1 && rows[2].2 > 0);
}
