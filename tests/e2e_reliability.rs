//! §5 Q1 / experiment E7: LLM reliability. The noise model reintroduces
//! the failure modes the paper worries about (non-determinism and
//! hallucination); the cross-checking mechanism filters them.

use lisa::cross_check;
use lisa_corpus::all_cases;
use lisa_oracle::{infer_rules, NoiseModel, Perturbation, SemanticRule};

/// Mine the faithful call-target rules across the corpus (the builtin
/// case is exercised elsewhere).
fn faithful_rules() -> Vec<(lisa_corpus::Case, SemanticRule)> {
    all_cases()
        .into_iter()
        .filter_map(|case| {
            let rule = infer_rules(case.original_ticket()).ok()?.rules.into_iter().next()?;
            matches!(rule.target, lisa_analysis::TargetSpec::Call { .. })
                .then_some((case, rule))
        })
        .collect()
}

#[test]
fn faithful_rules_all_survive_cross_checking() {
    for (case, rule) in faithful_rules() {
        let cc = cross_check(&case.versions.fixed, &rule);
        assert!(cc.grounded, "{}: {}", case.meta.id, cc.reason);
    }
}

#[test]
fn hallucinated_rules_are_filtered_by_cross_checking() {
    let pairs = faithful_rules();
    let rules: Vec<SemanticRule> = pairs.iter().map(|(_, r)| r.clone()).collect();
    let noisy = NoiseModel::new(1.0, 0.0, 1234).apply(&rules);
    let mut wrong_total = 0usize;
    let mut wrong_caught = 0usize;
    let mut weak_total = 0usize;
    let mut weak_survive = 0usize;
    for ((case, _), n) in pairs.iter().zip(noisy.iter()) {
        let cc = cross_check(&case.versions.fixed, &n.rule);
        match n.perturbation {
            Perturbation::FlippedOperator | Perturbation::RenamedVariable => {
                wrong_total += 1;
                if !cc.grounded {
                    wrong_caught += 1;
                }
            }
            Perturbation::DroppedConjunct => {
                // Weakened rules are imprecise, not wrong: they ground.
                weak_total += 1;
                if cc.grounded {
                    weak_survive += 1;
                }
            }
            _ => {}
        }
    }
    assert!(wrong_total >= 3, "seeded noise should produce wrong rules: {wrong_total}");
    assert_eq!(
        wrong_caught, wrong_total,
        "every flipped/renamed rule must fail grounding"
    );
    assert_eq!(
        weak_survive, weak_total,
        "dropped-conjunct rules ground (imprecise, not wrong)"
    );
}

#[test]
fn nondeterminism_is_seed_controlled() {
    let rules: Vec<SemanticRule> =
        faithful_rules().into_iter().map(|(_, r)| r).collect();
    let model = NoiseModel::new(0.4, 0.1, 7);
    let a = model.apply(&rules);
    let b = model.apply(&rules);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.perturbation, y.perturbation);
        assert_eq!(x.rule.condition, y.rule.condition);
    }
    // A different seed (a different "run of the LLM") produces different
    // outputs — the reproducibility risk the paper names.
    let c = NoiseModel::new(0.4, 0.1, 8).apply(&rules);
    let differs = a
        .iter()
        .zip(c.iter())
        .any(|(x, y)| x.perturbation != y.perturbation);
    assert!(differs);
}

#[test]
fn precision_improves_with_cross_checking() {
    // Precision of the rule set that reaches enforcement, with and
    // without the cross-checking filter, under heavy noise.
    let pairs = faithful_rules();
    let rules: Vec<SemanticRule> = pairs.iter().map(|(_, r)| r.clone()).collect();
    let noisy = NoiseModel::new(0.6, 0.0, 99).apply(&rules);
    let is_correct = |p: &Perturbation| {
        matches!(p, Perturbation::Faithful | Perturbation::DroppedConjunct)
    };
    let unfiltered_correct = noisy.iter().filter(|n| is_correct(&n.perturbation)).count();
    let unfiltered_total = noisy.len();
    let mut filtered_correct = 0usize;
    let mut filtered_total = 0usize;
    for ((case, _), n) in pairs.iter().zip(noisy.iter()) {
        if cross_check(&case.versions.fixed, &n.rule).grounded {
            filtered_total += 1;
            if is_correct(&n.perturbation) {
                filtered_correct += 1;
            }
        }
    }
    let p_unfiltered = unfiltered_correct as f64 / unfiltered_total as f64;
    let p_filtered = filtered_correct as f64 / filtered_total.max(1) as f64;
    assert!(
        p_filtered > p_unfiltered,
        "cross-checking must raise precision: {p_filtered:.2} vs {p_unfiltered:.2}"
    );
    assert!(
        (p_filtered - 1.0).abs() < f64::EPSILON,
        "everything grounded is faithful or merely weakened: {p_filtered:.2}"
    );
}
