//! §4 Bug #2 as a runnable walkthrough: the observer-namenode location
//! checks (HDFS-13924/16732) do not cover the batched-listing path in
//! the latest version — the HDFS-17768 analogue.
//!
//! ```sh
//! cargo run --example hdfs_observer
//! ```

use lisa::report::render_rule_report;
use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_corpus::case;
use lisa_oracle::infer_rules;

fn main() {
    let case = case("hdfs-observer-read").expect("corpus case");

    println!("== the historical tickets ==");
    for t in &case.tickets {
        println!("  {} — {}", t.id, t.title);
        println!("      {}", t.description);
    }

    let rule = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");
    println!("\nmined contract: {}", rule.contract());

    let pipeline = Pipeline::new(PipelineConfig {
        selection: TestSelection::All,
        ..PipelineConfig::default()
    });

    println!("\n== the regressed version the second ticket describes ==");
    let report = pipeline.check_rule(&case.versions.regressed, &rule);
    print!("{}", render_rule_report(&report));

    println!("\n== the latest version: known fixes in place, one path still open ==");
    let report = pipeline.check_rule(&case.versions.latest, &rule);
    print!("{}", render_rule_report(&report));
    let v = report.violations()[0];
    println!(
        "previously unknown bug: `get_batched_listing` can return a block with {}",
        v.witness
    );
    println!("(paper: 'HDFS developers have approved the fix')");
}
