//! The paper's running example (Figures 2-3) as a runnable walkthrough:
//! the ZK-1208 ticket is mined into a rule, the fix passes the gate, and
//! the ZK-1496-class change a year later is blocked before deployment.
//!
//! ```sh
//! cargo run --example zookeeper_ephemeral
//! ```

use lisa::report::render_enforcement;
use lisa::{Gate, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::case;
use lisa_oracle::infer_rules;

fn main() {
    let case = case("zk-ephemeral").expect("corpus case");
    let ticket = case.original_ticket();

    println!("== incident {} ==", ticket.id);
    println!("{}\n", ticket.title);
    println!("the patch the developers shipped:");
    for (module, diff) in ticket.patch() {
        println!("--- {module}");
        print!("{diff}");
    }

    println!("\n== what LISA learns from the ticket ==");
    let inference = infer_rules(ticket).expect("inference");
    println!("high-level semantics: {}", inference.report.high_level_semantics);
    for low in &inference.report.low_level_semantics {
        println!("low-level semantics:  {}", low.description);
        println!("  target statement:    {}", low.target_statement);
        println!("  condition statement: {}", low.condition_statement);
    }
    let rule = &inference.rules[0];
    println!("executable contract:   {}", rule.contract());

    let cc = lisa::cross_check(&case.versions.fixed, rule);
    println!("\ngrounding against the fixed version: {}", cc.reason);
    assert!(cc.grounded);

    let mut registry = RuleRegistry::new();
    registry.register(rule.clone());
    let config =
        PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() };

    println!("\n== gating the fixed version ==");
    let gate = Gate::new(&registry).config(config).workers(2);
    let fixed = gate.run(&case.versions.fixed);
    print!("{}", render_enforcement(&fixed));

    println!("\n== one year later: the touch-session path lands ==");
    let regressed = gate.run(&case.versions.regressed);
    print!("{}", render_enforcement(&regressed));
    assert_eq!(regressed.decision, lisa::GateDecision::Block);
    println!("\nthe ZK-1496 regression never reaches production.");
}
