//! Quickstart: protect your own system with a LISA rule in ~60 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! We write a tiny SIR system with two request paths to a guarded
//! action, author a low-level semantic for it, and let the pipeline find
//! the path that forgot a check.

use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_analysis::TargetSpec;
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_lang::Program;
use lisa_oracle::SemanticRule;

const SYSTEM: &str = r#"
struct Order { id: int, paid: bool, cancelled: bool }
global orders: map<int, Order>;
global shipped: map<int, int>;

fn ship_order(o: Order, courier: int) {
    shipped.put(o.id, courier);
    log("order shipped");
}

// The checkout path validates everything.
fn checkout_ship(oid: int, courier: int) {
    let o: Order = orders.get(oid);
    if (o == null || o.paid == false || o.cancelled) { return; }
    ship_order(o, courier);
}

// The admin retry path forgot the cancellation check.
fn admin_reship(oid: int, courier: int) {
    let ord: Order = orders.get(oid);
    if (ord == null || ord.paid == false) { return; }
    ship_order(ord, courier);
}

fn seed(id: int, paid: bool, cancelled: bool) {
    orders.put(id, new Order { id: id, paid: paid, cancelled: cancelled });
}

fn test_checkout_ships_paid_order() {
    seed(1, true, false);
    checkout_ship(1, 7);
    assert(shipped.contains(1), "paid order ships");
}

fn test_admin_reship_works() {
    seed(2, true, false);
    admin_reship(2, 9);
    assert(shipped.contains(2), "reship works");
}
"#;

fn main() {
    // 1. Parse + type-check the system (tests included).
    let program = Program::parse_single("shop/orders", SYSTEM).expect("parse");
    let errors = lisa_lang::check_program(&program);
    assert!(errors.is_empty(), "{errors:?}");
    let tests = discover_tests(&program, "test_");
    let version = SystemVersion::new("v1", program, tests);

    // 2. Author the low-level semantic: the safety contract <P> s <>.
    let rule = SemanticRule::new(
        "SHOP-1",
        "never ship an unpaid or cancelled order",
        TargetSpec::Call { callee: "ship_order".into() },
        "o != null && o.paid == true && o.cancelled == false",
    )
    .expect("rule");
    println!("rule:     {}", rule.contract());

    // 3. Assert it across every path that reaches ship_order.
    let pipeline = Pipeline::new(PipelineConfig {
        selection: TestSelection::All,
        ..PipelineConfig::default()
    });
    let report = pipeline.check_rule(&version, &rule);

    // 4. Read the verdicts.
    println!("{}", lisa::report::render_rule_report(&report));
    assert!(report.has_violation(), "the admin path must be flagged");
    let v = report.violations()[0];
    println!(
        "counterexample: a state with {} slips through `{}`",
        v.witness, v.chain.last().expect("chain")
    );
}
