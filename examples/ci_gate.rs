//! The CI/CD vision of §1: "every failure, once fixed, automatically
//! becomes an executable contract." This example plays a release
//! engineer: it processes every historical ticket in the corpus, builds
//! the full rule registry (with noisy rules filtered by cross-checking),
//! then gates candidate builds.
//!
//! ```sh
//! cargo run --example ci_gate
//! ```

use lisa::{cross_check, Gate, GateDecision, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::all_cases;
use lisa_oracle::{infer_rules, rescope, Scope};

fn main() {
    let cases = all_cases();
    let config =
        PipelineConfig { selection: TestSelection::Rag { k: 3 }, ..PipelineConfig::default() };

    // Phase 1: every fixed ticket becomes an executable contract.
    println!("== building the rule registry from {} historical tickets ==", {
        cases.iter().map(|c| c.tickets.len()).sum::<usize>()
    });
    let mut registries: Vec<(String, RuleRegistry)> = Vec::new();
    for case in &cases {
        let mut registry = RuleRegistry::new();
        for ticket in &case.tickets {
            let Ok(out) = infer_rules(ticket) else { continue };
            for rule in out.rules {
                // Generalize the builtin family (Figure 6)...
                let rule = match &rule.target {
                    lisa_analysis::TargetSpec::Call { .. } => rule,
                    _ => rescope(&rule, Scope::Generalized).expect("rescope"),
                };
                // ...and only register rules grounded on the fixed code.
                let cc = cross_check(&case.versions.fixed, &rule);
                if cc.grounded {
                    println!("  + {}  [{}]", rule.contract(), ticket.id);
                    registry.register(rule);
                } else {
                    println!("  - rejected {} ({})", rule.id, cc.reason);
                }
            }
        }
        registries.push((case.meta.id.clone(), registry));
    }

    // Phase 2: gate candidate builds.
    println!("\n== gating candidate builds ==");
    let mut blocked = 0;
    let mut passed = 0;
    for (case, (id, registry)) in cases.iter().zip(registries.iter()) {
        for version in [&case.versions.regressed, &case.versions.latest] {
            let report = Gate::new(registry).config(config.clone()).workers(4).run(version);
            let tag = format!("{id}@{}", version.label);
            match report.decision {
                GateDecision::Block => {
                    blocked += 1;
                    let culprits: Vec<String> = report
                        .violated_rules()
                        .iter()
                        .map(|r| r.rule_id.clone())
                        .collect();
                    println!("  BLOCK {tag}  (violates {})", culprits.join(", "));
                }
                GateDecision::Pass => {
                    passed += 1;
                    println!("  pass  {tag}");
                }
            }
        }
    }
    println!("\n{blocked} build(s) blocked, {passed} passed.");
    println!("every blocked build is a production regression that never shipped.");
}
