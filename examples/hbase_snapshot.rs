//! §4 Bug #1 as a runnable walkthrough: rules mined from the historical
//! HBASE-27671/28704 tickets find the previously unknown expired-
//! snapshot read path (the HBASE-29296 analogue) in the latest version.
//!
//! ```sh
//! cargo run --example hbase_snapshot
//! ```

use lisa::report::render_rule_report;
use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_corpus::case;
use lisa_oracle::infer_rules;

fn main() {
    let case = case("hbase-snapshot-ttl").expect("corpus case");

    println!("== the historical tickets ==");
    for t in &case.tickets {
        println!("  {} — {}", t.id, t.title);
    }

    let rule = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");
    println!("\nmined contract: {}", rule.contract());

    println!("\n== enforcing against the LATEST version (all known bugs fixed) ==");
    let pipeline = Pipeline::new(PipelineConfig {
        selection: TestSelection::All,
        ..PipelineConfig::default()
    });
    let report = pipeline.check_rule(&case.versions.latest, &rule);
    print!("{}", render_rule_report(&report));

    let violations = report.violations();
    assert_eq!(violations.len(), 1, "exactly one unknown bug");
    let v = violations[0];
    println!("previously unknown bug: the scanner path serves snapshots without the");
    println!("expiration check. Counterexample state: {}", v.witness);
    println!("(paper: 'the solution has been accepted by hbase developers')");
}
