//! The §5 open questions, live: a developer authors rules through the
//! structured template (Q2) with guard-mined suggestions, then composes
//! the validated rules into a high-level guarantee (Q3).
//!
//! ```sh
//! cargo run --example author_and_compose
//! ```

use lisa::{compose, HighLevelProperty, Obligation, Pipeline, PipelineConfig, TestSelection};
use lisa_corpus::case;
use lisa_oracle::{author_rule, suggest_conditions};

fn main() {
    let case = case("zk-ephemeral").expect("corpus case");
    let fixed = &case.versions.fixed;

    // Q2, step 1: the assistant suggests conditions mined from existing
    // guards around the target.
    println!("== suggestions for `create_ephemeral_node` ==");
    let suggestions = suggest_conditions(&fixed.program, "create_ephemeral_node");
    for s in &suggestions {
        println!("  {} paths already enforce: {}", s.support, s.condition_src);
    }

    // Q2, step 2: the developer writes template sentences.
    let sentences = [
        "when calling create_ephemeral_node, require s != null && s.closing == false",
        "never call blocking_io while holding a lock",
    ];
    println!("\n== authored rules ==");
    let mut rules = Vec::new();
    for (i, sentence) in sentences.iter().enumerate() {
        let rule = author_rule(&format!("DEV-{i}"), sentence).expect("template");
        println!("  {sentence}\n    => {}", rule.contract());
        rules.push(rule);
    }

    // Enforce the call rule on the fixed version.
    let pipeline = Pipeline::new(PipelineConfig {
        selection: TestSelection::All,
        ..PipelineConfig::default()
    });
    let report = pipeline.check_rule(fixed, &rules[0]);
    println!(
        "\nenforced on {}: {} verified / {} violated / {} uncovered",
        fixed.label,
        report.verified_count(),
        report.violated_count(),
        report.not_covered_count()
    );

    // Q3: compose into the high-level property of §3.1.
    let property = HighLevelProperty::new(
        "H-EPHEMERAL",
        "No client may create an ephemeral node when the session is in the CLOSING state",
        "session != null && session.closing == false",
    )
    .expect("property");
    let result = compose(
        &property,
        &[Obligation::new(rules[0].clone()).bind("s", "session")],
        &[report],
    );
    println!("\n== composition ==");
    println!("property:   {}", property.description);
    println!("combined:   {}", result.combined);
    println!("sufficient: {}", result.sufficient);
    println!("guaranteed: {}", result.guaranteed());
    assert!(result.guaranteed());
}
