//! Determinism property suite for the work-stealing gate.
//!
//! The scheduler's contract is that worker count is invisible in every
//! artifact: a seeded, randomized registry gated at width 1 and width 8
//! must render byte-identical reports, emit byte-identical JSON (modulo
//! wall-clock fields), and journal byte-identical WAL records — with the
//! version-scoped cache on *and* off, and under seeded fault injection.

use std::sync::Arc;

use lisa::report::render_enforcement;
use lisa::{
    gate_durable, DurableOptions, FaultInjector, FaultPlan, Gate, GateCache, GateOptions,
    PipelineConfig, RuleRegistry, TestSelection,
};
use lisa_analysis::TargetSpec;
use lisa_corpus::{all_cases, case};
use lisa_oracle::{infer_rules, rescope, Scope, SemanticRule};
use lisa_util::RetryPolicy;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Every rule the corpus oracle can mine, in a fixed order — the pool the
/// seeded registries draw from.
fn rule_pool() -> Vec<SemanticRule> {
    let mut pool = Vec::new();
    for case in all_cases() {
        let Ok(out) = infer_rules(case.original_ticket()) else { continue };
        for rule in out.rules {
            let rule = match &rule.target {
                TargetSpec::Call { .. } => rule,
                _ => rescope(&rule, Scope::Generalized).expect("rescope"),
            };
            pool.push(rule);
        }
    }
    assert!(pool.len() >= 4, "corpus pool too small for property runs");
    pool
}

/// A randomized registry: seeded Fisher-Yates shuffle of the pool, then a
/// seeded prefix of 2..=5 rules. Same seed → same registry.
fn seeded_registry(pool: &[SemanticRule], seed: u64) -> RuleRegistry {
    let mut s = seed | 1;
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = (xorshift(&mut s) as usize) % (i + 1);
        idx.swap(i, j);
    }
    let keep = 2 + (xorshift(&mut s) as usize) % 4;
    let mut reg = RuleRegistry::new();
    for &i in idx.iter().take(keep) {
        reg.register(pool[i].clone());
    }
    reg
}

fn config() -> PipelineConfig {
    PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
}

/// Zero every `"wall_ms":N` — the one field that legitimately differs
/// between two runs of the same gate.
fn normalize_wall(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(at) = rest.find("\"wall_ms\":") {
        let tail = &rest[at + "\"wall_ms\":".len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..at]);
        out.push_str("\"wall_ms\":0");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

#[test]
fn seeded_registries_are_width_invariant_cache_on_and_off() {
    let pool = rule_pool();
    let zk = case("zk-ephemeral").expect("case");
    for seed in [3, 17, 40, 99] {
        let reg = seeded_registry(&pool, seed);
        for version in [&zk.versions.regressed, &zk.versions.fixed] {
            for cached in [false, true] {
                let run = |workers: usize| {
                    let mut gate = Gate::new(&reg).config(config()).workers(workers);
                    let cache;
                    if cached {
                        cache = Arc::new(GateCache::new());
                        gate = gate.cache(&cache);
                    }
                    let report = gate.run(version);
                    (render_enforcement(&report), lisa::json::enforcement_json(&report))
                };
                let (text1, json1) = run(1);
                let (text8, json8) = run(8);
                assert_eq!(
                    text8, text1,
                    "seed {seed} @ {} (cache {cached}): report drifted across widths",
                    version.label
                );
                assert_eq!(
                    normalize_wall(&json8),
                    normalize_wall(&json1),
                    "seed {seed} @ {} (cache {cached}): JSON drifted across widths",
                    version.label
                );
            }
        }
    }
}

#[test]
fn durable_wal_bytes_are_width_invariant() {
    let pool = rule_pool();
    let zk = case("zk-ephemeral").expect("case");
    for seed in [7, 23] {
        let reg = seeded_registry(&pool, seed);
        let run = |workers: usize, tag: &str| {
            let dir = std::env::temp_dir()
                .join(format!("lisa-par-prop-{seed}-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("mkdir");
            let durable = DurableOptions {
                state_dir: dir.clone(),
                workers,
                cache: Some(Arc::new(GateCache::new())),
                ..DurableOptions::default()
            };
            let report =
                gate_durable(&reg, &zk.versions.regressed, &config(), &GateOptions::default(), &durable)
                    .expect("durable gate run");
            let wal = std::fs::read(dir.join("wal.log")).expect("wal");
            let _ = std::fs::remove_dir_all(&dir);
            (report.verdicts_text(), report.render(), wal)
        };
        let (verdicts1, render1, wal1) = run(1, "w1");
        let (verdicts8, render8, wal8) = run(8, "w8");
        assert_eq!(verdicts8, verdicts1, "seed {seed}: verdict text drifted across widths");
        assert_eq!(render8, render1, "seed {seed}: durable summary drifted across widths");
        assert_eq!(wal8, wal1, "seed {seed}: wal.log bytes drifted across widths");
    }
}

#[test]
fn fault_injected_gates_are_width_invariant() {
    let pool = rule_pool();
    let zk = case("zk-ephemeral").expect("case");
    for seed in [5, 11, 31] {
        let reg = seeded_registry(&pool, seed);
        let ids: Vec<String> = reg.rules().iter().map(|r| r.id.clone()).collect();
        let run = |workers: usize| {
            // No retries: a transient fault's engine error must land the
            // same way at every width, not be timing-healed.
            let options = GateOptions {
                faults: Some(FaultInjector::new(FaultPlan::random(seed, 0.5, &ids))),
                retry: RetryPolicy::none(),
                ..GateOptions::default()
            };
            let report =
                Gate::new(&reg).config(config()).workers(workers).options(options).run(&zk.versions.regressed);
            (render_enforcement(&report), report.decision)
        };
        let (text1, decision1) = run(1);
        let (text8, decision8) = run(8);
        assert_eq!(decision8, decision1, "seed {seed}: decision flipped across widths");
        assert_eq!(text8, text1, "seed {seed}: faulted report drifted across widths");
    }
}
