//! Verdicts: the output of asserting one rule over one system version.

use lisa_smt::{Model, Term};

/// Verdict for one static execution chain (paper §3.2: "the result of
/// the injected code snippets will determine whether the execution path
/// is verified or not; if there are any execution paths that are not
/// run … developers should provide the final verdict").
#[derive(Debug, Clone)]
pub enum ChainVerdict {
    /// Every observed arrival along this chain satisfied the checker.
    Verified,
    /// Some arrival fulfilled the complement of the checker formula.
    Violated(Violation),
    /// No selected test drove this chain to the target — a coverage gap
    /// for developer review.
    NotCovered,
    /// The gate machinery failed while checking this chain (panic,
    /// exhausted budget, malformed rule). Not a statement about the
    /// system under check; the fail-mode decides whether it blocks.
    EngineError { reason: String },
}

impl ChainVerdict {
    pub fn is_violated(&self) -> bool {
        matches!(self, ChainVerdict::Violated(_))
    }

    pub fn is_engine_error(&self) -> bool {
        matches!(self, ChainVerdict::EngineError { .. })
    }

    pub fn label(&self) -> &'static str {
        match self {
            ChainVerdict::Verified => "verified",
            ChainVerdict::Violated(_) => "VIOLATED",
            ChainVerdict::NotCovered => "not-covered",
            ChainVerdict::EngineError { .. } => "engine-error",
        }
    }
}

/// Evidence for a violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The path condition observed at the target.
    pub pi: Term,
    /// Witness assignment satisfying `pi ∧ ¬checker` — the concrete shape
    /// of the state the missing check lets through.
    pub witness: Model,
    /// Test whose execution reached the target.
    pub test: String,
    /// Dynamic call chain of the arrival (harness first).
    pub chain: Vec<String>,
}

/// Report for one chain of the execution tree.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// `entry -> f -> g [target]` rendering.
    pub rendered: String,
    pub entry: String,
    /// Functions on the static chain (entry first, holder last).
    pub functions: Vec<String>,
    pub verdict: ChainVerdict,
    /// Tests whose executions were matched to this chain.
    pub covering_tests: Vec<String>,
}

/// Full report for one rule on one version.
#[derive(Debug, Clone)]
pub struct RuleReport {
    pub rule_id: String,
    pub rule_description: String,
    pub target: String,
    pub condition: String,
    pub chains: Vec<ChainReport>,
    /// Tests selected as concrete inputs.
    pub tests_selected: Vec<String>,
    /// Sanity check (§3.2): the fixed path must verify — at least one
    /// chain Verified. A rule with hits but no verified chain is suspect.
    pub sanity_ok: bool,
    /// Violations observed on arrivals whose dynamic stack matches no
    /// static chain (e.g. a test invoking the protected statement
    /// directly). They still block the gate — a violation is a violation
    /// wherever it was observed.
    pub off_tree_violations: Vec<Violation>,
    /// Arrivals that matched no static chain (violating or not).
    pub unmatched_hits: u64,
    /// True when the rule was checked in degraded mode (fixed-path
    /// sanity check instead of full exploration), e.g. after the gate
    /// deadline expired or the harness wall budget truncated the batch.
    pub degraded: bool,
    /// Retries the gate spent on this rule before it settled.
    pub retries: u32,
    /// Aggregate engine statistics across test executions.
    pub stats: PipelineStats,
}

impl RuleReport {
    pub fn violations(&self) -> Vec<&Violation> {
        self.chains
            .iter()
            .filter_map(|c| match &c.verdict {
                ChainVerdict::Violated(v) => Some(v),
                _ => None,
            })
            .chain(self.off_tree_violations.iter())
            .collect()
    }

    pub fn count(&self, pred: fn(&ChainVerdict) -> bool) -> usize {
        self.chains.iter().filter(|c| pred(&c.verdict)).count()
    }

    pub fn verified_count(&self) -> usize {
        self.count(|v| matches!(v, ChainVerdict::Verified))
    }

    pub fn violated_count(&self) -> usize {
        self.count(|v| matches!(v, ChainVerdict::Violated(_)))
    }

    pub fn not_covered_count(&self) -> usize {
        self.count(|v| matches!(v, ChainVerdict::NotCovered))
    }

    pub fn engine_error_count(&self) -> usize {
        self.count(|v| matches!(v, ChainVerdict::EngineError { .. }))
    }

    pub fn has_engine_error(&self) -> bool {
        self.engine_error_count() > 0
    }

    pub fn has_violation(&self) -> bool {
        self.violated_count() > 0 || !self.off_tree_violations.is_empty()
    }

    /// A report representing a rule whose check failed entirely: one
    /// synthetic engine-error chain carrying the reason, so the rule
    /// still appears in the enforcement report instead of vanishing.
    pub fn engine_error(
        rule_id: impl Into<String>,
        rule_description: impl Into<String>,
        target: impl Into<String>,
        condition: impl Into<String>,
        reason: impl Into<String>,
    ) -> RuleReport {
        let reason = reason.into();
        RuleReport {
            rule_id: rule_id.into(),
            rule_description: rule_description.into(),
            target: target.into(),
            condition: condition.into(),
            chains: vec![ChainReport {
                rendered: "<engine error>".to_string(),
                entry: String::new(),
                functions: Vec::new(),
                verdict: ChainVerdict::EngineError { reason },
                covering_tests: Vec::new(),
            }],
            tests_selected: Vec::new(),
            sanity_ok: false,
            off_tree_violations: Vec::new(),
            unmatched_hits: 0,
            degraded: false,
            retries: 0,
            stats: PipelineStats::default(),
        }
    }
}

/// Cost/effort counters for one rule check.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    pub static_chains: u64,
    pub tests_selected: u64,
    pub tests_executed: u64,
    pub branches_seen: u64,
    pub branches_recorded: u64,
    pub target_hits: u64,
    pub solver_calls: u64,
    /// Violation queries the solver gave up on (budget exhausted).
    pub solver_unknowns: u64,
    pub interp_steps: u64,
    /// Wall time of the whole rule check.
    pub wall: std::time::Duration,
}
