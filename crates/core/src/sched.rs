//! Work-stealing scheduler for the enforcement engine.
//!
//! The gate's unit of work used to be the whole rule: a fixed pool of
//! scoped threads pulled rule indices off one counter, so a registry with
//! fewer rules than cores — or one rule whose concolic batch dwarfs the
//! rest — left most of the machine idle. This module schedules at two
//! granularities instead:
//!
//! - **rule tasks** enter a shared FIFO injector (one per registered
//!   rule), and
//! - **leaf tasks** — one concolic test run, one SMT violation query, one
//!   chain's alias computation — go to the spawning worker's local deque,
//!   where idle workers steal them.
//!
//! Determinism is the design constraint: gate output must be
//! byte-identical at any worker count. Three rules make that hold:
//!
//! 1. Leaf results are written into index-addressed slots and folded in
//!    index order by the spawner ([`Exec::run_indexed`]) — execution
//!    order never leaks into merge order.
//! 2. All queues are FIFO (local pops, injector pops, steals), so a
//!    single-worker scheduler executes in exactly the old sequential
//!    program order.
//! 3. A worker blocked in `run_indexed` helps by executing *leaf-class*
//!    tasks only, which by contract never fan out further — recursion
//!    depth is bounded at worker_loop → rule → run_indexed → leaf.
//!
//! Panics stay contained: a panicking leaf is re-raised on its spawner's
//! thread (lowest index first, deterministically), where the gate's
//! existing `panic_isolated` boundary turns it into a per-rule engine
//! error; a panicking rule task is re-raised once from [`Sched::run`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Resolve a requested worker count: `0` means "auto" — one worker per
/// available hardware thread.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

type Task<'env> = Box<dyn FnOnce(Exec<'_, 'env>) + Send + 'env>;

/// How long an idle worker sleeps before re-probing the queues. Spawns
/// notify the condvar, so this only bounds the staleness of a wakeup
/// racing the park itself.
const PARK_TIMEOUT: Duration = Duration::from_micros(500);

#[derive(Debug, Default)]
struct SchedStats {
    rule_tasks: AtomicU64,
    leaf_tasks: AtomicU64,
    stolen: AtomicU64,
    /// High-water mark of in-flight tasks (queued + running).
    pending_peak: AtomicU64,
    busy_ns: Vec<AtomicU64>,
}

/// The scheduler: a shared rule injector plus one stealable leaf deque
/// per worker. Lives on the caller's stack; tasks may borrow anything
/// that outlives it (`'env`), in the `thread::scope` tradition.
pub(crate) struct Sched<'env> {
    workers: usize,
    injector: Mutex<VecDeque<Task<'env>>>,
    leaves: Vec<Mutex<VecDeque<Task<'env>>>>,
    /// Tasks spawned and not yet finished; 0 means the run is complete.
    pending: AtomicUsize,
    park: Mutex<()>,
    unpark: Condvar,
    /// First rule-task panic, re-raised from `run` (rule tasks are
    /// expected to catch their own panics; this is a backstop).
    panicked: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    stats: SchedStats,
}

impl<'env> Sched<'env> {
    pub fn new(workers: usize) -> Sched<'env> {
        let workers = workers.max(1);
        Sched {
            workers,
            injector: Mutex::new(VecDeque::new()),
            leaves: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            park: Mutex::new(()),
            unpark: Condvar::new(),
            panicked: Mutex::new(None),
            stats: SchedStats {
                busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
                ..SchedStats::default()
            },
        }
    }

    /// Enqueue a rule-granularity task. Call before [`Sched::run`]; the
    /// injector is FIFO, so tasks start in spawn order.
    pub fn spawn_rule(&self, task: impl FnOnce(Exec<'_, 'env>) + Send + 'env) {
        self.note_spawn(&self.stats.rule_tasks);
        self.injector.lock().unwrap_or_else(|p| p.into_inner()).push_back(Box::new(task));
        self.unpark.notify_all();
    }

    fn spawn_leaf(&self, worker: usize, task: Task<'env>) {
        self.note_spawn(&self.stats.leaf_tasks);
        self.leaves[worker].lock().unwrap_or_else(|p| p.into_inner()).push_back(task);
        self.unpark.notify_all();
    }

    fn note_spawn(&self, class: &AtomicU64) {
        class.fetch_add(1, Ordering::Relaxed);
        let now = self.pending.fetch_add(1, Ordering::SeqCst) as u64 + 1;
        self.stats.pending_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Run every spawned task to completion. The calling thread becomes
    /// worker 0; workers 1..N are scoped threads. Returns when `pending`
    /// reaches zero; re-raises the first uncaught rule-task panic.
    pub fn run(&self) {
        if self.workers == 1 {
            self.worker_loop(0);
        } else {
            std::thread::scope(|scope| {
                for w in 1..self.workers {
                    scope.spawn(move || self.worker_loop(w));
                }
                self.worker_loop(0);
            });
        }
        if let Some(payload) =
            self.panicked.lock().unwrap_or_else(|p| p.into_inner()).take()
        {
            resume_unwind(payload);
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if let Some((task, stolen)) = self.next_task(worker) {
                let t0 = Instant::now();
                self.execute(task, worker, stolen);
                // Nested help-loop executions are inside this window, so
                // busy time is wall time spent on any work, not per-task.
                self.stats.busy_ns[worker]
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                continue;
            }
            if self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            let guard = self.park.lock().unwrap_or_else(|p| p.into_inner());
            if self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            // A spawn may slip between the probe above and this wait; the
            // timeout bounds that race instead of a heavier handshake.
            let _ = self.unpark.wait_timeout(guard, PARK_TIMEOUT);
        }
    }

    /// Local leaves first (finish in-progress rules), then new rules from
    /// the injector, then steal leaves from siblings. All FIFO.
    fn next_task(&self, worker: usize) -> Option<(Task<'env>, bool)> {
        if let Some(t) = pop_front(&self.leaves[worker]) {
            return Some((t, false));
        }
        if let Some(t) = pop_front(&self.injector) {
            return Some((t, false));
        }
        self.steal_leaf(worker)
    }

    /// Leaf-class work only: what a worker blocked in `run_indexed` may
    /// execute without risking unbounded recursion.
    fn pop_leaf(&self, worker: usize) -> Option<(Task<'env>, bool)> {
        if let Some(t) = pop_front(&self.leaves[worker]) {
            return Some((t, false));
        }
        self.steal_leaf(worker)
    }

    fn steal_leaf(&self, worker: usize) -> Option<(Task<'env>, bool)> {
        for i in 1..self.workers {
            let victim = (worker + i) % self.workers;
            if let Some(t) = pop_front(&self.leaves[victim]) {
                return Some((t, true));
            }
        }
        None
    }

    fn execute(&self, task: Task<'env>, worker: usize, stolen: bool) {
        if stolen {
            self.stats.stolen.fetch_add(1, Ordering::Relaxed);
        }
        let exec = Exec { sched: self, worker };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(exec))) {
            let mut slot = self.panicked.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.unpark.notify_all();
        }
    }

    /// Push `sched.*` counters/histograms to telemetry (no-op unless
    /// metrics are enabled). Call once, after [`Sched::run`].
    pub fn publish_metrics(&self) {
        if !lisa_telemetry::metrics_enabled() {
            return;
        }
        let rules = self.stats.rule_tasks.load(Ordering::Relaxed);
        let leaves = self.stats.leaf_tasks.load(Ordering::Relaxed);
        lisa_telemetry::counter_add("sched.tasks_spawned", rules + leaves);
        lisa_telemetry::counter_add("sched.rule_tasks", rules);
        lisa_telemetry::counter_add("sched.leaf_tasks", leaves);
        lisa_telemetry::counter_add("sched.tasks_stolen", self.stats.stolen.load(Ordering::Relaxed));
        lisa_telemetry::histogram_record(
            "sched.queue_depth_peak",
            self.stats.pending_peak.load(Ordering::Relaxed),
        );
        for busy in &self.stats.busy_ns {
            lisa_telemetry::histogram_record(
                "sched.worker_busy_us",
                busy.load(Ordering::Relaxed) / 1_000,
            );
        }
    }

    /// (tasks spawned, tasks stolen) — for tests.
    #[cfg(test)]
    pub fn counts(&self) -> (u64, u64) {
        let spawned = self.stats.rule_tasks.load(Ordering::Relaxed)
            + self.stats.leaf_tasks.load(Ordering::Relaxed);
        (spawned, self.stats.stolen.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Sched<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sched")
            .field("workers", &self.workers)
            .field("pending", &self.pending.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

fn pop_front<'env>(q: &Mutex<VecDeque<Task<'env>>>) -> Option<Task<'env>> {
    q.lock().unwrap_or_else(|p| p.into_inner()).pop_front()
}

/// A task's handle back into the scheduler: which worker it is on, and
/// the fan-out primitive. `Copy` so closures can capture it freely.
#[derive(Clone, Copy)]
pub(crate) struct Exec<'s, 'env> {
    sched: &'s Sched<'env>,
    worker: usize,
}

impl<'s, 'env> Exec<'s, 'env> {
    pub fn workers(&self) -> usize {
        self.sched.workers
    }

    /// Run `jobs` (leaf-class: they must not fan out again) and return
    /// their results **in job order**, regardless of which worker ran
    /// what when. Job 0 runs inline on the calling worker; the rest are
    /// spawned stealable. The caller helps with other leaf work while
    /// waiting. The first panicking job (by index) is re-raised here,
    /// after every job has settled.
    pub fn run_indexed<R, F>(&self, jobs: Vec<F>) -> Vec<R>
    where
        R: Send + 'env,
        F: FnOnce() -> R + Send + 'env,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if self.sched.workers == 1 || n == 1 {
            // Sequential program order, exactly.
            return jobs.into_iter().map(|j| j()).collect();
        }
        type Slot<R> = Mutex<Option<std::thread::Result<R>>>;
        let slots: Arc<Vec<Slot<R>>> = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let wg = Arc::new(WaitGroup::new(n - 1));
        let mut jobs = jobs.into_iter();
        let first = jobs.next().expect("n >= 1");
        for (off, job) in jobs.enumerate() {
            let idx = off + 1;
            let slots = Arc::clone(&slots);
            let wg = Arc::clone(&wg);
            self.sched.spawn_leaf(
                self.worker,
                Box::new(move |_| {
                    let r = catch_unwind(AssertUnwindSafe(job));
                    *slots[idx].lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
                    wg.done();
                }),
            );
        }
        let r0 = catch_unwind(AssertUnwindSafe(first));
        *slots[0].lock().unwrap_or_else(|p| p.into_inner()) = Some(r0);
        while !wg.is_done() {
            match self.sched.pop_leaf(self.worker) {
                Some((task, stolen)) => self.sched.execute(task, self.worker, stolen),
                None => wg.wait_brief(),
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut first_panic = None;
        for slot in slots.iter() {
            match slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
                Some(Ok(r)) => out.push(r),
                Some(Err(p)) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
                None => unreachable!("wait group counted this slot as done"),
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        out
    }
}

/// Countdown latch for one `run_indexed` fan-out.
struct WaitGroup {
    remaining: AtomicUsize,
    m: Mutex<()>,
    cv: Condvar,
}

impl WaitGroup {
    fn new(count: usize) -> WaitGroup {
        WaitGroup { remaining: AtomicUsize::new(count), m: Mutex::new(()), cv: Condvar::new() }
    }

    fn done(&self) {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Take the lock before notifying so a waiter between its
            // is_done check and its wait cannot miss this wakeup.
            let _g = self.m.lock().unwrap_or_else(|p| p.into_inner());
            self.cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
    }

    fn wait_brief(&self) {
        let g = self.m.lock().unwrap_or_else(|p| p.into_inner());
        if !self.is_done() {
            let _ = self.cv.wait_timeout(g, Duration::from_micros(200));
        }
    }
}

/// Shared deadline-degradation flag (gate satellite of the scheduler):
/// once the gate deadline expires, *already-queued* leaf tasks observe it
/// and drop to degraded budgets instead of finishing at full budget. The
/// flag latches, so "expired" can never flicker back to false within a
/// run. With no deadline it never fires, keeping deadline-free runs
/// deterministic.
#[derive(Debug)]
pub(crate) struct DegradeSignal {
    started: Instant,
    deadline: Option<Duration>,
    hit: AtomicBool,
    noticed: AtomicBool,
}

impl DegradeSignal {
    pub fn new(started: Instant, deadline: Option<Duration>) -> DegradeSignal {
        DegradeSignal {
            started,
            deadline,
            hit: AtomicBool::new(false),
            noticed: AtomicBool::new(false),
        }
    }

    /// Latching deadline check.
    pub fn expired(&self) -> bool {
        if self.hit.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            None => false,
            Some(d) if self.started.elapsed() >= d => {
                self.hit.store(true, Ordering::Relaxed);
                true
            }
            Some(_) => false,
        }
    }

    /// True exactly once — for the "deadline expired" telemetry event.
    pub fn first_notice(&self) -> bool {
        !self.noticed.swap(true, Ordering::Relaxed)
    }

    /// Whether the deadline fired at any point during the run.
    pub fn was_hit(&self) -> bool {
        self.hit.load(Ordering::Relaxed)
    }
}

/// What the pipeline needs to know about the run it is part of: the
/// scheduler handle for leaf fan-out (absent = run everything inline)
/// and the gate's degrade signal (absent = no deadline).
#[derive(Clone, Copy)]
pub(crate) struct GateCtx<'s, 'env> {
    pub exec: Option<Exec<'s, 'env>>,
    pub degrade: Option<&'env DegradeSignal>,
}

impl<'s, 'env> GateCtx<'s, 'env> {
    /// A context with no scheduler: every fan-out runs inline. Used by
    /// the public `Pipeline` entry points.
    pub fn inline() -> GateCtx<'s, 'env> {
        GateCtx { exec: None, degrade: None }
    }

    /// Run leaf-class `jobs`, returning results in job order. Fans out on
    /// the scheduler when one is attached and has width; otherwise runs
    /// inline in order.
    pub fn fan_out<R, F>(&self, jobs: Vec<F>) -> Vec<R>
    where
        R: Send + 'env,
        F: FnOnce() -> R + Send + 'env,
    {
        match self.exec {
            Some(exec) if exec.workers() > 1 && jobs.len() > 1 => exec.run_indexed(jobs),
            _ => jobs.into_iter().map(|j| j()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_workers_zero_means_available_parallelism() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
        assert_eq!(resolve_workers(1), 1);
    }

    #[test]
    fn rule_tasks_run_in_spawn_order_at_width_one() {
        let order = Mutex::new(Vec::new());
        let sched = Sched::new(1);
        for i in 0..8 {
            let order = &order;
            sched.spawn_rule(move |_| {
                order.lock().unwrap().push(i);
            });
        }
        sched.run();
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_returns_results_in_job_order() {
        for workers in [1, 2, 4, 8] {
            let out = Mutex::new(Vec::new());
            let sched = Sched::new(workers);
            sched.spawn_rule(|exec| {
                let jobs: Vec<_> = (0..32u64)
                    .map(|i| {
                        move || {
                            // Uneven job cost to shuffle completion order.
                            std::thread::sleep(Duration::from_micros((i % 3) * 200));
                            i * 10
                        }
                    })
                    .collect();
                *out.lock().unwrap() = exec.run_indexed(jobs);
            });
            sched.run();
            let got = out.lock().unwrap().clone();
            assert_eq!(got, (0..32u64).map(|i| i * 10).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn many_rules_with_nested_fanout_all_complete() {
        let total = AtomicU64::new(0);
        let sched = Sched::new(4);
        for r in 0..12u64 {
            let total = &total;
            sched.spawn_rule(move |exec| {
                let parts = exec.run_indexed(
                    (0..8u64).map(|l| move || r * 100 + l).collect::<Vec<_>>(),
                );
                total.fetch_add(parts.iter().sum::<u64>(), Ordering::Relaxed);
            });
        }
        sched.run();
        let expect: u64 =
            (0..12u64).map(|r| (0..8u64).map(|l| r * 100 + l).sum::<u64>()).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
        let (spawned, _) = sched.counts();
        assert_eq!(spawned, 12 + 12 * 7, "12 rules + 7 spawned leaves each");
    }

    #[test]
    fn leaf_panic_is_reraised_on_the_spawning_task() {
        let caught = AtomicBool::new(false);
        let sched = Sched::new(4);
        sched.spawn_rule(|exec| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                exec.run_indexed(
                    (0..4)
                        .map(|i| {
                            move || {
                                if i == 2 {
                                    panic!("leaf {i} failed");
                                }
                                i
                            }
                        })
                        .collect::<Vec<_>>(),
                )
            }));
            assert!(r.is_err(), "panic must surface to the spawner");
            caught.store(true, Ordering::Relaxed);
        });
        sched.run();
        assert!(caught.load(Ordering::Relaxed));
    }

    #[test]
    fn uncaught_rule_panic_resurfaces_from_run() {
        let sched = Sched::new(2);
        sched.spawn_rule(|_| panic!("rule blew up"));
        let r = catch_unwind(AssertUnwindSafe(|| sched.run()));
        assert!(r.is_err());
    }

    #[test]
    fn degrade_signal_latches() {
        let sig = DegradeSignal::new(Instant::now(), Some(Duration::ZERO));
        assert!(sig.expired());
        assert!(sig.expired(), "stays expired");
        assert!(sig.first_notice());
        assert!(!sig.first_notice(), "notice fires once");
        let never = DegradeSignal::new(Instant::now(), None);
        assert!(!never.expired());
        assert!(!never.was_hit());
    }

    #[test]
    fn gate_ctx_inline_fans_out_in_order() {
        let ctx = GateCtx::inline();
        let got = ctx.fan_out((0..5).map(|i| move || i * 2).collect::<Vec<_>>());
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }
}
