//! Seeded fault injection for the enforcement gate.
//!
//! Resilience claims need evidence: this module lets tests and the E10
//! experiment deliberately break the pipeline at chosen points — panic a
//! rule check, exhaust the solver budget, hand the gate a malformed
//! condition, or stall a stage — and then assert that `enforce` still
//! returns a complete report with the damage confined to the faulted
//! rule. The disk side ([`DiskFaultInjector`]) plugs into `lisa-store`'s
//! I/O seams to break the durability layer the same way — torn writes,
//! short reads, ENOSPC, fsync failures — for the E11 crash-recovery
//! experiment. Plans are seeded and deterministic so every failure
//! reproduces.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use lisa_store::{IoFault, IoFaults, StreamFault, StreamFaults};
use lisa_util::Prng;

/// Panic payloads carry this prefix so the gate can tell injected faults
/// apart from genuine engine bugs when classifying the unwind payload.
pub const FAULT_PANIC_PREFIX: &str = "lisa-fault:";
/// Payload marker for faults that should be retried.
pub const TRANSIENT_MARKER: &str = "lisa-fault: transient";

/// What to break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the rule check on every attempt.
    Panic,
    /// Panic the first attempt only; retries succeed. Exercises the
    /// retry-with-backoff path.
    TransientPanic,
    /// Force the solver conflict budget to zero for this rule, so every
    /// violation query returns Unknown and chains degrade to not-covered.
    SolverExhaustion,
    /// Corrupt the rule's condition source so it no longer parses,
    /// modelling malformed oracle output.
    MalformedCondition,
    /// Sleep inside the rule check, modelling a slow stage; with a gate
    /// deadline set this pushes later rules into degraded mode.
    Stall,
}

const ALL_KINDS: [FaultKind; 5] = [
    FaultKind::Panic,
    FaultKind::TransientPanic,
    FaultKind::SolverExhaustion,
    FaultKind::MalformedCondition,
    FaultKind::Stall,
];

/// A deterministic assignment of faults to rule ids.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    injections: Vec<(String, FaultKind)>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: inject `kind` when the gate checks `rule_id`.
    pub fn inject(mut self, rule_id: impl Into<String>, kind: FaultKind) -> FaultPlan {
        self.injections.push((rule_id.into(), kind));
        self
    }

    /// Seeded random plan: each rule id independently draws a fault with
    /// probability `rate`, and a uniformly random kind when it does.
    pub fn random(seed: u64, rate: f64, rule_ids: &[String]) -> FaultPlan {
        let mut rng = Prng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for id in rule_ids {
            if rng.gen_bool(rate) {
                let kind = *rng.pick(&ALL_KINDS);
                plan = plan.inject(id.clone(), kind);
            }
        }
        plan
    }

    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    pub fn len(&self) -> usize {
        self.injections.len()
    }

    fn fault_for(&self, rule_id: &str) -> Option<FaultKind> {
        self.injections.iter().find(|(id, _)| id == rule_id).map(|&(_, k)| k)
    }
}

/// Runtime side of a plan: tracks per-rule attempts so transient faults
/// clear on retry. Shared across gate worker threads.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// How long a [`FaultKind::Stall`] sleeps.
    pub stall: Duration,
    attempts: Mutex<HashMap<String, u32>>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, stall: Duration::from_millis(25), attempts: Mutex::new(HashMap::new()) }
    }

    /// Record an attempt at `rule_id` and return the fault to apply, if
    /// any. Transient faults fire on the first attempt only.
    pub fn arm(&self, rule_id: &str) -> Option<FaultKind> {
        let kind = self.plan.fault_for(rule_id)?;
        let mut attempts = self.attempts.lock().unwrap_or_else(|p| p.into_inner());
        let n = attempts.entry(rule_id.to_string()).or_insert(0);
        let attempt = *n;
        *n += 1;
        match kind {
            FaultKind::TransientPanic if attempt > 0 => None,
            k => Some(k),
        }
    }

    /// Attempts recorded for `rule_id` so far.
    pub fn attempts(&self, rule_id: &str) -> u32 {
        self.attempts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(rule_id)
            .copied()
            .unwrap_or(0)
    }
}

/// Which disk fault to inject at one of the store's I/O seams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// An append crashes mid-write: only a prefix of the frame reaches
    /// the disk (the classic torn write the journal checksum catches).
    TornWrite,
    /// The journal file reads back incompletely on open, as after a
    /// truncated restore.
    ShortRead,
    /// The device is out of space; nothing is written.
    Enospc,
    /// Data was written but fsync reports failure, so durability of the
    /// record is unknown.
    FsyncFail,
}

pub const ALL_DISK_KINDS: [DiskFaultKind; 4] = [
    DiskFaultKind::TornWrite,
    DiskFaultKind::ShortRead,
    DiskFaultKind::Enospc,
    DiskFaultKind::FsyncFail,
];

#[derive(Debug)]
struct DiskFaultState {
    rng: Prng,
    budget: u32,
    fired: Vec<DiskFaultKind>,
}

/// Seeded, budgeted disk-fault injector implementing `lisa-store`'s
/// [`IoFaults`] seam.
///
/// Each store I/O operation independently draws a fault with probability
/// `rate` from the kinds applicable to that seam, until `budget` faults
/// have fired. The budget keeps a faulted run meaningful: a store that
/// fails every append forever just disables journaling (correctly), which
/// is a different property than crash recovery under intermittent faults.
#[derive(Debug)]
pub struct DiskFaultInjector {
    kinds: Vec<DiskFaultKind>,
    rate: f64,
    state: Mutex<DiskFaultState>,
}

impl DiskFaultInjector {
    pub fn new(seed: u64, rate: f64, kinds: &[DiskFaultKind], budget: u32) -> DiskFaultInjector {
        DiskFaultInjector {
            kinds: kinds.to_vec(),
            rate,
            state: Mutex::new(DiskFaultState {
                rng: Prng::seed_from_u64(seed),
                budget,
                fired: Vec::new(),
            }),
        }
    }

    /// A whole fault *plan* derived from one seed: random non-empty kind
    /// subset, rate in [0.1, 0.5], budget in [1, 4]. E11 runs twenty of
    /// these.
    pub fn random(seed: u64) -> DiskFaultInjector {
        let mut rng = Prng::seed_from_u64(seed);
        let mut kinds: Vec<DiskFaultKind> =
            ALL_DISK_KINDS.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        if kinds.is_empty() {
            kinds.push(*rng.pick(&ALL_DISK_KINDS));
        }
        let rate = 0.1 + 0.4 * rng.gen_f64();
        let budget = 1 + rng.gen_index(4) as u32;
        let state_seed = rng.next_u64();
        DiskFaultInjector::new(state_seed, rate, &kinds, budget)
    }

    /// Kinds that actually fired so far, in order.
    pub fn fired(&self) -> Vec<DiskFaultKind> {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).fired.clone()
    }

    /// Draw a fault for a seam that supports `applicable` kinds. Returns
    /// the kind plus an auxiliary random draw (for torn/short lengths).
    fn draw(&self, applicable: &[DiskFaultKind]) -> Option<(DiskFaultKind, u64)> {
        let enabled: Vec<DiskFaultKind> =
            applicable.iter().copied().filter(|k| self.kinds.contains(k)).collect();
        if enabled.is_empty() {
            return None;
        }
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.budget == 0 || !st.rng.gen_bool(self.rate) {
            return None;
        }
        st.budget -= 1;
        let kind = *st.rng.pick(&enabled);
        let aux = st.rng.next_u64();
        st.fired.push(kind);
        Some((kind, aux))
    }
}

/// Which replication-stream fault to inject at the follower's receive
/// seam. The stream analogue of [`DiskFaultKind`]: the journal is
/// network-facing now, so the same torn/short/corrupt failure modes need
/// the same seeded, reproducible treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFaultKind {
    /// The connection dies mid-frame: a prefix of the chunk arrives,
    /// then EOF (the checksum never sees a complete frame).
    TornFrame,
    /// Bytes silently vanish from the middle of the stream; the decoder
    /// desynchronizes at the next frame boundary.
    ShortRead,
    /// One byte of the chunk is corrupted in flight; the frame checksum
    /// must catch it before anything is applied.
    BitFlip,
    /// Heartbeat frames stop being delivered, as if stalled in flight —
    /// the follower must not mistake a chatty-but-heartbeatless leader
    /// for a dead one, nor a dead one for alive.
    StalledHeartbeat,
}

pub const ALL_STREAM_KINDS: [StreamFaultKind; 4] = [
    StreamFaultKind::TornFrame,
    StreamFaultKind::ShortRead,
    StreamFaultKind::BitFlip,
    StreamFaultKind::StalledHeartbeat,
];

#[derive(Debug)]
struct StreamFaultState {
    rng: Prng,
    budget: u32,
    fired: Vec<StreamFaultKind>,
}

/// Seeded, budgeted injector implementing `lisa-store`'s
/// [`StreamFaults`] seam, mirroring [`DiskFaultInjector`]: each received
/// chunk independently draws a fault with probability `rate` until
/// `budget` faults have fired, so a faulted follower still converges —
/// the property under test is recovery, not permanent denial.
#[derive(Debug)]
pub struct StreamFaultInjector {
    kinds: Vec<StreamFaultKind>,
    rate: f64,
    state: Mutex<StreamFaultState>,
}

impl StreamFaultInjector {
    pub fn new(
        seed: u64,
        rate: f64,
        kinds: &[StreamFaultKind],
        budget: u32,
    ) -> StreamFaultInjector {
        StreamFaultInjector {
            kinds: kinds.to_vec(),
            rate,
            state: Mutex::new(StreamFaultState {
                rng: Prng::seed_from_u64(seed),
                budget,
                fired: Vec::new(),
            }),
        }
    }

    /// A whole fault plan derived from one seed, shaped exactly like
    /// [`DiskFaultInjector::random`]: random non-empty kind subset, rate
    /// in [0.1, 0.5], budget in [1, 4]. The failover fault sweep runs
    /// twenty of these.
    pub fn random(seed: u64) -> StreamFaultInjector {
        let mut rng = Prng::seed_from_u64(seed);
        let mut kinds: Vec<StreamFaultKind> =
            ALL_STREAM_KINDS.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        if kinds.is_empty() {
            kinds.push(*rng.pick(&ALL_STREAM_KINDS));
        }
        let rate = 0.1 + 0.4 * rng.gen_f64();
        let budget = 1 + rng.gen_index(4) as u32;
        let state_seed = rng.next_u64();
        StreamFaultInjector::new(state_seed, rate, &kinds, budget)
    }

    /// Kinds that actually fired so far, in order.
    pub fn fired(&self) -> Vec<StreamFaultKind> {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).fired.clone()
    }
}

impl StreamFaults for StreamFaultInjector {
    fn on_chunk(&self, len: usize) -> Option<StreamFault> {
        if self.kinds.is_empty() {
            return None;
        }
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.budget == 0 || !st.rng.gen_bool(self.rate) {
            return None;
        }
        st.budget -= 1;
        let kind = *st.rng.pick(&self.kinds);
        let aux = st.rng.next_u64() as usize;
        st.fired.push(kind);
        Some(match kind {
            StreamFaultKind::TornFrame => StreamFault::Torn { keep: aux % len.max(1) },
            StreamFaultKind::ShortRead => StreamFault::Short { keep: aux % len.max(1) },
            StreamFaultKind::BitFlip => StreamFault::Flip { at: aux % len.max(1) },
            StreamFaultKind::StalledHeartbeat => StreamFault::DropHeartbeat,
        })
    }
}

impl IoFaults for DiskFaultInjector {
    fn on_append(&self, len: usize) -> Option<IoFault> {
        let (kind, aux) = self.draw(&[DiskFaultKind::TornWrite, DiskFaultKind::Enospc])?;
        Some(match kind {
            DiskFaultKind::TornWrite => IoFault::Torn { keep: aux as usize % len.max(1) },
            _ => IoFault::Enospc,
        })
    }

    fn on_sync(&self) -> Option<IoFault> {
        self.draw(&[DiskFaultKind::FsyncFail]).map(|_| IoFault::FsyncFail)
    }

    fn on_open_read(&self, len: usize) -> Option<IoFault> {
        let (_, aux) = self.draw(&[DiskFaultKind::ShortRead])?;
        Some(IoFault::ShortRead { keep: aux as usize % (len + 1) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_targets_only_named_rules() {
        let inj = FaultInjector::new(FaultPlan::new().inject("R1", FaultKind::Panic));
        assert_eq!(inj.arm("R1"), Some(FaultKind::Panic));
        assert_eq!(inj.arm("R2"), None);
        // Non-transient faults fire every attempt.
        assert_eq!(inj.arm("R1"), Some(FaultKind::Panic));
        assert_eq!(inj.attempts("R1"), 2);
    }

    #[test]
    fn transient_fault_clears_on_second_attempt() {
        let inj = FaultInjector::new(FaultPlan::new().inject("R", FaultKind::TransientPanic));
        assert_eq!(inj.arm("R"), Some(FaultKind::TransientPanic));
        assert_eq!(inj.arm("R"), None);
        assert_eq!(inj.arm("R"), None);
    }

    #[test]
    fn random_plan_is_deterministic_in_the_seed() {
        let ids: Vec<String> = (0..32).map(|i| format!("R{i}")).collect();
        let a = FaultPlan::random(7, 0.5, &ids);
        let b = FaultPlan::random(7, 0.5, &ids);
        assert_eq!(a.injections, b.injections);
        assert!(!a.is_empty(), "rate 0.5 over 32 rules should hit something");
        let c = FaultPlan::random(8, 0.5, &ids);
        assert_ne!(a.injections, c.injections, "different seed, different plan");
    }

    #[test]
    fn zero_rate_plan_is_empty() {
        let ids: Vec<String> = (0..8).map(|i| format!("R{i}")).collect();
        assert!(FaultPlan::random(1, 0.0, &ids).is_empty());
    }

    #[test]
    fn disk_injector_respects_budget_and_seam_applicability() {
        let inj = DiskFaultInjector::new(7, 1.0, &[DiskFaultKind::TornWrite], 2);
        // TornWrite applies to appends only; sync/read seams never fire.
        assert!(inj.on_sync().is_none());
        assert!(inj.on_open_read(100).is_none());
        let first = inj.on_append(64);
        assert!(matches!(first, Some(IoFault::Torn { keep }) if keep < 64), "{first:?}");
        assert!(inj.on_append(64).is_some());
        assert!(inj.on_append(64).is_none(), "budget of 2 exhausted");
        assert_eq!(inj.fired().len(), 2);
    }

    #[test]
    fn stream_injector_respects_budget_and_bounds() {
        let inj = StreamFaultInjector::new(3, 1.0, &ALL_STREAM_KINDS, 2);
        let mut fired = 0;
        for _ in 0..10 {
            if let Some(fault) = inj.on_chunk(64) {
                fired += 1;
                match fault {
                    StreamFault::Torn { keep } | StreamFault::Short { keep } => {
                        assert!(keep < 64)
                    }
                    StreamFault::Flip { at } => assert!(at < 64),
                    StreamFault::DropHeartbeat => {}
                }
            }
        }
        assert_eq!(fired, 2, "budget bounds the faults");
        assert_eq!(inj.fired().len(), 2);
    }

    #[test]
    fn stream_plan_is_deterministic_in_the_seed() {
        for seed in 0..20 {
            let a = StreamFaultInjector::random(seed);
            let b = StreamFaultInjector::random(seed);
            for _ in 0..10 {
                assert_eq!(
                    format!("{:?}", a.on_chunk(128)),
                    format!("{:?}", b.on_chunk(128)),
                    "seed {seed}"
                );
            }
            assert_eq!(a.fired(), b.fired());
        }
    }

    #[test]
    fn disk_plan_is_deterministic_in_the_seed() {
        for seed in 0..20 {
            let a = DiskFaultInjector::random(seed);
            let b = DiskFaultInjector::random(seed);
            for _ in 0..10 {
                // Identical draw sequences step the PRNGs identically.
                assert_eq!(
                    format!("{:?}", a.on_append(32)),
                    format!("{:?}", b.on_append(32)),
                    "seed {seed}"
                );
                assert_eq!(format!("{:?}", a.on_sync()), format!("{:?}", b.on_sync()));
            }
            assert_eq!(a.fired(), b.fired());
        }
    }
}
