//! Seeded fault injection for the enforcement gate.
//!
//! Resilience claims need evidence: this module lets tests and the E10
//! experiment deliberately break the pipeline at chosen points — panic a
//! rule check, exhaust the solver budget, hand the gate a malformed
//! condition, or stall a stage — and then assert that `enforce` still
//! returns a complete report with the damage confined to the faulted
//! rule. Plans are seeded and deterministic so every failure reproduces.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use lisa_util::Prng;

/// Panic payloads carry this prefix so the gate can tell injected faults
/// apart from genuine engine bugs when classifying the unwind payload.
pub const FAULT_PANIC_PREFIX: &str = "lisa-fault:";
/// Payload marker for faults that should be retried.
pub const TRANSIENT_MARKER: &str = "lisa-fault: transient";

/// What to break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the rule check on every attempt.
    Panic,
    /// Panic the first attempt only; retries succeed. Exercises the
    /// retry-with-backoff path.
    TransientPanic,
    /// Force the solver conflict budget to zero for this rule, so every
    /// violation query returns Unknown and chains degrade to not-covered.
    SolverExhaustion,
    /// Corrupt the rule's condition source so it no longer parses,
    /// modelling malformed oracle output.
    MalformedCondition,
    /// Sleep inside the rule check, modelling a slow stage; with a gate
    /// deadline set this pushes later rules into degraded mode.
    Stall,
}

const ALL_KINDS: [FaultKind; 5] = [
    FaultKind::Panic,
    FaultKind::TransientPanic,
    FaultKind::SolverExhaustion,
    FaultKind::MalformedCondition,
    FaultKind::Stall,
];

/// A deterministic assignment of faults to rule ids.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    injections: Vec<(String, FaultKind)>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: inject `kind` when the gate checks `rule_id`.
    pub fn inject(mut self, rule_id: impl Into<String>, kind: FaultKind) -> FaultPlan {
        self.injections.push((rule_id.into(), kind));
        self
    }

    /// Seeded random plan: each rule id independently draws a fault with
    /// probability `rate`, and a uniformly random kind when it does.
    pub fn random(seed: u64, rate: f64, rule_ids: &[String]) -> FaultPlan {
        let mut rng = Prng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for id in rule_ids {
            if rng.gen_bool(rate) {
                let kind = *rng.pick(&ALL_KINDS);
                plan = plan.inject(id.clone(), kind);
            }
        }
        plan
    }

    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    pub fn len(&self) -> usize {
        self.injections.len()
    }

    fn fault_for(&self, rule_id: &str) -> Option<FaultKind> {
        self.injections.iter().find(|(id, _)| id == rule_id).map(|&(_, k)| k)
    }
}

/// Runtime side of a plan: tracks per-rule attempts so transient faults
/// clear on retry. Shared across gate worker threads.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// How long a [`FaultKind::Stall`] sleeps.
    pub stall: Duration,
    attempts: Mutex<HashMap<String, u32>>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, stall: Duration::from_millis(25), attempts: Mutex::new(HashMap::new()) }
    }

    /// Record an attempt at `rule_id` and return the fault to apply, if
    /// any. Transient faults fire on the first attempt only.
    pub fn arm(&self, rule_id: &str) -> Option<FaultKind> {
        let kind = self.plan.fault_for(rule_id)?;
        let mut attempts = self.attempts.lock().unwrap_or_else(|p| p.into_inner());
        let n = attempts.entry(rule_id.to_string()).or_insert(0);
        let attempt = *n;
        *n += 1;
        match kind {
            FaultKind::TransientPanic if attempt > 0 => None,
            k => Some(k),
        }
    }

    /// Attempts recorded for `rule_id` so far.
    pub fn attempts(&self, rule_id: &str) -> u32 {
        self.attempts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(rule_id)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_targets_only_named_rules() {
        let inj = FaultInjector::new(FaultPlan::new().inject("R1", FaultKind::Panic));
        assert_eq!(inj.arm("R1"), Some(FaultKind::Panic));
        assert_eq!(inj.arm("R2"), None);
        // Non-transient faults fire every attempt.
        assert_eq!(inj.arm("R1"), Some(FaultKind::Panic));
        assert_eq!(inj.attempts("R1"), 2);
    }

    #[test]
    fn transient_fault_clears_on_second_attempt() {
        let inj = FaultInjector::new(FaultPlan::new().inject("R", FaultKind::TransientPanic));
        assert_eq!(inj.arm("R"), Some(FaultKind::TransientPanic));
        assert_eq!(inj.arm("R"), None);
        assert_eq!(inj.arm("R"), None);
    }

    #[test]
    fn random_plan_is_deterministic_in_the_seed() {
        let ids: Vec<String> = (0..32).map(|i| format!("R{i}")).collect();
        let a = FaultPlan::random(7, 0.5, &ids);
        let b = FaultPlan::random(7, 0.5, &ids);
        assert_eq!(a.injections, b.injections);
        assert!(!a.is_empty(), "rate 0.5 over 32 rules should hit something");
        let c = FaultPlan::random(8, 0.5, &ids);
        assert_ne!(a.injections, c.injections, "different seed, different plan");
    }

    #[test]
    fn zero_rate_plan_is_empty() {
        let ids: Vec<String> = (0..8).map(|i| format!("R{i}")).collect();
        assert!(FaultPlan::random(1, 0.0, &ids).is_empty());
    }
}
