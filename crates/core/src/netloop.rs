//! A hand-rolled nonblocking readiness loop over `poll(2)`.
//!
//! The serve daemon's TCP front end multiplexes every pending client
//! connection onto the supervisor thread: nonblocking sockets are
//! registered in a [`PollSet`], one `poll` call per supervision tick
//! reports which are readable, and [`TcpGate`] advances each readable
//! connection's line buffer. Thousands of idle clients therefore cost a
//! few bytes of buffer each and **zero threads** — worker threads are
//! reserved for gate jobs, never for waiting on sockets.
//!
//! The build is std-only, so the two syscalls this needs (`poll`,
//! `get/setrlimit`) are declared directly against the platform libc the
//! binary already links — no new dependency. This module is the one
//! place the crate's `deny(unsafe_code)` is allowed back: each unsafe
//! block is a plain FFI call on locally owned, correctly-typed memory,
//! with the argument invariants stated at the call site.
#![allow(unsafe_code)]

use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::time::{Duration, Instant};

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

/// Raise the soft open-file limit toward `want` (bounded by the hard
/// limit) and return the effective soft limit. A daemon holding
/// thousands of client sockets must not die on the default 1024.
pub fn raise_fd_limit(want: u64) -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: plain out-parameter syscall wrappers on a valid struct.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    let target = want.min(lim.max);
    let new = RLimit { cur: target, max: lim.max };
    // SAFETY: raising the soft limit within the hard limit.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        target
    } else {
        lim.cur
    }
}

/// One `poll(2)` call's worth of registered descriptors. Rebuilt every
/// supervision tick — registration is an append into a reused Vec, far
/// cheaper than the syscall itself.
pub struct PollSet {
    fds: Vec<PollFd>,
}

impl Default for PollSet {
    fn default() -> Self {
        PollSet::new()
    }
}

impl PollSet {
    pub fn new() -> PollSet {
        PollSet { fds: Vec::new() }
    }

    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Register a descriptor for readability; returns its slot index.
    pub fn push(&mut self, fd: RawFd) -> usize {
        self.fds.push(PollFd { fd, events: POLLIN, revents: 0 });
        self.fds.len() - 1
    }

    /// Block until something is readable or `timeout` passes. Returns
    /// the number of ready descriptors (0 on timeout or EINTR — both
    /// simply mean "run the supervision tick and poll again").
    pub fn wait(&mut self, timeout: Duration) -> usize {
        if self.fds.is_empty() {
            std::thread::sleep(timeout);
            return 0;
        }
        let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
        // SAFETY: fds points at a live, correctly sized pollfd array.
        let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, ms) };
        if n < 0 {
            0
        } else {
            n as usize
        }
    }

    /// Whether slot `idx` is readable (or in an error/hangup state the
    /// caller should discover by reading — a read returns 0 or an error
    /// and the connection is torn down).
    pub fn ready(&self, idx: usize) -> bool {
        self.fds
            .get(idx)
            .is_some_and(|p| p.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0)
    }
}

/// Upper bound on one NDJSON request line. Past it the connection gets a
/// structured bad-request and is closed — a client spraying bytes
/// without a newline must not grow daemon memory.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// A connection that connects but never completes a request line is
/// dropped after this long; its fd slot is reclaimed.
pub const CONN_IDLE_TIMEOUT: Duration = Duration::from_secs(120);

/// One multiplexed client connection: the nonblocking stream and the
/// bytes received so far (a partial request line).
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    opened: Instant,
}

/// What one pump produced for the dispatcher.
#[derive(Default)]
pub struct Pumped {
    /// Complete request lines, each with its stream restored to blocking
    /// mode (with a write timeout) for the reply path.
    pub requests: Vec<(TcpStream, String)>,
    /// Accepted past `max_conns`: the caller replies with a structured
    /// shed and closes.
    pub over_capacity: Vec<TcpStream>,
    /// Exceeded [`MAX_REQUEST_LINE`]: the caller replies bad-request and
    /// closes.
    pub over_length: Vec<TcpStream>,
    /// Connections dropped without producing a request (EOF, transport
    /// error, idle expiry).
    pub dropped: usize,
}

/// The nonblocking TCP front end: listener plus multiplexed connections.
pub struct TcpGate {
    listener: TcpListener,
    conns: Vec<Conn>,
    max_conns: usize,
    /// Base index of this gate's fds within the current [`PollSet`]
    /// (listener first, then conns in order). Set by [`TcpGate::register`].
    base: usize,
    /// How many conns were registered this tick; accepts that land
    /// mid-pump wait for the next tick's poll.
    registered: usize,
}

impl TcpGate {
    /// Bind the listener (nonblocking) on `addr`.
    pub fn bind(addr: &str, max_conns: usize) -> Result<TcpGate, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        listener.set_nonblocking(true).map_err(|e| format!("nonblocking {addr}: {e}"))?;
        Ok(TcpGate {
            listener,
            conns: Vec::new(),
            max_conns: max_conns.max(1),
            base: 0,
            registered: 0,
        })
    }

    /// The address actually bound (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.listener.local_addr().ok()
    }

    pub fn open_conns(&self) -> usize {
        self.conns.len()
    }

    /// Register the listener and every connection in `set`.
    pub fn register(&mut self, set: &mut PollSet) {
        self.base = set.push(self.listener.as_raw_fd());
        for conn in &self.conns {
            set.push(conn.stream.as_raw_fd());
        }
        self.registered = self.conns.len();
    }

    /// Accept new connections and advance every readable one. `set`
    /// must be the [`PollSet`] this gate registered into for this tick.
    pub fn pump(&mut self, set: &PollSet) -> Pumped {
        let mut out = Pumped::default();
        if set.ready(self.base) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.conns.len() >= self.max_conns {
                            out.over_capacity.push(stream);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            out.dropped += 1;
                            continue;
                        }
                        self.conns.push(Conn {
                            stream,
                            buf: Vec::new(),
                            opened: Instant::now(),
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    // EMFILE/ENFILE etc.: shed by not accepting this
                    // tick; existing connections keep working.
                    Err(_) => break,
                }
            }
        }
        // Walk conns in reverse so swap_remove never disturbs an index
        // still to be visited (fds registered this tick cover only the
        // prefix that existed at registration; fresh accepts above are
        // past `registered` and get their first read next tick).
        let registered = self.registered;
        for i in (0..self.conns.len()).rev() {
            let expired = self.conns[i].opened.elapsed() > CONN_IDLE_TIMEOUT;
            let readable = i < registered && set.ready(self.base + 1 + i);
            if expired && !readable {
                self.conns.swap_remove(i);
                out.dropped += 1;
                continue;
            }
            if !readable {
                continue;
            }
            match advance(&mut self.conns[i]) {
                ConnStep::Keep => {}
                ConnStep::Drop => {
                    self.conns.swap_remove(i);
                    out.dropped += 1;
                }
                ConnStep::OverLength => {
                    let conn = self.conns.swap_remove(i);
                    out.over_length.push(conn.stream);
                }
                ConnStep::Request(line) => {
                    let conn = self.conns.swap_remove(i);
                    // Back to blocking for the reply path; bounded write
                    // so a dead client cannot wedge whoever replies.
                    let _ = conn.stream.set_nonblocking(false);
                    let _ = conn.stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(5)));
                    out.requests.push((conn.stream, line));
                }
            }
        }
        out
    }
}

enum ConnStep {
    Keep,
    Drop,
    OverLength,
    Request(String),
}

/// Read whatever the socket has. A complete line (everything up to the
/// first newline; the protocol is one request per connection) finishes
/// the connection's readiness phase.
fn advance(conn: &mut Conn) -> ConnStep {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return ConnStep::Drop,
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                if let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
                    let line = String::from_utf8_lossy(&conn.buf[..pos]).into_owned();
                    return ConnStep::Request(line);
                }
                if conn.buf.len() > MAX_REQUEST_LINE {
                    return ConnStep::OverLength;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return ConnStep::Keep,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ConnStep::Drop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn poll_reports_readiness_and_timeouts() {
        let mut gate = TcpGate::bind("127.0.0.1:0", 8).expect("bind");
        let addr = gate.local_addr().expect("addr");
        let mut set = PollSet::new();
        gate.register(&mut set);
        assert_eq!(set.wait(Duration::from_millis(10)), 0, "nothing connected yet");

        let mut client = TcpStream::connect(addr).expect("connect");
        set.clear();
        gate.register(&mut set);
        assert!(set.wait(Duration::from_millis(500)) > 0, "pending accept is readable");
        let pumped = gate.pump(&set);
        assert!(pumped.requests.is_empty());
        assert_eq!(gate.open_conns(), 1, "idle connection parked, no thread");

        client.write_all(b"{\"op\":\"ping\"}\n").expect("write");
        set.clear();
        gate.register(&mut set);
        assert!(set.wait(Duration::from_millis(500)) > 0);
        let pumped = gate.pump(&set);
        assert_eq!(pumped.requests.len(), 1);
        assert_eq!(pumped.requests[0].1, "{\"op\":\"ping\"}");
        assert_eq!(gate.open_conns(), 0, "request hands the stream to the dispatcher");
    }

    #[test]
    fn request_lines_are_bounded() {
        let mut gate = TcpGate::bind("127.0.0.1:0", 8).expect("bind");
        let addr = gate.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let blob = vec![b'x'; MAX_REQUEST_LINE + 4096];
        client.write_all(&blob).expect("write");
        client.flush().expect("flush");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut set = PollSet::new();
            gate.register(&mut set);
            set.wait(Duration::from_millis(50));
            let pumped = gate.pump(&set);
            if !pumped.over_length.is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "overlong line never detected");
        }
    }

    #[test]
    fn connections_beyond_the_cap_are_handed_back() {
        let mut gate = TcpGate::bind("127.0.0.1:0", 1).expect("bind");
        let addr = gate.local_addr().expect("addr");
        let _c1 = TcpStream::connect(addr).expect("first");
        let _c2 = TcpStream::connect(addr).expect("second");
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut over = 0;
        while over == 0 {
            let mut set = PollSet::new();
            gate.register(&mut set);
            set.wait(Duration::from_millis(50));
            over += gate.pump(&set).over_capacity.len();
            assert!(Instant::now() < deadline, "cap overflow never surfaced");
        }
        assert_eq!(gate.open_conns(), 1);
    }

    #[test]
    fn fd_limit_can_be_raised() {
        let effective = raise_fd_limit(4096);
        assert!(effective >= 1024);
    }
}
