//! The LISA pipeline: assert one semantic rule across a system version.
//!
//! Implements the full §3.2 loop (Figure 5, right half):
//!
//! 1. build the call graph and the execution tree rooted at the rule's
//!    target statement,
//! 2. compute placeholder aliases per chain (the variable-mapping step),
//! 3. select concrete inputs: RAG top-k over test embeddings per chain
//!    (or all tests / random-k for the ablation baselines),
//! 4. run the selected tests concolically, recording relevant branch
//!    constraints only (policy-controlled),
//! 5. for every arrival at the target, decide
//!    `SAT(π ∧ ¬checker)` — the complement rule: violation with witness,
//! 6. fold arrivals onto static chains: Verified / Violated / NotCovered,
//!    with the fixed path expected to verify (sanity check).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa_analysis::{
    chain_aliases, execution_tree_filtered, AliasMap, CallGraph, ExecutionTree, TreeLimits,
};
use lisa_concolic::{
    run_tests_budgeted, HarnessBudget, HarnessOutcome, Policy, SystemVersion, TargetHit, TestCase,
};
use lisa_oracle::rag::{describe_path, TestIndex};
use lisa_oracle::SemanticRule;
use lisa_smt::ViolationOutcome;

use crate::error::LisaError;
use crate::gate::GateCache;
use crate::sched::GateCtx;
use crate::verdict::{ChainReport, ChainVerdict, PipelineStats, RuleReport, Violation};

/// How tests are chosen as concolic inputs.
#[derive(Debug, Clone)]
pub enum TestSelection {
    /// RAG: top-k by embedding similarity per chain (the paper's design).
    Rag { k: usize },
    /// Every test (exhaustive baseline).
    All,
    /// Random k per chain, seeded (ablation baseline).
    Random { k: usize, seed: u64 },
}

/// Resource budgets for one rule check. All default to `None`
/// (unbounded), which preserves the classic pipeline behavior; gate
/// callers set them to guarantee the check terminates promptly even on
/// adversarial rules or tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceBudgets {
    /// SAT-core conflict budget per violation query; exhaustion makes the
    /// query Unknown and the affected chain degrades to not-covered.
    pub max_solver_conflicts: Option<u64>,
    /// Interpreter step ceiling per executed test.
    pub max_steps_per_test: Option<u64>,
    /// Wall-clock allowance for the concolic batch of one rule; when it
    /// expires, remaining tests are skipped and the report is marked
    /// degraded.
    pub rule_wall: Option<Duration>,
}

impl ResourceBudgets {
    /// The budgets used for deadline-degraded rules: a fixed-path sanity
    /// check must finish in milliseconds, not explore exhaustively.
    pub(crate) fn degraded(self) -> ResourceBudgets {
        ResourceBudgets {
            max_solver_conflicts: Some(self.max_solver_conflicts.unwrap_or(512).min(512)),
            max_steps_per_test: Some(self.max_steps_per_test.unwrap_or(100_000).min(100_000)),
            rule_wall: Some(self.rule_wall.unwrap_or(Duration::from_millis(250)).min(
                Duration::from_millis(250),
            )),
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub policy: Policy,
    pub selection: TestSelection,
    pub tree_limits: TreeLimits,
    /// Functions with this prefix are test entry points, not system
    /// request paths; the execution tree does not climb into them.
    pub test_prefix: String,
    /// Resource budgets applied to every rule check.
    pub budgets: ResourceBudgets,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            policy: Policy::RelevantOnly,
            selection: TestSelection::Rag { k: 4 },
            tree_limits: TreeLimits::default(),
            test_prefix: "test_".to_string(),
            budgets: ResourceBudgets::default(),
        }
    }
}

/// The pipeline.
#[derive(Debug, Default)]
pub struct Pipeline {
    pub config: PipelineConfig,
    /// Version-scoped cache shared with other pipelines in the same gate
    /// run (see [`GateCache`]); `None` = every artifact computed fresh.
    cache: Option<Arc<GateCache>>,
}

impl Pipeline {
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline { config, cache: None }
    }

    /// A pipeline whose analysis/trace/query artifacts are memoized in
    /// `cache`. Caching is transparent: reports are identical to an
    /// uncached pipeline's, field for field.
    pub fn with_cache(config: PipelineConfig, cache: Arc<GateCache>) -> Pipeline {
        Pipeline { config, cache: Some(cache) }
    }

    /// Same cache, different configuration (used by fault injection to
    /// swap budgets without losing memoized artifacts).
    pub(crate) fn reconfigured(&self, config: PipelineConfig) -> Pipeline {
        Pipeline { config, cache: self.cache.clone() }
    }

    /// Assert `rule` over `version`.
    pub fn check_rule(&self, version: &SystemVersion, rule: &SemanticRule) -> RuleReport {
        self.check_rule_mode(version, rule, false, GateCtx::inline())
    }

    /// Result-based stage boundary for the gate: validate the rule before
    /// spending any execution budget on it, so malformed oracle output is
    /// a per-rule error rather than a downstream panic.
    pub fn try_check_rule(
        &self,
        version: &SystemVersion,
        rule: &SemanticRule,
    ) -> Result<RuleReport, LisaError> {
        self.try_check_rule_ctx(version, rule, GateCtx::inline())
    }

    /// [`Pipeline::try_check_rule`] with a scheduler context: the gate's
    /// entry point, where per-test concolic runs, per-arrival SMT checks,
    /// and per-chain alias work fan out as stealable leaf tasks.
    pub(crate) fn try_check_rule_ctx<'env>(
        &self,
        version: &'env SystemVersion,
        rule: &SemanticRule,
        ctx: GateCtx<'_, 'env>,
    ) -> Result<RuleReport, LisaError> {
        if let Err(e) = lisa_smt::parse_cond(&rule.condition_src) {
            return Err(LisaError::MalformedRule {
                rule_id: rule.id.clone(),
                detail: format!("condition {:?}: {e}", rule.condition_src),
            });
        }
        if rule.target.callee().is_empty() {
            return Err(LisaError::MalformedRule {
                rule_id: rule.id.clone(),
                detail: "empty target callee".to_string(),
            });
        }
        Ok(self.check_rule_mode(version, rule, false, ctx))
    }

    /// Degraded check: the fixed-path sanity pass the gate falls back to
    /// once its deadline has expired — one test, tight budgets, report
    /// marked [`RuleReport::degraded`].
    pub fn check_rule_degraded(
        &self,
        version: &SystemVersion,
        rule: &SemanticRule,
    ) -> RuleReport {
        self.check_rule_mode(version, rule, true, GateCtx::inline())
    }

    /// [`Pipeline::check_rule_degraded`] with a scheduler context.
    pub(crate) fn check_rule_degraded_ctx<'env>(
        &self,
        version: &'env SystemVersion,
        rule: &SemanticRule,
        ctx: GateCtx<'_, 'env>,
    ) -> RuleReport {
        self.check_rule_mode(version, rule, true, ctx)
    }

    fn check_rule_mode<'env>(
        &self,
        version: &'env SystemVersion,
        rule: &SemanticRule,
        degraded_mode: bool,
        ctx: GateCtx<'_, 'env>,
    ) -> RuleReport {
        let started = Instant::now();
        let mut rule_span = lisa_telemetry::span_with("pipeline.rule", rule.id.clone());
        rule_span.arg("degraded_mode", u64::from(degraded_mode));
        let metrics_on = lisa_telemetry::metrics_enabled();
        let budgets = if degraded_mode {
            self.config.budgets.degraded()
        } else {
            self.config.budgets
        };
        let mut stats = PipelineStats::default();
        let program = &version.program;
        // Fingerprint once per rule check; every cache below keys on it.
        let cache = self.cache.as_deref();
        let program_fp = cache.map(|_| lisa_lang::fingerprint_program(program));
        let t_callgraph = Instant::now();
        let graph: Arc<CallGraph> = match (cache, program_fp) {
            (Some(c), Some(fp)) => c.analysis().callgraph(fp, || CallGraph::build(program)),
            _ => Arc::new(CallGraph::build(program)),
        };
        let t_tree = Instant::now();
        let prefix = self.config.test_prefix.clone();
        let tree: Arc<ExecutionTree> = match (cache, program_fp) {
            (Some(c), Some(fp)) => {
                c.analysis().tree(fp, &rule.target, self.config.tree_limits, &prefix, || {
                    execution_tree_filtered(&graph, &rule.target, self.config.tree_limits, &|f| {
                        f.starts_with(&prefix)
                    })
                })
            }
            _ => Arc::new(execution_tree_filtered(
                &graph,
                &rule.target,
                self.config.tree_limits,
                &|f| f.starts_with(&prefix),
            )),
        };
        stats.static_chains = tree.chains.len() as u64;

        // Placeholder aliases, unioned across chains (constraint renaming
        // is (function, path)-keyed, so the union is chain-safe). Each
        // chain's aliases are an independent leaf task; the merge runs in
        // chain order no matter which worker computed what.
        let t_aliases = Instant::now();
        let mut aliases = AliasMap::default();
        {
            let _s = lisa_telemetry::span("pipeline.aliases");
            let callee: Arc<str> = Arc::from(rule.target.callee());
            let roots: Arc<Vec<String>> = Arc::new(rule.placeholder_roots.clone());
            let jobs: Vec<_> = (0..tree.chains.len())
                .map(|ci| {
                    let graph = Arc::clone(&graph);
                    let tree = Arc::clone(&tree);
                    let callee = Arc::clone(&callee);
                    let roots = Arc::clone(&roots);
                    move || chain_aliases(program, &graph, &tree.chains[ci], &callee, &roots)
                })
                .collect();
            for part in ctx.fan_out(jobs) {
                aliases.merge(&part);
            }
            // Builtin rules have no parameter aliases; globals still resolve.
            for root in &rule.placeholder_roots {
                if program.global(root).is_some() {
                    aliases.insert("*", root, root);
                }
            }
        }

        // Test selection; degraded mode keeps only the best-ranked test
        // (the fixed-path sanity check).
        let t_select = Instant::now();
        let mut selected = {
            let _s = lisa_telemetry::span("pipeline.select");
            self.select_tests(version, &tree, &graph, rule)
        };
        if degraded_mode {
            selected.truncate(1);
        }
        stats.tests_selected = selected.len() as u64;

        // Concolic execution under the harness budget. Tests are
        // independent (each gets a fresh interpreter), so with no wall
        // budget every selected test is its own leaf task and the batch
        // is reassembled in test order — the same runs, in the same
        // order, at any worker count. A wall budget truncates on machine
        // time, so it keeps the single sequential batch (mirroring the
        // trace cache's uncacheable bypass). Queued leaves that observe
        // the gate deadline drop to degraded step budgets and mark the
        // report degraded.
        let t_concolic = Instant::now();
        let harness_budget = HarnessBudget {
            max_steps_per_test: budgets.max_steps_per_test,
            wall: budgets.rule_wall,
        };
        let aliases = Arc::new(aliases);
        let leaf_degraded = Arc::new(AtomicBool::new(false));
        let degraded_budgets = budgets.degraded();
        let outcomes: Vec<Arc<HarnessOutcome>> =
            if harness_budget.wall.is_some() || selected.len() <= 1 {
                vec![match (cache, program_fp) {
                    (Some(c), Some(fp)) => c.traces().run_tests_budgeted(
                        fp,
                        program,
                        &selected,
                        &rule.target,
                        &aliases,
                        &self.config.policy,
                        &harness_budget,
                    ),
                    _ => Arc::new(run_tests_budgeted(
                        program,
                        &selected,
                        &rule.target,
                        &aliases,
                        &self.config.policy,
                        &harness_budget,
                    )),
                }]
            } else {
                let jobs: Vec<_> = selected
                    .iter()
                    .cloned()
                    .map(|test| {
                        let cache = self.cache.clone();
                        let aliases = Arc::clone(&aliases);
                        let target = rule.target.clone();
                        let policy = self.config.policy.clone();
                        let degrade = ctx.degrade;
                        let leaf_degraded = Arc::clone(&leaf_degraded);
                        let full_steps = harness_budget.max_steps_per_test;
                        let tight_steps = degraded_budgets.max_steps_per_test;
                        move || {
                            let steps = if degrade.is_some_and(|d| d.expired()) {
                                leaf_degraded.store(true, Ordering::Relaxed);
                                tight_steps
                            } else {
                                full_steps
                            };
                            let budget =
                                HarnessBudget { max_steps_per_test: steps, wall: None };
                            let tests = [test];
                            match (&cache, program_fp) {
                                (Some(c), Some(fp)) => c.traces().run_tests_budgeted(
                                    fp, program, &tests, &target, &aliases, &policy, &budget,
                                ),
                                _ => Arc::new(run_tests_budgeted(
                                    program, &tests, &target, &aliases, &policy, &budget,
                                )),
                            }
                        }
                    })
                    .collect();
                ctx.fan_out(jobs)
            };
        let runs: Vec<_> = outcomes.iter().flat_map(|o| o.runs.iter()).collect();
        let truncated = outcomes.iter().any(|o| o.truncated);
        stats.tests_executed = runs.len() as u64;

        // Judge every arrival; fold onto static chains.
        let t_judge = Instant::now();
        let judge_span = lisa_telemetry::span("pipeline.judge");
        let mut chain_reports: Vec<ChainReport> = tree
            .chains
            .iter()
            .map(|c| ChainReport {
                rendered: c.render(&graph),
                entry: c.entry.clone(),
                functions: c.functions(&graph),
                verdict: ChainVerdict::NotCovered,
                covering_tests: Vec::new(),
            })
            .collect();

        // Solver queries are pure functions of (π, condition, budget), so
        // every arrival's violation check fans out as its own leaf task;
        // the fold below then consumes the pre-solved outcomes in exactly
        // the sequential order, keeping verdict folding (last-writer-wins
        // on Violated, covering-test ordering) byte-identical.
        //
        // All of a rule's arrivals share one incremental SolverSession:
        // the checker's refutation CNF is encoded once and clauses
        // learned on one π carry to the next. Session answers are
        // byte-identical to fresh ones and query-pure (the session only
        // decides Unsat incrementally; everything else re-derives on the
        // fresh path), so sharing it across concurrently scheduled
        // leaves cannot leak scheduling order into any verdict.
        let session = Arc::new(lisa_smt::SolverSession::new(&rule.condition));
        let solver_jobs: Vec<_> = runs
            .iter()
            .flat_map(|run| run.hits.iter())
            .map(|hit| {
                let pi = hit.pi.clone();
                let cond = rule.condition.clone();
                let cache = self.cache.clone();
                let session = Arc::clone(&session);
                let degrade = ctx.degrade;
                let leaf_degraded = Arc::clone(&leaf_degraded);
                let full = budgets.max_solver_conflicts;
                let tight = degraded_budgets.max_solver_conflicts;
                move || {
                    let conflicts = if degrade.is_some_and(|d| d.expired()) {
                        leaf_degraded.store(true, Ordering::Relaxed);
                        tight
                    } else {
                        full
                    };
                    match &cache {
                        Some(c) => c.queries().violates_with(&pi, &cond, conflicts, || {
                            session.violates_budgeted(&pi, conflicts)
                        }),
                        None => session.violates_budgeted(&pi, conflicts),
                    }
                }
            })
            .collect();
        let mut solved = ctx.fan_out(solver_jobs).into_iter();
        session.publish_metrics();

        let mut off_tree_violations = Vec::new();
        let mut unmatched_hits = 0u64;
        // Chains that saw an arrival the solver could not decide; they
        // must not end up Verified no matter the arrival order.
        let mut uncertain = vec![false; chain_reports.len()];
        for run in runs {
            stats.branches_seen += run.stats.branches_seen;
            stats.branches_recorded += run.stats.branches_recorded;
            stats.target_hits += run.stats.target_hits;
            stats.interp_steps += run.steps;
            for hit in &run.hits {
                stats.solver_calls += 1;
                let query_outcome = solved.next().expect("one pre-solved outcome per hit");
                let violation = match query_outcome {
                    ViolationOutcome::Violated(witness) => Some(witness),
                    ViolationOutcome::Verified => None,
                    ViolationOutcome::Unknown { .. } => {
                        stats.solver_unknowns += 1;
                        if let Some(idx) = match_chain(&chain_reports, hit) {
                            uncertain[idx] = true;
                            let report = &mut chain_reports[idx];
                            if !report.covering_tests.contains(&run.test) {
                                report.covering_tests.push(run.test.clone());
                            }
                        } else {
                            unmatched_hits += 1;
                        }
                        continue;
                    }
                };
                let idx = match_chain(&chain_reports, hit);
                let Some(idx) = idx else {
                    unmatched_hits += 1;
                    if let Some(witness) = violation {
                        off_tree_violations.push(Violation {
                            pi: hit.pi.clone(),
                            witness,
                            test: run.test.clone(),
                            chain: hit.chain.clone(),
                        });
                    }
                    continue;
                };
                let report = &mut chain_reports[idx];
                if !report.covering_tests.contains(&run.test) {
                    report.covering_tests.push(run.test.clone());
                }
                match (violation, &report.verdict) {
                    (Some(witness), _) => {
                        report.verdict = ChainVerdict::Violated(Violation {
                            pi: hit.pi.clone(),
                            witness,
                            test: run.test.clone(),
                            chain: hit.chain.clone(),
                        });
                    }
                    (None, ChainVerdict::NotCovered) => {
                        report.verdict = ChainVerdict::Verified;
                    }
                    (None, _) => {}
                }
            }
        }

        // An undecided arrival leaves its chain not-covered rather than
        // verified (a Violated verdict from another arrival still wins).
        for (i, c) in chain_reports.iter_mut().enumerate() {
            if uncertain[i] && matches!(c.verdict, ChainVerdict::Verified) {
                c.verdict = ChainVerdict::NotCovered;
            }
        }

        drop(judge_span);
        let sanity_ok = chain_reports
            .iter()
            .any(|c| matches!(c.verdict, ChainVerdict::Verified));
        let degraded = degraded_mode || truncated || leaf_degraded.load(Ordering::Relaxed);
        stats.wall = started.elapsed();
        if metrics_on {
            let t_end = Instant::now();
            lisa_telemetry::histogram_record(
                "stage.callgraph_us",
                t_tree.duration_since(t_callgraph).as_micros() as u64,
            );
            lisa_telemetry::histogram_record(
                "stage.tree_us",
                t_aliases.duration_since(t_tree).as_micros() as u64,
            );
            lisa_telemetry::histogram_record(
                "stage.aliases_us",
                t_select.duration_since(t_aliases).as_micros() as u64,
            );
            lisa_telemetry::histogram_record(
                "stage.select_us",
                t_concolic.duration_since(t_select).as_micros() as u64,
            );
            lisa_telemetry::histogram_record(
                "stage.concolic_us",
                t_judge.duration_since(t_concolic).as_micros() as u64,
            );
            lisa_telemetry::histogram_record(
                "stage.judge_us",
                t_end.duration_since(t_judge).as_micros() as u64,
            );
            lisa_telemetry::histogram_record("pipeline.rule_us", stats.wall.as_micros() as u64);
            lisa_telemetry::counter_add("pipeline.rules_checked", 1);
            if degraded {
                lisa_telemetry::counter_add("pipeline.rules_degraded", 1);
            }
            for c in &chain_reports {
                lisa_telemetry::counter_add(
                    match c.verdict {
                        ChainVerdict::Verified => "verdict.verified",
                        ChainVerdict::Violated(_) => "verdict.violated",
                        ChainVerdict::NotCovered => "verdict.not_covered",
                        ChainVerdict::EngineError { .. } => "verdict.engine_error",
                    },
                    1,
                );
            }
            lisa_telemetry::counter_add(
                "verdict.off_tree_violations",
                off_tree_violations.len() as u64,
            );
        }
        if degraded_mode {
            lisa_telemetry::event(
                "pipeline.degraded",
                format!("rule {}: deadline-degraded sanity pass", rule.id),
            );
        } else if truncated {
            lisa_telemetry::event(
                "pipeline.degraded",
                format!("rule {}: concolic wall budget truncated the test batch", rule.id),
            );
        }
        rule_span.arg("static_chains", stats.static_chains);
        rule_span.arg("tests_selected", stats.tests_selected);
        rule_span.arg("tests_executed", stats.tests_executed);
        rule_span.arg("target_hits", stats.target_hits);
        rule_span.arg("solver_calls", stats.solver_calls);
        rule_span.arg("solver_unknowns", stats.solver_unknowns);
        rule_span.arg("interp_steps", stats.interp_steps);
        RuleReport {
            rule_id: rule.id.clone(),
            rule_description: rule.description.clone(),
            target: rule.target.to_string(),
            condition: rule.condition_src.clone(),
            chains: chain_reports,
            tests_selected: selected.iter().map(|t| t.name.clone()).collect(),
            sanity_ok,
            off_tree_violations,
            unmatched_hits,
            degraded,
            retries: 0,
            stats,
        }
    }

    fn select_tests(
        &self,
        version: &SystemVersion,
        tree: &lisa_analysis::ExecutionTree,
        graph: &CallGraph,
        rule: &SemanticRule,
    ) -> Vec<TestCase> {
        match &self.config.selection {
            TestSelection::All => version.tests.clone(),
            TestSelection::Random { k, seed } => {
                // Deterministic pseudo-random pick: stable shuffle by
                // hash(seed, name).
                let mut tests = version.tests.clone();
                tests.sort_by_key(|t| {
                    let mut h: u64 = *seed ^ 0x9e3779b97f4a7c15;
                    for b in t.name.bytes() {
                        h = h.wrapping_mul(0x100000001b3) ^ b as u64;
                    }
                    h
                });
                tests.truncate((*k).max(1) * tree.chains.len().max(1));
                tests
            }
            TestSelection::Rag { k } => {
                let index = TestIndex::build(&version.test_summaries());
                let mut chosen: Vec<String> = Vec::new();
                for chain in &tree.chains {
                    let desc = describe_path(
                        &chain.entry,
                        &chain.functions(graph),
                        rule.target.callee(),
                        &rule.condition_src,
                    );
                    for s in index.query(&desc, *k) {
                        if !chosen.contains(&s.test) {
                            chosen.push(s.test);
                        }
                    }
                }
                version
                    .tests
                    .iter()
                    .filter(|t| chosen.contains(&t.name))
                    .cloned()
                    .collect()
            }
        }
    }
}

/// Match a dynamic arrival to a static chain: the static chain's function
/// sequence must be a suffix of the dynamic stack (after the harness and
/// test frames). Longest match wins.
fn match_chain(chains: &[ChainReport], hit: &TargetHit) -> Option<usize> {
    let dynamic = &hit.chain;
    let mut best: Option<(usize, usize)> = None; // (len, idx)
    for (i, c) in chains.iter().enumerate() {
        let fns = &c.functions;
        if fns.len() > dynamic.len() {
            continue;
        }
        let tail = &dynamic[dynamic.len() - fns.len()..];
        if tail == fns.as_slice() && best.map(|(l, _)| fns.len() > l).unwrap_or(true) {
            best = Some((fns.len(), i));
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_analysis::TargetSpec;
    use lisa_lang::Program;

    /// The Figure-3 scenario as a mini system: the fixed `touch` path
    /// checks `closing`, the regressed `prep` path does not.
    const SRC: &str = "struct Session { id: int, closing: bool }\n\
         global sessions: map<int, Session>;\n\
         global nodes: map<str, int>;\n\
         fn create_ephemeral(s: Session, path: str) { nodes.put(path, s.id); }\n\
         fn touch_create(sid: int, path: str) {\n\
             let s: Session = sessions.get(sid);\n\
             if (s == null || s.closing) { return; }\n\
             create_ephemeral(s, path);\n\
         }\n\
         fn prep_create(sid: int, path: str) {\n\
             let session: Session = sessions.get(sid);\n\
             if (session == null) { return; }\n\
             create_ephemeral(session, path);\n\
         }\n\
         fn test_touch_live() {\n\
             sessions.put(1, new Session { id: 1 });\n\
             touch_create(1, \"/a\");\n\
             assert(nodes.contains(\"/a\"), \"ephemeral created\");\n\
         }\n\
         fn test_prep_live() {\n\
             sessions.put(1, new Session { id: 1 });\n\
             prep_create(1, \"/b\");\n\
             assert(nodes.contains(\"/b\"), \"ephemeral created\");\n\
         }";

    fn version() -> SystemVersion {
        let p = Program::parse_single("zk", SRC).expect("p");
        assert!(lisa_lang::check_program(&p).is_empty());
        let tests = lisa_concolic::discover_tests(&p, "test_");
        SystemVersion::new("v", p, tests)
    }

    fn rule() -> SemanticRule {
        SemanticRule::new(
            "ZK-1208-r0",
            "no ephemeral create on closing session",
            TargetSpec::Call { callee: "create_ephemeral".into() },
            "s != null && s.closing == false",
        )
        .expect("rule")
    }

    #[test]
    fn detects_the_unguarded_path_and_verifies_the_fixed_one() {
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            ..PipelineConfig::default()
        });
        let report = pipeline.check_rule(&version(), &rule());
        assert_eq!(report.chains.len(), 2, "{:#?}", report.chains);
        let touch = report
            .chains
            .iter()
            .find(|c| c.entry == "touch_create")
            .expect("touch chain");
        let prep = report
            .chains
            .iter()
            .find(|c| c.entry == "prep_create")
            .expect("prep chain");
        assert!(matches!(touch.verdict, ChainVerdict::Verified), "{:?}", touch.verdict);
        assert!(matches!(prep.verdict, ChainVerdict::Violated(_)), "{:?}", prep.verdict);
        assert!(report.sanity_ok);
        if let ChainVerdict::Violated(v) = &prep.verdict {
            // The witness shows the unchecked closing flag.
            assert_eq!(
                v.witness.get("s.closing"),
                Some(&lisa_smt::Value::Bool(true)),
                "witness: {}",
                v.witness
            );
        }
    }

    #[test]
    fn rag_selection_still_finds_the_violation() {
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::Rag { k: 2 },
            ..PipelineConfig::default()
        });
        let report = pipeline.check_rule(&version(), &rule());
        assert!(report.has_violation());
    }

    #[test]
    fn uncovered_chain_reported() {
        // Remove the prep test: its chain becomes NotCovered.
        let mut v = version();
        v.tests.retain(|t| t.name != "test_prep_live");
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            ..PipelineConfig::default()
        });
        let report = pipeline.check_rule(&v, &rule());
        let prep = report.chains.iter().find(|c| c.entry == "prep_create").expect("chain");
        assert!(matches!(prep.verdict, ChainVerdict::NotCovered));
        assert_eq!(report.not_covered_count(), 1);
    }

    #[test]
    fn zero_conflict_budget_degrades_to_not_covered() {
        // With no solver budget the violation queries return Unknown and
        // nothing can be Verified or Violated — but the check still
        // completes and reports honestly.
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            budgets: ResourceBudgets {
                max_solver_conflicts: Some(0),
                ..ResourceBudgets::default()
            },
            ..PipelineConfig::default()
        });
        // The violation query is `pi ∧ ¬C`; embed a pairwise-distinct
        // clique in ¬C so deciding it needs actual CDCL conflicts (tiny
        // guard formulas settle by propagation alone and never conflict).
        let rule = SemanticRule::new(
            "R-clique",
            "negated disequality clique",
            TargetSpec::Call { callee: "create_ephemeral".into() },
            "!(x >= 0 && x <= 1 && y >= 0 && y <= 1 && z >= 0 && z <= 1 \
              && x != y && y != z && x != z)",
        )
        .expect("rule");
        let report = pipeline.check_rule(&version(), &rule);
        assert!(report.stats.solver_unknowns > 0, "stats: {:?}", report.stats);
        assert!(
            report.chains.iter().all(|c| matches!(c.verdict, ChainVerdict::NotCovered)),
            "undecided chains must stay not-covered: {:#?}",
            report.chains
        );
    }

    #[test]
    fn generous_budgets_match_unbudgeted_verdicts() {
        let unbudgeted = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            ..PipelineConfig::default()
        });
        let budgeted = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            budgets: ResourceBudgets {
                max_solver_conflicts: Some(1_000_000),
                max_steps_per_test: Some(100_000_000),
                rule_wall: Some(Duration::from_secs(3600)),
            },
            ..PipelineConfig::default()
        });
        let a = unbudgeted.check_rule(&version(), &rule());
        let b = budgeted.check_rule(&version(), &rule());
        assert_eq!(a.chains.len(), b.chains.len());
        for (x, y) in a.chains.iter().zip(b.chains.iter()) {
            assert_eq!(x.verdict.label(), y.verdict.label(), "{}", x.rendered);
        }
        assert!(!b.degraded);
        assert_eq!(b.stats.solver_unknowns, 0);
    }

    #[test]
    fn degraded_mode_is_marked_and_terminates_fast() {
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            ..PipelineConfig::default()
        });
        let report = pipeline.check_rule_degraded(&version(), &rule());
        assert!(report.degraded);
        assert!(report.tests_selected.len() <= 1, "{:?}", report.tests_selected);
    }

    #[test]
    fn try_check_rule_rejects_malformed_condition() {
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            ..PipelineConfig::default()
        });
        let mut bad = rule();
        bad.condition_src = "s != null &&".to_string();
        match pipeline.try_check_rule(&version(), &bad) {
            Err(crate::error::LisaError::MalformedRule { rule_id, .. }) => {
                assert_eq!(rule_id, bad.id);
            }
            other => panic!("expected MalformedRule, got {other:?}"),
        }
        // A well-formed rule passes through the boundary unchanged.
        let ok = pipeline.try_check_rule(&version(), &rule()).expect("ok");
        assert!(ok.has_violation());
    }

    #[test]
    fn stats_are_populated() {
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            ..PipelineConfig::default()
        });
        let report = pipeline.check_rule(&version(), &rule());
        assert_eq!(report.stats.static_chains, 2);
        assert_eq!(report.stats.tests_executed, 2);
        assert!(report.stats.target_hits >= 2);
        assert!(report.stats.solver_calls >= 2);
        assert!(report.stats.interp_steps > 0);
    }
}

#[cfg(test)]
mod off_tree_tests {
    use super::*;
    use lisa_analysis::TargetSpec;
    use lisa_lang::Program;
    use lisa_oracle::SemanticRule;

    #[test]
    fn direct_test_invocation_of_target_is_not_lost() {
        // The test calls the protected statement directly (no system
        // path): the arrival matches no chain but the violation must
        // still surface and block.
        let src = "struct S { ok: bool }\n\
             global out: map<str, int>;\n\
             fn act(e: S, tag: str) { out.put(tag, 1); }\n\
             fn test_direct_bad() {\n\
                 let e = new S { ok: false };\n\
                 act(e, \"direct\");\n\
             }";
        let p = Program::parse_single("t", src).expect("parse");
        let v = lisa_concolic::SystemVersion::new(
            "v",
            p.clone(),
            lisa_concolic::discover_tests(&p, "test_"),
        );
        let rule = SemanticRule::new(
            "R",
            "act needs ok",
            TargetSpec::Call { callee: "act".into() },
            "e != null && e.ok == true",
        )
        .expect("rule");
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            ..PipelineConfig::default()
        });
        let report = pipeline.check_rule(&v, &rule);
        assert_eq!(report.chains.len(), 0, "no system chain reaches act");
        assert_eq!(report.unmatched_hits, 1);
        assert!(report.has_violation(), "off-tree violation must block");
        assert_eq!(report.violations().len(), 1);
    }
}
