//! The `Gate` facade: one builder for every way of running the gate.
//!
//! Historically the gate grew a free function per concern —
//! `enforce(registry, version, config, workers)`, then
//! `enforce_with(..., options)` — and every new capability (caching,
//! here) would have meant another positional parameter on every call
//! site. [`Gate`] replaces that with a builder:
//!
//! ```text
//! Gate::new(&registry)
//!     .config(cfg)
//!     .workers(4)
//!     .options(opts)
//!     .cache(&cache)
//!     .run(&version)
//! ```
//!
//! The old functions lived on for a while as `#[deprecated]` thin
//! wrappers and are now gone; [`Gate`] is the only entry point.
//!
//! This module also holds the two supporting pieces of the facade:
//!
//! - [`GateCache`] — the version-scoped cache bundle (static analysis,
//!   concolic trace batches, SMT queries) a `Gate` can be handed. One
//!   `GateCache` shared across runs is what makes re-gating an unchanged
//!   version cheap; dropping it is the only invalidation anyone needs.
//! - [`GateConfig`] — the CLI-facing configuration: every knob the
//!   `lisa` binary exposes, parsed from flags in exactly one place
//!   ([`GateConfig::from_args`]) and consumed by `lisa gate`,
//!   `lisa serve`, and the durable gate alike.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lisa_analysis::AnalysisCache;
use lisa_concolic::{SystemVersion, TraceCache};
use lisa_smt::QueryCache;

use crate::enforce::{enforce_impl, EnforcementReport, FailMode, GateOptions, RuleRegistry};
use crate::faults::{FaultInjector, FaultPlan};
use crate::pipeline::{PipelineConfig, ResourceBudgets, TestSelection};

/// Default LRU capacity for the SMT query cache.
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 4096;

/// The version-scoped cache bundle threaded through a gate run: static
/// analysis artifacts, concolic trace batches, and SMT query verdicts,
/// all keyed by content fingerprints. Share one instance (behind `Arc`)
/// across runs to get cross-version reuse; every layer is transparent by
/// construction, so a cached gate renders byte-identical output to an
/// uncached one.
#[derive(Debug)]
pub struct GateCache {
    analysis: AnalysisCache,
    traces: TraceCache,
    queries: QueryCache,
    /// Counter values already published to telemetry, so repeated
    /// publishes add deltas instead of re-adding totals.
    published: Mutex<BTreeMap<String, u64>>,
}

impl Default for GateCache {
    fn default() -> Self {
        GateCache::new()
    }
}

impl GateCache {
    pub fn new() -> GateCache {
        GateCache::with_query_capacity(DEFAULT_QUERY_CACHE_CAPACITY)
    }

    /// A cache whose SMT query LRU holds at most `capacity` verdicts.
    pub fn with_query_capacity(capacity: usize) -> GateCache {
        GateCache {
            analysis: AnalysisCache::new(),
            traces: TraceCache::new(),
            queries: QueryCache::new(capacity),
            published: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn analysis(&self) -> &AnalysisCache {
        &self.analysis
    }

    pub fn traces(&self) -> &TraceCache {
        &self.traces
    }

    pub fn queries(&self) -> &QueryCache {
        &self.queries
    }

    /// Per-tier [`CacheStats`](lisa_util::CacheStats) snapshots, in the
    /// telemetry tier order (`analysis`, `trace`, `smt`). One shape for
    /// every tier is what keeps the publisher below — and any caller
    /// poking at cache health — free of per-tier accessor sprawl.
    pub fn tier_stats(&self) -> [(&'static str, lisa_util::CacheStats); 3] {
        [
            ("analysis", self.analysis.stats()),
            ("trace", self.traces.stats()),
            ("smt", self.queries.stats()),
        ]
    }

    /// Total hits across all three layers (introspection / smoke tests).
    pub fn hits(&self) -> u64 {
        self.tier_stats().iter().map(|(_, s)| s.hits).sum()
    }

    /// Total misses across all three layers.
    pub fn misses(&self) -> u64 {
        self.tier_stats().iter().map(|(_, s)| s.misses).sum()
    }

    /// Push cache counters into the telemetry registry (no-op unless
    /// metrics are enabled). Publishes deltas since the previous call, so
    /// the telemetry counters track cumulative totals no matter how many
    /// gate runs share this cache. Counter names are
    /// `cache.<tier>.<suffix>` for every suffix in
    /// [`CacheStats::counters`](lisa_util::CacheStats::counters);
    /// zero-valued counters are elided.
    pub fn publish_metrics(&self) {
        if !lisa_telemetry::metrics_enabled() {
            return;
        }
        let mut published = self.published.lock().unwrap_or_else(|e| e.into_inner());
        for (tier, stats) in self.tier_stats() {
            for (suffix, total) in stats.counters() {
                let name = format!("cache.{tier}.{suffix}");
                let prev = published.get(&name).copied().unwrap_or(0);
                if total > prev {
                    lisa_telemetry::counter_add(&name, total - prev);
                    published.insert(name, total);
                }
            }
        }
    }
}

/// Builder facade over the enforcement gate. `Gate::new(&registry)` with
/// no further configuration is equivalent to the old
/// `enforce(registry, version, &PipelineConfig::default(), 1)`.
#[derive(Debug)]
pub struct Gate<'r> {
    registry: &'r RuleRegistry,
    config: PipelineConfig,
    workers: usize,
    options: GateOptions,
    cache: Option<Arc<GateCache>>,
}

impl<'r> Gate<'r> {
    pub fn new(registry: &'r RuleRegistry) -> Gate<'r> {
        Gate {
            registry,
            config: PipelineConfig::default(),
            workers: 1,
            options: GateOptions::default(),
            cache: None,
        }
    }

    /// Pipeline configuration (test selection, tree limits, budgets).
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Scheduler width for the rule/leaf fan-out. `0` means auto: one
    /// worker per available hardware thread (see
    /// [`crate::resolve_workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Resilience options (fail mode, deadline, budgets, retry, faults).
    pub fn options(mut self, options: GateOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a shared cache. The same `GateCache` can back many gates;
    /// reuse across versions is keyed by content fingerprints.
    pub fn cache(mut self, cache: &Arc<GateCache>) -> Self {
        self.cache = Some(Arc::clone(cache));
        self
    }

    /// Check every registered rule against `version`. Takes `&self` so
    /// one configured gate can judge a whole sequence of versions.
    pub fn run(&self, version: &SystemVersion) -> EnforcementReport {
        enforce_impl(
            self.registry,
            version,
            &self.config,
            self.workers,
            &self.options,
            self.cache.as_ref(),
        )
    }
}

/// Everything the `lisa` CLI can configure about a gate run, parsed from
/// flags in one place instead of being re-threaded per subcommand.
#[derive(Debug)]
pub struct GateConfig {
    pub pipeline: PipelineConfig,
    pub workers: usize,
    pub fail_mode: FailMode,
    pub deadline: Option<Duration>,
    pub fault_seed: Option<u64>,
    pub fault_rate: f64,
    /// Whether the run gets a [`GateCache`].
    pub cache: bool,
    /// SMT query LRU capacity when the cache is on.
    pub cache_queries: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            pipeline: PipelineConfig::default(),
            // 0 = auto: resolve to the machine's available parallelism.
            workers: 0,
            fail_mode: FailMode::default(),
            deadline: None,
            fault_seed: None,
            fault_rate: 1.0,
            cache: true,
            cache_queries: DEFAULT_QUERY_CACHE_CAPACITY,
        }
    }
}

impl GateConfig {
    /// Parse the gate-relevant CLI flags (as produced by the `lisa`
    /// binary's flag parser: `--name value` pairs in a map). Flags:
    ///
    /// - `--rag <k>` — RAG top-k test selection (default: all tests)
    /// - `--test-prefix <p>` — test entry-point prefix (default `test_`)
    /// - `--workers <n|auto>` — scheduler width; `auto` (or `0`) sizes to
    ///   the machine's available parallelism (default auto)
    /// - `--fail-mode closed|open`
    /// - `--deadline-ms <n>` — gate deadline
    /// - `--max-solver-conflicts <n>` — SAT conflict budget per query
    /// - `--fault-seed <n>` / `--fault-rate <f>` — chaos drill
    /// - `--cache on|off` — version-scoped caching (default on)
    /// - `--cache-queries <n>` — SMT query LRU capacity
    pub fn from_args(flags: &HashMap<String, String>) -> Result<GateConfig, String> {
        fn num<T: std::str::FromStr>(
            flags: &HashMap<String, String>,
            name: &str,
        ) -> Result<Option<T>, String> {
            flags
                .get(name)
                .map(|v| v.parse::<T>().map_err(|_| format!("--{name} {v}: not a number")))
                .transpose()
        }
        let defaults = GateConfig::default();
        let selection = match num::<usize>(flags, "rag")? {
            Some(k) => TestSelection::Rag { k },
            None => TestSelection::All,
        };
        let test_prefix =
            flags.get("test-prefix").cloned().unwrap_or_else(|| "test_".to_string());
        let pipeline = PipelineConfig {
            selection,
            test_prefix,
            budgets: ResourceBudgets {
                max_solver_conflicts: num(flags, "max-solver-conflicts")?,
                ..ResourceBudgets::default()
            },
            ..PipelineConfig::default()
        };
        let cache = match flags.get("cache").map(String::as_str) {
            None | Some("on") => true,
            Some("off") => false,
            Some(other) => return Err(format!("--cache {other}: expected on|off")),
        };
        let workers = match flags.get("workers").map(String::as_str) {
            None => defaults.workers,
            Some("auto") => 0,
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("--workers {v}: expected a number or `auto`"))?,
        };
        Ok(GateConfig {
            pipeline,
            workers,
            fail_mode: flags
                .get("fail-mode")
                .map(|m| m.parse::<FailMode>())
                .transpose()?
                .unwrap_or_default(),
            deadline: num::<u64>(flags, "deadline-ms")?.map(Duration::from_millis),
            fault_seed: num(flags, "fault-seed")?,
            fault_rate: num::<f64>(flags, "fault-rate")?.unwrap_or(defaults.fault_rate),
            cache,
            cache_queries: num(flags, "cache-queries")?.unwrap_or(defaults.cache_queries),
        })
    }

    /// Build the [`GateOptions`] this configuration implies. `rule_ids`
    /// seeds the chaos fault plan when `--fault-seed` was given.
    pub fn gate_options(&self, rule_ids: &[String]) -> GateOptions {
        GateOptions {
            fail_mode: self.fail_mode,
            deadline: self.deadline,
            budgets: self.pipeline.budgets,
            faults: self
                .fault_seed
                .map(|seed| FaultInjector::new(FaultPlan::random(seed, self.fault_rate, rule_ids))),
            ..GateOptions::default()
        }
    }

    /// The cache this configuration implies (`None` when `--cache off`).
    pub fn gate_cache(&self) -> Option<Arc<GateCache>> {
        self.cache.then(|| Arc::new(GateCache::with_query_capacity(self.cache_queries)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn from_args_defaults() {
        let cfg = GateConfig::from_args(&HashMap::new()).expect("defaults");
        assert!(matches!(cfg.pipeline.selection, TestSelection::All));
        assert_eq!(cfg.workers, 0, "default is auto");
        assert_eq!(cfg.fail_mode, FailMode::Closed);
        assert!(cfg.deadline.is_none());
        assert!(cfg.cache);
        assert_eq!(cfg.cache_queries, DEFAULT_QUERY_CACHE_CAPACITY);
        assert!(cfg.gate_cache().is_some());
    }

    #[test]
    fn from_args_parses_every_knob() {
        let cfg = GateConfig::from_args(&flags(&[
            ("rag", "3"),
            ("test-prefix", "spec_"),
            ("workers", "8"),
            ("fail-mode", "open"),
            ("deadline-ms", "250"),
            ("max-solver-conflicts", "64"),
            ("fault-seed", "7"),
            ("fault-rate", "0.5"),
            ("cache", "off"),
            ("cache-queries", "16"),
        ]))
        .expect("parse");
        assert!(matches!(cfg.pipeline.selection, TestSelection::Rag { k: 3 }));
        assert_eq!(cfg.pipeline.test_prefix, "spec_");
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.fail_mode, FailMode::Open);
        assert_eq!(cfg.deadline, Some(Duration::from_millis(250)));
        assert_eq!(cfg.pipeline.budgets.max_solver_conflicts, Some(64));
        assert_eq!(cfg.fault_seed, Some(7));
        assert!(cfg.gate_cache().is_none(), "--cache off");
        let opts = cfg.gate_options(&["R1".to_string()]);
        assert_eq!(opts.fail_mode, FailMode::Open);
        assert!(opts.faults.is_some());
        assert_eq!(opts.budgets.max_solver_conflicts, Some(64));
    }

    #[test]
    fn from_args_rejects_bad_values() {
        assert!(GateConfig::from_args(&flags(&[("workers", "many")])).is_err());
        assert!(GateConfig::from_args(&flags(&[("cache", "maybe")])).is_err());
        assert!(GateConfig::from_args(&flags(&[("fail-mode", "ajar")])).is_err());
    }

    #[test]
    fn from_args_workers_auto_resolves_to_zero() {
        let cfg = GateConfig::from_args(&flags(&[("workers", "auto")])).expect("auto");
        assert_eq!(cfg.workers, 0);
        let cfg = GateConfig::from_args(&flags(&[("workers", "0")])).expect("zero");
        assert_eq!(cfg.workers, 0);
        assert!(crate::resolve_workers(cfg.workers) >= 1);
    }
}
