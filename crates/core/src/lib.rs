//! # lisa
//!
//! LISA: preventing cloud-system regression failures by enforcing
//! *low-level semantics* — implementation-local rules inferred from past
//! failure tickets and asserted with concolic execution + SMT across
//! every path that reaches the rule's target statement. This crate is
//! the paper's primary contribution; the substrates it composes live in
//! `lisa-smt`, `lisa-lang`, `lisa-analysis`, `lisa-concolic`, and
//! `lisa-oracle`.
//!
//! - [`pipeline`] — the §3.2 check loop (tree → aliases → test selection
//!   → concolic assertion → verdicts),
//! - [`sched`] — the work-stealing scheduler the gate fans rule and
//!   leaf tasks across, with deterministic indexed merges,
//! - [`verdict`] — Verified / Violated / NotCovered chain reports,
//! - [`crosscheck`] — §5's test-grounding validation of mined rules,
//! - [`mod@enforce`] — the rule registry and CI/CD gate (panic-isolated,
//!   budgeted, with fail-open/fail-closed semantics),
//! - [`error`] — the engine-error taxonomy the gate folds failures into,
//! - [`faults`] — seeded fault injection for resilience testing,
//! - [`baselines`] — regression-test replay and exhaustive-verification
//!   comparators (Figure 4),
//! - [`mod@compose`] — §5 Q3: composing validated low-level semantics into
//!   high-level guarantees,
//! - [`report`] — human-readable tables and summaries,
//! - [`json`] — machine-readable gate output for CI (writer + strict
//!   NDJSON parser for the `lisa serve` protocol),
//! - [`service`] — durable (journaled, crash-resumable) gate runs and
//!   the supervised `lisa serve` daemon, backed by `lisa-store`,
//! - [`tenant`] — multi-tenant admission control, weighted-fair
//!   queueing, and per-tenant availability-tactic state for the daemon,
//! - [`netloop`] — the std-only `poll(2)` readiness loop multiplexing
//!   the daemon's `--listen` TCP connections without threads.
//!
//! ```
//! use lisa::{Pipeline, PipelineConfig, TestSelection};
//! use lisa_analysis::TargetSpec;
//! use lisa_concolic::{discover_tests, SystemVersion};
//! use lisa_lang::Program;
//! use lisa_oracle::SemanticRule;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Program::parse_single(
//!     "demo",
//!     "struct Order { id: int, paid: bool }\n\
//!      global orders: map<int, Order>;\n\
//!      fn ship(o: Order) {}\n\
//!      fn checkout(oid: int) {\n\
//!          let o: Order = orders.get(oid);\n\
//!          if (o == null) { return; }\n\
//!          ship(o);\n\
//!      }\n\
//!      fn test_checkout() {\n\
//!          orders.put(1, new Order { id: 1, paid: true });\n\
//!          checkout(1);\n\
//!      }",
//! )?;
//! let version = SystemVersion::new("v1", program.clone(), discover_tests(&program, "test_"));
//! let rule = SemanticRule::new(
//!     "SHOP-1", "never ship unpaid orders",
//!     TargetSpec::Call { callee: "ship".into() },
//!     "o != null && o.paid == true",
//! )?;
//! let pipeline = Pipeline::new(PipelineConfig {
//!     selection: TestSelection::All,
//!     ..PipelineConfig::default()
//! });
//! // `try_check_rule` is the Result-based stage boundary: a malformed
//! // rule is a typed error, not a downstream panic.
//! let report = pipeline.try_check_rule(&version, &rule)?;
//! // The checkout path checks only for null — the missing `paid` check
//! // is a violation with a concrete witness.
//! assert!(report.has_violation());
//! let v = report.violations()[0];
//! assert_eq!(v.witness.get("o.paid"), Some(&lisa_smt::Value::Bool(false)));
//! # Ok(())
//! # }
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly one module:
// `netloop`, whose two audited libc syscall wrappers (`poll(2)`,
// `get/setrlimit`) give the serve daemon its std-only readiness loop.
// See that module for the safety argument.
#![deny(unsafe_code)]

pub mod baselines;
pub mod compose;
pub mod crosscheck;
pub mod enforce;
pub mod error;
pub mod faults;
pub mod gate;
pub mod json;
pub mod netloop;
pub mod pipeline;
pub mod report;
pub mod sched;
pub mod service;
pub mod tenant;
pub mod verdict;

pub use compose::{compose, CompositionResult, HighLevelProperty, Obligation};
pub use crosscheck::{cross_check, CrossCheck};
pub use enforce::{EnforcementReport, FailMode, GateDecision, GateOptions, RuleRegistry};
pub use error::LisaError;
pub use faults::{
    DiskFaultInjector, DiskFaultKind, FaultInjector, FaultKind, FaultPlan, StreamFaultInjector,
    StreamFaultKind,
};
pub use gate::{Gate, GateCache, GateConfig};
pub use json::Json;
pub use pipeline::{Pipeline, PipelineConfig, ResourceBudgets, TestSelection};
pub use sched::resolve_workers;
pub use service::{
    gate_durable, load_rules, load_system, request, request_tcp, run_key, serve,
    DurableGateReport, DurableOptions, ServeConfig, ServeStats,
};
pub use tenant::{parse_tenant_specs, valid_tenant, TenantSpec, MAX_JOB_ID_LEN};
pub use verdict::{ChainReport, ChainVerdict, PipelineStats, RuleReport, Violation};
