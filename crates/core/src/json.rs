//! Minimal JSON rendering for reports.
//!
//! CI systems want machine-readable gate results. This is a small,
//! dependency-free writer (the workspace deliberately avoids a JSON
//! crate): correct string escaping, stable key order, no floats beyond
//! millisecond durations.

use std::fmt::Write as _;

use crate::enforce::EnforcementReport;
use crate::verdict::{ChainVerdict, RuleReport};

/// Escape a string per RFC 8259.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn str_field(out: &mut String, key: &str, value: &str, comma: bool) {
    let _ = write!(out, "\"{}\":\"{}\"{}", key, escape(value), if comma { "," } else { "" });
}

fn num_field(out: &mut String, key: &str, value: u64, comma: bool) {
    let _ = write!(out, "\"{key}\":{value}{}", if comma { "," } else { "" });
}

/// Render one rule report.
pub fn rule_report_json(r: &RuleReport) -> String {
    let mut out = String::from("{");
    str_field(&mut out, "rule", &r.rule_id, true);
    str_field(&mut out, "description", &r.rule_description, true);
    str_field(&mut out, "target", &r.target, true);
    str_field(&mut out, "condition", &r.condition, true);
    num_field(&mut out, "verified", r.verified_count() as u64, true);
    num_field(&mut out, "violated", r.violated_count() as u64, true);
    num_field(&mut out, "not_covered", r.not_covered_count() as u64, true);
    num_field(&mut out, "engine_errors", r.engine_error_count() as u64, true);
    let _ = write!(out, "\"degraded\":{},", r.degraded);
    num_field(&mut out, "retries", r.retries as u64, true);
    let _ = write!(out, "\"sanity_ok\":{},", r.sanity_ok);
    out.push_str("\"chains\":[");
    for (i, c) in r.chains.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        str_field(&mut out, "path", &c.rendered, true);
        str_field(&mut out, "entry", &c.entry, true);
        str_field(&mut out, "verdict", c.verdict.label(), true);
        out.push_str("\"covering_tests\":[");
        for (j, t) in c.covering_tests.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape(t));
        }
        out.push(']');
        match &c.verdict {
            ChainVerdict::Violated(v) => {
                out.push(',');
                str_field(&mut out, "test", &v.test, true);
                str_field(&mut out, "pi", &v.pi.to_string(), true);
                str_field(&mut out, "witness", &v.witness.to_string(), false);
            }
            ChainVerdict::EngineError { reason } => {
                out.push(',');
                str_field(&mut out, "reason", reason, false);
            }
            _ => {}
        }
        out.push('}');
    }
    out.push_str("],");
    out.push_str("\"stats\":{");
    num_field(&mut out, "static_chains", r.stats.static_chains, true);
    num_field(&mut out, "tests_selected", r.stats.tests_selected, true);
    num_field(&mut out, "tests_executed", r.stats.tests_executed, true);
    num_field(&mut out, "branches_seen", r.stats.branches_seen, true);
    num_field(&mut out, "branches_recorded", r.stats.branches_recorded, true);
    num_field(&mut out, "target_hits", r.stats.target_hits, true);
    num_field(&mut out, "solver_calls", r.stats.solver_calls, true);
    num_field(&mut out, "solver_unknowns", r.stats.solver_unknowns, true);
    num_field(&mut out, "wall_ms", r.stats.wall.as_millis() as u64, false);
    out.push_str("}}");
    out
}

/// Render a full enforcement (gate) report.
pub fn enforcement_json(e: &EnforcementReport) -> String {
    let mut out = String::from("{");
    str_field(&mut out, "version", &e.version, true);
    str_field(&mut out, "decision", &e.decision.to_string(), true);
    str_field(&mut out, "fail_mode", &e.fail_mode.to_string(), true);
    num_field(&mut out, "review_needed", e.review_needed as u64, true);
    num_field(&mut out, "engine_errors", e.engine_errors as u64, true);
    num_field(&mut out, "degraded_rules", e.degraded_rules as u64, true);
    num_field(&mut out, "retries", e.retries, true);
    out.push_str("\"warnings\":[");
    for (i, w) in e.warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(w));
    }
    out.push_str("],");
    out.push_str("\"rules\":[");
    for (i, r) in e.reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rule_report_json(r));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig, TestSelection};
    use lisa_analysis::TargetSpec;
    use lisa_concolic::{discover_tests, SystemVersion};
    use lisa_lang::Program;
    use lisa_oracle::SemanticRule;

    fn sample_report() -> RuleReport {
        let src = "struct S { ok: bool }\n\
             global store: map<int, S>;\n\
             fn act(e: S) {}\n\
             fn drive(i: int) { let e: S = store.get(i); if (e == null) { return; } act(e); }\n\
             fn test_drive() { store.put(1, new S { ok: true }); drive(1); }";
        let p = Program::parse_single("m", src).expect("parse");
        let v = SystemVersion::new("v", p.clone(), discover_tests(&p, "test_"));
        let rule = SemanticRule::new(
            "R \"quoted\"",
            "desc with\nnewline",
            TargetSpec::Call { callee: "act".into() },
            "e != null && e.ok == true",
        )
        .expect("rule");
        Pipeline::new(PipelineConfig { selection: TestSelection::All, ..Default::default() })
            .check_rule(&v, &rule)
    }

    #[test]
    fn escaping_is_correct() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn rule_report_json_has_expected_fields() {
        let j = rule_report_json(&sample_report());
        for key in [
            "\"rule\":", "\"target\":", "\"condition\":", "\"violated\":",
            "\"chains\":[", "\"verdict\":", "\"stats\":{", "\"wall_ms\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Escapes applied to the tricky rule id and description.
        assert!(j.contains("R \\\"quoted\\\""), "{j}");
        assert!(j.contains("desc with\\nnewline"), "{j}");
    }

    #[test]
    fn violation_details_serialized() {
        let j = rule_report_json(&sample_report());
        assert!(j.contains("\"verdict\":\"VIOLATED\""), "{j}");
        assert!(j.contains("\"witness\":"), "{j}");
        assert!(j.contains("\"pi\":"), "{j}");
    }

    #[test]
    fn json_is_structurally_balanced() {
        let j = rule_report_json(&sample_report());
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in j.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced at {j}");
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
