//! Minimal JSON rendering and parsing.
//!
//! CI systems want machine-readable gate results, and the `lisa serve`
//! daemon speaks newline-delimited JSON over its unix socket. This is a
//! small, dependency-free writer plus a strict recursive-descent reader
//! (the workspace deliberately avoids a JSON crate): correct string
//! escaping, stable key order, no floats beyond millisecond durations.

use std::fmt::Write as _;

use crate::enforce::EnforcementReport;
use crate::verdict::{ChainVerdict, RuleReport};

/// Version of the machine-readable gate report schema. Bumped whenever a
/// field is removed or its meaning changes; additive fields do not bump
/// it. CI consumers should pin on this, not on incidental key order.
pub const SCHEMA_VERSION: u64 = 1;

/// Escape a string per RFC 8259.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn str_field(out: &mut String, key: &str, value: &str, comma: bool) {
    let _ = write!(out, "\"{}\":\"{}\"{}", key, escape(value), if comma { "," } else { "" });
}

fn num_field(out: &mut String, key: &str, value: u64, comma: bool) {
    let _ = write!(out, "\"{key}\":{value}{}", if comma { "," } else { "" });
}

/// Render one rule report.
pub fn rule_report_json(r: &RuleReport) -> String {
    let mut out = String::from("{");
    str_field(&mut out, "rule", &r.rule_id, true);
    str_field(&mut out, "description", &r.rule_description, true);
    str_field(&mut out, "target", &r.target, true);
    str_field(&mut out, "condition", &r.condition, true);
    num_field(&mut out, "verified", r.verified_count() as u64, true);
    num_field(&mut out, "violated", r.violated_count() as u64, true);
    num_field(&mut out, "not_covered", r.not_covered_count() as u64, true);
    num_field(&mut out, "engine_errors", r.engine_error_count() as u64, true);
    let _ = write!(out, "\"degraded\":{},", r.degraded);
    num_field(&mut out, "retries", r.retries as u64, true);
    let _ = write!(out, "\"sanity_ok\":{},", r.sanity_ok);
    out.push_str("\"chains\":[");
    for (i, c) in r.chains.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        str_field(&mut out, "path", &c.rendered, true);
        str_field(&mut out, "entry", &c.entry, true);
        str_field(&mut out, "verdict", c.verdict.label(), true);
        out.push_str("\"covering_tests\":[");
        for (j, t) in c.covering_tests.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape(t));
        }
        out.push(']');
        match &c.verdict {
            ChainVerdict::Violated(v) => {
                out.push(',');
                str_field(&mut out, "test", &v.test, true);
                str_field(&mut out, "pi", &v.pi.to_string(), true);
                str_field(&mut out, "witness", &v.witness.to_string(), false);
            }
            ChainVerdict::EngineError { reason } => {
                out.push(',');
                str_field(&mut out, "reason", reason, false);
            }
            _ => {}
        }
        out.push('}');
    }
    out.push_str("],");
    out.push_str("\"stats\":{");
    num_field(&mut out, "static_chains", r.stats.static_chains, true);
    num_field(&mut out, "tests_selected", r.stats.tests_selected, true);
    num_field(&mut out, "tests_executed", r.stats.tests_executed, true);
    num_field(&mut out, "branches_seen", r.stats.branches_seen, true);
    num_field(&mut out, "branches_recorded", r.stats.branches_recorded, true);
    num_field(&mut out, "target_hits", r.stats.target_hits, true);
    num_field(&mut out, "solver_calls", r.stats.solver_calls, true);
    num_field(&mut out, "solver_unknowns", r.stats.solver_unknowns, true);
    num_field(&mut out, "wall_ms", r.stats.wall.as_millis() as u64, false);
    out.push_str("}}");
    out
}

/// Render a full enforcement (gate) report.
pub fn enforcement_json(e: &EnforcementReport) -> String {
    let mut out = String::from("{");
    num_field(&mut out, "schema_version", SCHEMA_VERSION, true);
    str_field(&mut out, "version", &e.version, true);
    str_field(&mut out, "decision", &e.decision.to_string(), true);
    str_field(&mut out, "fail_mode", &e.fail_mode.to_string(), true);
    num_field(&mut out, "review_needed", e.review_needed as u64, true);
    num_field(&mut out, "engine_errors", e.engine_errors as u64, true);
    num_field(&mut out, "degraded_rules", e.degraded_rules as u64, true);
    num_field(&mut out, "retries", e.retries, true);
    out.push_str("\"warnings\":[");
    for (i, w) in e.warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(w));
    }
    out.push_str("],");
    out.push_str("\"rules\":[");
    for (i, r) in e.reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rule_report_json(r));
    }
    out.push_str("]}");
    out
}

/// A parsed JSON value — the reader side of the module, used by the
/// `lisa serve` NDJSON socket protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (None on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience: string member of an object.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: numeric member of an object.
    pub fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}` at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_word("null").map(|_| Json::Null),
            Some(b't') => self.eat_word("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return Err("unterminated string".to_string()) };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else { return Err("truncated escape".to_string()) };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!("unknown escape \\{}", other as char));
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: take the whole sequence verbatim.
                    let start = self.pos - 1;
                    while matches!(self.bytes.get(self.pos), Some(c) if c & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")
            .and_then(|c| std::str::from_utf8(c).map_err(|_| "bad \\u escape"))?;
        let code = u32::from_str_radix(chunk, 16).map_err(|_| format!("bad \\u{chunk}"))?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        let code = if (0xd800..0xdc00).contains(&hi) {
            // Surrogate pair: expect an immediately following \uXXXX low half.
            self.eat(b'\\')?;
            self.eat(b'u')?;
            let lo = self.hex4()?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(format!("unpaired surrogate \\u{hi:04x}"));
            }
            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("invalid codepoint {code:#x}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig, TestSelection};
    use lisa_analysis::TargetSpec;
    use lisa_concolic::{discover_tests, SystemVersion};
    use lisa_lang::Program;
    use lisa_oracle::SemanticRule;

    fn sample_report() -> RuleReport {
        let src = "struct S { ok: bool }\n\
             global store: map<int, S>;\n\
             fn act(e: S) {}\n\
             fn drive(i: int) { let e: S = store.get(i); if (e == null) { return; } act(e); }\n\
             fn test_drive() { store.put(1, new S { ok: true }); drive(1); }";
        let p = Program::parse_single("m", src).expect("parse");
        let v = SystemVersion::new("v", p.clone(), discover_tests(&p, "test_"));
        let rule = SemanticRule::new(
            "R \"quoted\"",
            "desc with\nnewline",
            TargetSpec::Call { callee: "act".into() },
            "e != null && e.ok == true",
        )
        .expect("rule");
        Pipeline::new(PipelineConfig { selection: TestSelection::All, ..Default::default() })
            .check_rule(&v, &rule)
    }

    #[test]
    fn escaping_is_correct() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn parser_reads_what_writer_writes() {
        let j = Json::parse(&rule_report_json(&sample_report())).expect("parse");
        assert!(j.str_of("rule").is_some());
        assert!(j.u64_of("violated").is_some());
        assert!(matches!(j.get("chains"), Some(Json::Arr(_))));
        // The tricky escapes round-trip through write → parse.
        assert_eq!(j.str_of("rule"), Some("R \"quoted\""));
        assert_eq!(j.str_of("description"), Some("desc with\nnewline"));
    }

    #[test]
    fn parser_handles_scalars_nesting_and_unicode() {
        let j = Json::parse(r#"{"a":[1,-2.5,true,false,null],"b":{"c":"\u0041\ud83d\ude00\n"}}"#)
            .expect("parse");
        let Some(Json::Arr(items)) = j.get("a") else { panic!("a") };
        assert_eq!(items[0], Json::Num(1.0));
        assert_eq!(items[1], Json::Num(-2.5));
        assert_eq!(items[2], Json::Bool(true));
        assert_eq!(items[4], Json::Null);
        assert_eq!(j.get("b").and_then(|b| b.str_of("c")), Some("A\u{1f600}\n"));
        assert_eq!(Json::parse("\"caf\u{e9}\"").expect("utf8"), Json::Str("caf\u{e9}".into()));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "\"\\ud800x\"",
            "{\"a\":1}garbage",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rule_report_json_has_expected_fields() {
        let j = rule_report_json(&sample_report());
        for key in [
            "\"rule\":", "\"target\":", "\"condition\":", "\"violated\":",
            "\"chains\":[", "\"verdict\":", "\"stats\":{", "\"wall_ms\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Escapes applied to the tricky rule id and description.
        assert!(j.contains("R \\\"quoted\\\""), "{j}");
        assert!(j.contains("desc with\\nnewline"), "{j}");
    }

    #[test]
    fn violation_details_serialized() {
        let j = rule_report_json(&sample_report());
        assert!(j.contains("\"verdict\":\"VIOLATED\""), "{j}");
        assert!(j.contains("\"witness\":"), "{j}");
        assert!(j.contains("\"pi\":"), "{j}");
    }

    #[test]
    fn json_is_structurally_balanced() {
        let j = rule_report_json(&sample_report());
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in j.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced at {j}");
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
