//! Cross-checking mined semantics against test behaviour (§5 Q1).
//!
//! "We consider incorporating a cross-checking mechanism that validates
//! mined semantics against test cases, ensuring that inferred rules are
//! grounded in actual system behavior." A rule is *grounded* on the fixed
//! version when:
//!
//! 1. it is statically well-formed for the codebase
//!    ([`lisa_oracle::validate_rule`]), and
//! 2. running the test suite, at least one arrival at the target
//!    *satisfies* the rule outright (`π ⟹ C`) — the fixed path exists
//!    and the rule describes it.
//!
//! Hallucinated rules (flipped operators, renamed variables) fail one of
//! the two: no healthy execution implies a wrong condition. Weakened
//! rules (a dropped conjunct) still ground — they are imprecise, not
//! wrong, and the reliability experiment scores them separately.

use lisa_analysis::{chain_aliases, execution_tree_filtered, AliasMap, CallGraph, TreeLimits};
use lisa_concolic::{run_tests, Policy, SystemVersion};
use lisa_oracle::{validate_rule, SemanticRule, ValidationError};

/// Cross-check outcome.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    pub grounded: bool,
    /// Static well-formedness findings (non-empty ⇒ ungrounded).
    pub static_errors: Vec<ValidationError>,
    /// Arrivals at the target observed while running the suite.
    pub hits: usize,
    /// Arrivals whose path condition implies the rule.
    pub satisfying_hits: usize,
    pub reason: String,
}

/// Ground `rule` against the (fixed) `version` using its full test suite.
pub fn cross_check(version: &SystemVersion, rule: &SemanticRule) -> CrossCheck {
    let static_errors = validate_rule(&version.program, rule);
    if !static_errors.is_empty() {
        let reason = format!(
            "statically ill-formed: {}",
            static_errors.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("; ")
        );
        return CrossCheck { grounded: false, static_errors, hits: 0, satisfying_hits: 0, reason };
    }
    let graph = CallGraph::build(&version.program);
    let tree = execution_tree_filtered(&graph, &rule.target, TreeLimits::default(), &|f| {
        f.starts_with("test_")
    });
    // Builtin-family rules whose fix *removed* every matching site are
    // grounded by absence: the codebase trivially satisfies them.
    if tree.chains.is_empty() && !matches!(rule.target, lisa_analysis::TargetSpec::Call { .. }) {
        return CrossCheck {
            grounded: true,
            static_errors,
            hits: 0,
            satisfying_hits: 0,
            reason: "no site matches the target — trivially satisfied".to_string(),
        };
    }
    let mut aliases = AliasMap::default();
    for chain in &tree.chains {
        aliases.merge(&chain_aliases(
            &version.program,
            &graph,
            chain,
            rule.target.callee(),
            &rule.placeholder_roots,
        ));
    }
    for root in &rule.placeholder_roots {
        if version.program.global(root).is_some() {
            aliases.insert("*", root, root);
        }
    }
    let runs = run_tests(
        &version.program,
        &version.tests,
        &rule.target,
        &aliases,
        &Policy::RelevantOnly,
    );
    let mut hits = 0usize;
    let mut satisfying = 0usize;
    for run in &runs {
        for hit in &run.hits {
            hits += 1;
            if lisa_smt::implies(&hit.pi, &rule.condition) {
                satisfying += 1;
            }
        }
    }
    let grounded = satisfying > 0;
    let reason = if hits == 0 {
        "no test reaches the target statement".to_string()
    } else if satisfying == 0 {
        format!("{hits} arrival(s), none satisfies the rule — likely hallucinated")
    } else {
        format!("{satisfying}/{hits} arrival(s) satisfy the rule")
    };
    CrossCheck { grounded, static_errors, hits, satisfying_hits: satisfying, reason }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_analysis::TargetSpec;
    use lisa_lang::Program;

    const FIXED: &str = "struct Session { id: int, closing: bool }\n\
         global sessions: map<int, Session>;\n\
         fn create_ephemeral(s: Session, path: str) {}\n\
         fn touch_create(sid: int, path: str) {\n\
             let s: Session = sessions.get(sid);\n\
             if (s == null || s.closing) { return; }\n\
             create_ephemeral(s, path);\n\
         }\n\
         fn test_create_live() {\n\
             sessions.put(1, new Session { id: 1 });\n\
             touch_create(1, \"/a\");\n\
         }";

    fn version() -> SystemVersion {
        let p = Program::parse_single("zk", FIXED).expect("p");
        SystemVersion::new("fixed", p.clone(), lisa_concolic::discover_tests(&p, "test_"))
    }

    fn rule(cond: &str) -> SemanticRule {
        SemanticRule::new(
            "R",
            "d",
            TargetSpec::Call { callee: "create_ephemeral".into() },
            cond,
        )
        .expect("rule")
    }

    #[test]
    fn faithful_rule_grounds() {
        let c = cross_check(&version(), &rule("s != null && s.closing == false"));
        assert!(c.grounded, "{}", c.reason);
        assert_eq!(c.hits, 1);
        assert_eq!(c.satisfying_hits, 1);
    }

    #[test]
    fn flipped_rule_fails_grounding() {
        // Hallucination: requires the session to BE closing.
        let c = cross_check(&version(), &rule("s != null && s.closing == true"));
        assert!(!c.grounded);
        assert_eq!(c.hits, 1);
        assert_eq!(c.satisfying_hits, 0);
    }

    #[test]
    fn renamed_variable_fails_statically() {
        let c = cross_check(&version(), &rule("sess_old != null"));
        assert!(!c.grounded);
        assert!(!c.static_errors.is_empty());
    }

    #[test]
    fn weakened_rule_still_grounds() {
        let c = cross_check(&version(), &rule("s != null"));
        assert!(c.grounded, "{}", c.reason);
    }

    #[test]
    fn unreachable_target_reports_no_hits() {
        let mut v = version();
        v.tests.clear();
        let c = cross_check(&v, &rule("s != null"));
        assert!(!c.grounded);
        assert_eq!(c.hits, 0);
        assert!(c.reason.contains("no test"));
    }
}
