//! Human-readable rendering of enforcement results: CI-log style rule
//! summaries and plain-text tables for the experiment harnesses.

use std::fmt::Write as _;

use crate::enforce::EnforcementReport;
use crate::verdict::{ChainVerdict, RuleReport};

/// Render one rule report as a CI log block.
pub fn render_rule_report(r: &RuleReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rule {} — {}", r.rule_id, r.rule_description);
    let _ = writeln!(out, "  target:    {}", r.target);
    let _ = writeln!(out, "  condition: {}", r.condition);
    let _ = writeln!(
        out,
        "  chains: {} verified, {} violated, {} not covered (of {})",
        r.verified_count(),
        r.violated_count(),
        r.not_covered_count(),
        r.chains.len()
    );
    if r.degraded {
        let _ = writeln!(
            out,
            "  note: checked in degraded mode (fixed-path sanity check only)"
        );
    }
    if r.retries > 0 {
        let _ = writeln!(out, "  note: {} retr{} before settling", r.retries, if r.retries == 1 { "y" } else { "ies" });
    }
    for c in &r.chains {
        let _ = writeln!(out, "    [{}] {}", c.verdict.label(), c.rendered);
        match &c.verdict {
            ChainVerdict::Violated(v) => {
                let _ = writeln!(out, "        test:    {}", v.test);
                let _ = writeln!(out, "        pi:      {}", v.pi);
                let _ = writeln!(out, "        witness: {}", v.witness);
            }
            ChainVerdict::EngineError { reason } => {
                let _ = writeln!(out, "        reason:  {reason}");
            }
            _ => {}
        }
    }
    for v in &r.off_tree_violations {
        let _ = writeln!(out, "    [VIOLATED off-tree] via {:?}", v.chain);
        let _ = writeln!(out, "        test:    {}", v.test);
        let _ = writeln!(out, "        pi:      {}", v.pi);
        let _ = writeln!(out, "        witness: {}", v.witness);
    }
    if !r.sanity_ok {
        let _ = writeln!(
            out,
            "    warning: no verified chain — the fixed path did not confirm (sanity check)"
        );
    }
    out
}

/// Render a full gate report.
pub fn render_enforcement(e: &EnforcementReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== LISA gate for version `{}` ==", e.version);
    for r in &e.reports {
        out.push_str(&render_rule_report(r));
    }
    for w in &e.warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    if e.engine_errors > 0 || e.degraded_rules > 0 || e.retries > 0 {
        let _ = writeln!(
            out,
            "resilience: {} engine error(s), {} degraded rule(s), {} retr{} (fail-{})",
            e.engine_errors,
            e.degraded_rules,
            e.retries,
            if e.retries == 1 { "y" } else { "ies" },
            e.fail_mode
        );
    }
    let _ = writeln!(out, "decision: {} ({} chain(s) need developer review)", e.decision, e.review_needed);
    out
}

/// A minimal fixed-width table builder for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(c.len());
                let _ = write!(line, "{c:<w$}");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["approach", "detected", "cost"]);
        t.row(&["testing".into(), "no".into(), "1".into()]);
        t.row(&["lisa".into(), "yes".into(), "42".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("approach"));
        assert!(lines[2].starts_with("testing"));
        // Column alignment: "detected" column starts at the same offset.
        let col = lines[0].find("detected").expect("header");
        assert_eq!(&lines[2][col..col + 2], "no");
        assert_eq!(&lines[3][col..col + 3], "yes");
    }
}
