//! The enforcement registry and CI/CD gate.
//!
//! The paper's vision (§1): "every failure, once fixed, automatically
//! becomes an executable contract that shields the system from ever
//! repeating the same mistake … enforced in CI/CD pipelines." The
//! [`RuleRegistry`] is that contract store: rules accumulate as tickets
//! are processed, and every new system version is gated on the full set.
//! Rule checks are independent, so the gate fans them out across worker
//! threads (std scoped threads).
//!
//! The gate is built to *always return a decision*: each rule check runs
//! under `catch_unwind` with bounded retry, a panicking or malformed rule
//! folds into an engine-error report instead of killing the scope, and a
//! gate deadline downgrades remaining rules to a fast fixed-path sanity
//! check rather than abandoning them. The [`FailMode`] decides whether
//! engine errors block (fail-closed, the default) or pass with warnings
//! (fail-open).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lisa_concolic::SystemVersion;
use lisa_oracle::SemanticRule;
use lisa_util::{retry_with_backoff, RetryPolicy};

use crate::error::LisaError;
use crate::faults::{FaultInjector, FaultKind, TRANSIENT_MARKER};
use crate::pipeline::{Pipeline, PipelineConfig, ResourceBudgets};
use crate::sched::{DegradeSignal, GateCtx, Sched};
use crate::verdict::RuleReport;

/// The persistent set of enforced rules.
#[derive(Debug, Default, Clone)]
pub struct RuleRegistry {
    rules: Vec<SemanticRule>,
}

impl RuleRegistry {
    pub fn new() -> RuleRegistry {
        RuleRegistry::default()
    }

    /// Register a rule; replaces any rule with the same id *in place*, so
    /// re-registering an updated rule keeps the registry order (and with
    /// it the report order) stable.
    pub fn register(&mut self, rule: SemanticRule) {
        match self.rules.iter_mut().find(|r| r.id == rule.id) {
            Some(slot) => *slot = rule,
            None => self.rules.push(rule),
        }
    }

    pub fn rules(&self) -> &[SemanticRule] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    pub fn get(&self, id: &str) -> Option<&SemanticRule> {
        self.rules.iter().find(|r| r.id == id)
    }
}

/// Gate decision for a candidate version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// No rule violated: the change may ship.
    Pass,
    /// At least one semantic rule violated (or, under fail-closed, an
    /// engine error occurred): block the change.
    Block,
}

impl fmt::Display for GateDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateDecision::Pass => write!(f, "PASS"),
            GateDecision::Block => write!(f, "BLOCK"),
        }
    }
}

/// What the gate does when its own machinery fails on a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailMode {
    /// An engine error blocks the change and requests review. The safe
    /// default for a CI/CD gate: a broken check is not a passed check.
    #[default]
    Closed,
    /// An engine error passes with a warning; availability over strictness.
    Open,
}

impl fmt::Display for FailMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailMode::Closed => write!(f, "closed"),
            FailMode::Open => write!(f, "open"),
        }
    }
}

impl std::str::FromStr for FailMode {
    type Err = String;
    fn from_str(s: &str) -> Result<FailMode, String> {
        match s {
            "closed" => Ok(FailMode::Closed),
            "open" => Ok(FailMode::Open),
            other => Err(format!("unknown fail-mode {other:?} (expected closed|open)")),
        }
    }
}

/// Resilience knobs for one enforcement run.
#[derive(Debug, Default)]
pub struct GateOptions {
    pub fail_mode: FailMode,
    /// Overall wall-clock deadline. Rules starting after it has expired
    /// run in degraded mode (fixed-path sanity check) instead of full
    /// exploration. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Per-rule resource budgets layered over the pipeline config's.
    pub budgets: ResourceBudgets,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Fault injection, for resilience tests and the E10 experiment.
    pub faults: Option<FaultInjector>,
}

/// Result of gating one version against the registry.
#[derive(Debug)]
pub struct EnforcementReport {
    pub version: String,
    pub reports: Vec<RuleReport>,
    pub decision: GateDecision,
    /// Coverage gaps requiring developer review (paper: "developers
    /// should provide the final verdict").
    pub review_needed: usize,
    /// Fail-mode the gate ran under.
    pub fail_mode: FailMode,
    /// Rules whose check failed with an engine error.
    pub engine_errors: usize,
    /// Rules checked in degraded (fixed-path sanity) mode.
    pub degraded_rules: usize,
    /// Total retries spent across all rules.
    pub retries: u64,
    /// Human-readable warnings (fail-open engine errors, deadline hits).
    pub warnings: Vec<String>,
    /// Resolved scheduler width the gate ran at (after `0` → auto
    /// expansion). Introspection only: deliberately kept out of the
    /// rendered report and its JSON so gate output stays byte-identical
    /// across worker counts.
    pub workers: usize,
}

impl EnforcementReport {
    pub fn violated_rules(&self) -> Vec<&RuleReport> {
        self.reports.iter().filter(|r| r.has_violation()).collect()
    }

    /// True when an engine error occurred — the condition exit code 2 is
    /// reserved for (under fail-closed).
    pub fn has_engine_errors(&self) -> bool {
        self.engine_errors > 0
    }
}

/// The gate engine behind [`crate::Gate`]. The gate never propagates a
/// panic: every rule yields a report, and the worst a faulty rule can do
/// is mark itself as an engine error. When `cache` is given, workers
/// share its memoized analysis/trace/query artifacts; its counters are
/// published to telemetry on the way out.
pub(crate) fn enforce_impl(
    registry: &RuleRegistry,
    version: &SystemVersion,
    config: &PipelineConfig,
    workers: usize,
    options: &GateOptions,
    cache: Option<&Arc<crate::gate::GateCache>>,
) -> EnforcementReport {
    let started = Instant::now();
    let mut gate_span = lisa_telemetry::span_with("gate.enforce", version.label.clone());
    let workers = crate::sched::resolve_workers(workers);
    let total_retries = AtomicU64::new(0);
    let degrade = DegradeSignal::new(started, options.deadline);

    // Layer the gate budgets over the pipeline config (gate wins where set).
    let mut gate_config = config.clone();
    if options.budgets.max_solver_conflicts.is_some() {
        gate_config.budgets.max_solver_conflicts = options.budgets.max_solver_conflicts;
    }
    if options.budgets.max_steps_per_test.is_some() {
        gate_config.budgets.max_steps_per_test = options.budgets.max_steps_per_test;
    }
    if options.budgets.rule_wall.is_some() {
        gate_config.budgets.rule_wall = options.budgets.rule_wall;
    }

    // One slot per rule: tasks finish in any order, reports fold in
    // registry order. Declared before the scheduler so tasks may borrow it.
    let slots: Vec<Mutex<Option<RuleReport>>> =
        registry.rules().iter().map(|_| Mutex::new(None)).collect();
    let sched = Sched::new(workers);
    for (i, rule) in registry.rules().iter().enumerate() {
        let gate_config = &gate_config;
        let slots = &slots;
        let total_retries = &total_retries;
        let degrade = &degrade;
        sched.spawn_rule(move |exec| {
            let pipeline = match cache {
                Some(c) => Pipeline::with_cache(gate_config.clone(), Arc::clone(c)),
                None => Pipeline::new(gate_config.clone()),
            };
            let past_deadline = degrade.expired();
            if past_deadline && degrade.first_notice() {
                lisa_telemetry::event(
                    "gate.deadline_expired",
                    format!(
                        "degrading remaining rules to fixed-path sanity checks \
                         (from rule {})",
                        rule.id
                    ),
                );
            }
            let ctx = GateCtx { exec: Some(exec), degrade: Some(degrade) };
            let (report, retries) =
                check_one_rule(&pipeline, version, rule, options, past_deadline, ctx);
            total_retries.fetch_add(retries as u64, Ordering::Relaxed);
            // Recover from a poisoned lock: a panicking sibling worker
            // must not cost us this rule's report.
            *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(report);
        });
    }
    sched.run();
    sched.publish_metrics();
    // The scheduler's queues borrow `slots`; release them before folding.
    drop(sched);

    let reports: Vec<RuleReport> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every rule task writes its slot before the scheduler drains")
        })
        .collect();

    let engine_errors = reports.iter().filter(|r| r.has_engine_error()).count();
    let degraded_rules = reports.iter().filter(|r| r.degraded).count();
    let mut warnings = Vec::new();
    if degrade.was_hit() {
        warnings.push(format!(
            "gate deadline expired; {degraded_rules} rule(s) checked in degraded mode"
        ));
    }
    for r in reports.iter().filter(|r| r.has_engine_error()) {
        let reason = r
            .chains
            .iter()
            .find_map(|c| match &c.verdict {
                crate::verdict::ChainVerdict::EngineError { reason } => Some(reason.as_str()),
                _ => None,
            })
            .unwrap_or("unknown");
        // The taxonomy's Display already leads with "rule <id>:" — don't
        // repeat it in the warning prefix.
        let reason =
            reason.strip_prefix(&format!("rule {}: ", r.rule_id)).unwrap_or(reason);
        warnings.push(format!("rule {}: engine error: {reason}", r.rule_id));
    }

    let has_violation = reports.iter().any(|r| r.has_violation());
    let decision = if has_violation
        || (engine_errors > 0 && options.fail_mode == FailMode::Closed)
    {
        GateDecision::Block
    } else {
        GateDecision::Pass
    };
    let mut review_needed: usize = reports.iter().map(|r| r.not_covered_count()).sum();
    if options.fail_mode == FailMode::Closed {
        // Engine-errored rules need a human verdict too.
        review_needed += engine_errors;
    }
    gate_span.arg("rules", reports.len() as u64);
    gate_span.arg("workers", workers as u64);
    gate_span.arg("engine_errors", engine_errors as u64);
    gate_span.arg("degraded_rules", degraded_rules as u64);
    gate_span.arg("retries", total_retries.load(Ordering::Relaxed));
    gate_span.set_detail(format!("{} -> {decision}", version.label));
    if lisa_telemetry::metrics_enabled() {
        lisa_telemetry::counter_add("gate.runs", 1);
        lisa_telemetry::counter_add(
            match decision {
                GateDecision::Pass => "gate.pass",
                GateDecision::Block => "gate.block",
            },
            1,
        );
        lisa_telemetry::counter_add("gate.engine_errors", engine_errors as u64);
        lisa_telemetry::counter_add("gate.degraded_rules", degraded_rules as u64);
        lisa_telemetry::counter_add("gate.retries", total_retries.load(Ordering::Relaxed));
    }
    if let Some(c) = cache {
        c.publish_metrics();
    }
    EnforcementReport {
        version: version.label.clone(),
        reports,
        decision,
        review_needed,
        fail_mode: options.fail_mode,
        engine_errors,
        degraded_rules,
        retries: total_retries.load(Ordering::Relaxed),
        warnings,
        workers,
    }
}

/// Check one rule with panic isolation, fault arming, and bounded retry.
/// Never panics; always returns a report.
fn check_one_rule<'env>(
    pipeline: &Pipeline,
    version: &'env SystemVersion,
    rule: &SemanticRule,
    options: &GateOptions,
    degraded: bool,
    ctx: GateCtx<'_, 'env>,
) -> (RuleReport, u32) {
    let (result, retries) = retry_with_backoff(
        &options.retry,
        |_attempt| run_attempt(pipeline, version, rule, options, degraded, ctx),
        |e: &LisaError| e.is_transient(),
    );
    let mut report = match result {
        Ok(report) => report,
        Err(e) => RuleReport::engine_error(
            rule.id.clone(),
            rule.description.clone(),
            rule.target.to_string(),
            rule.condition_src.clone(),
            e.to_string(),
        ),
    };
    report.retries = retries;
    (report, retries)
}

/// One attempt: arm any injected fault, then run the (possibly degraded)
/// rule check under `catch_unwind`, classifying the unwind payload.
fn run_attempt<'env>(
    pipeline: &Pipeline,
    version: &'env SystemVersion,
    rule: &SemanticRule,
    options: &GateOptions,
    degraded: bool,
    ctx: GateCtx<'_, 'env>,
) -> Result<RuleReport, LisaError> {
    let fault = options.faults.as_ref().and_then(|inj| inj.arm(&rule.id));
    // Faults that rewrite the input are applied to a clone; the caller's
    // rule is never mutated.
    let mut effective_rule = None;
    let mut effective_pipeline = None;
    match fault {
        Some(FaultKind::Panic) => {
            panic_isolated(|| panic!("lisa-fault: injected panic for rule {}", rule.id))?;
        }
        Some(FaultKind::TransientPanic) => {
            panic_isolated(|| panic!("{TRANSIENT_MARKER} injected blip for rule {}", rule.id))?;
        }
        Some(FaultKind::MalformedCondition) => {
            let mut bad = rule.clone();
            bad.condition_src = format!("{} &&", bad.condition_src);
            effective_rule = Some(bad);
        }
        Some(FaultKind::SolverExhaustion) => {
            let mut config = pipeline.config.clone();
            config.budgets.max_solver_conflicts = Some(0);
            // Keep the cache: queries are keyed by conflict budget, so a
            // zero-budget attempt can never surface a cached full-budget
            // verdict.
            effective_pipeline = Some(pipeline.reconfigured(config));
        }
        Some(FaultKind::Stall) => {
            if let Some(inj) = options.faults.as_ref() {
                std::thread::sleep(inj.stall);
            }
        }
        None => {}
    }
    let rule = effective_rule.as_ref().unwrap_or(rule);
    let pipeline = effective_pipeline.as_ref().unwrap_or(pipeline);
    panic_isolated(|| {
        if degraded {
            // Past the gate deadline: cheap fixed-path sanity check. The
            // malformed-rule boundary still applies.
            lisa_smt::parse_cond(&rule.condition_src)
                .map_err(|e| LisaError::MalformedRule {
                    rule_id: rule.id.clone(),
                    detail: format!("condition {:?}: {e}", rule.condition_src),
                })
                .map(|_| pipeline.check_rule_degraded_ctx(version, rule, ctx))
        } else {
            pipeline.try_check_rule_ctx(version, rule, ctx)
        }
    })?
}

/// Run `f` under `catch_unwind`, converting an unwind into a
/// [`LisaError`]. Injected transient faults (recognized by their payload
/// marker) map to `Transient` so the retry layer picks them up.
fn panic_isolated<T>(f: impl FnOnce() -> T) -> Result<T, LisaError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let reason = payload
            .downcast_ref::<&'static str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        if reason.starts_with(TRANSIENT_MARKER) {
            LisaError::Transient { rule_id: String::new(), detail: reason }
        } else {
            LisaError::RulePanicked { rule_id: String::new(), reason }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::gate::Gate;
    use crate::pipeline::TestSelection;
    use lisa_analysis::TargetSpec;
    use lisa_lang::Program;

    fn version(guard_prep: bool) -> SystemVersion {
        let prep_guard = if guard_prep { "session == null || session.closing" } else { "session == null" };
        let src = format!(
            "struct Session {{ id: int, closing: bool }}\n\
             global sessions: map<int, Session>;\n\
             fn create_ephemeral(s: Session, path: str) {{}}\n\
             fn prep_create(sid: int, path: str) {{\n\
                 let session: Session = sessions.get(sid);\n\
                 if ({prep_guard}) {{ return; }}\n\
                 create_ephemeral(session, path);\n\
             }}\n\
             fn test_prep_live() {{\n\
                 sessions.put(1, new Session {{ id: 1 }});\n\
                 prep_create(1, \"/a\");\n\
             }}"
        );
        let p = Program::parse_single("zk", &src).expect("p");
        let tests = lisa_concolic::discover_tests(&p, "test_");
        SystemVersion::new(if guard_prep { "fixed" } else { "regressed" }, p, tests)
    }

    fn registry() -> RuleRegistry {
        let mut reg = RuleRegistry::new();
        reg.register(
            SemanticRule::new(
                "ZK-1208-r0",
                "no ephemeral create on closing session",
                TargetSpec::Call { callee: "create_ephemeral".into() },
                "s != null && s.closing == false",
            )
            .expect("rule"),
        );
        reg
    }

    fn config() -> PipelineConfig {
        PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
    }

    #[test]
    fn fixed_version_passes_the_gate() {
        let report = Gate::new(&registry()).config(config()).workers(2).run(&version(true));
        assert_eq!(report.decision, GateDecision::Pass);
        assert!(report.violated_rules().is_empty());
        assert_eq!(report.engine_errors, 0);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn regressed_version_is_blocked() {
        let report = Gate::new(&registry()).config(config()).workers(2).run(&version(false));
        assert_eq!(report.decision, GateDecision::Block);
        assert_eq!(report.violated_rules().len(), 1);
    }

    #[test]
    fn registry_replaces_same_id() {
        let mut reg = registry();
        let len_before = reg.len();
        reg.register(
            SemanticRule::new(
                "ZK-1208-r0",
                "updated",
                TargetSpec::Call { callee: "create_ephemeral".into() },
                "s != null",
            )
            .expect("rule"),
        );
        assert_eq!(reg.len(), len_before);
        assert_eq!(reg.get("ZK-1208-r0").expect("rule").description, "updated");
    }

    #[test]
    fn registry_replacement_preserves_order() {
        let mut reg = RuleRegistry::new();
        for id in ["A", "B", "C"] {
            reg.register(
                SemanticRule::new(
                    id,
                    id,
                    TargetSpec::Call { callee: "create_ephemeral".into() },
                    "s != null",
                )
                .expect("rule"),
            );
        }
        reg.register(
            SemanticRule::new(
                "B",
                "B updated",
                TargetSpec::Call { callee: "create_ephemeral".into() },
                "s != null && s.closing == false",
            )
            .expect("rule"),
        );
        let ids: Vec<&str> = reg.rules().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["A", "B", "C"], "replacement must not reorder");
        assert_eq!(reg.get("B").expect("B").description, "B updated");
    }

    #[test]
    fn parallel_matches_sequential() {
        let reg = {
            let mut r = registry();
            r.register(
                SemanticRule::new(
                    "EXTRA-r0",
                    "session must exist",
                    TargetSpec::Call { callee: "create_ephemeral".into() },
                    "s != null",
                )
                .expect("rule"),
            );
            r
        };
        let v = version(false);
        let seq = Gate::new(&reg).config(config()).workers(1).run(&v);
        let par = Gate::new(&reg).config(config()).workers(4).run(&v);
        assert_eq!(seq.decision, par.decision);
        assert_eq!(seq.reports.len(), par.reports.len());
        for (a, b) in seq.reports.iter().zip(par.reports.iter()) {
            assert_eq!(a.rule_id, b.rule_id);
            assert_eq!(a.violated_count(), b.violated_count());
        }
    }

    #[test]
    fn injected_panic_blocks_under_fail_closed() {
        let options = GateOptions {
            faults: Some(FaultInjector::new(
                FaultPlan::new().inject("ZK-1208-r0", FaultKind::Panic),
            )),
            retry: RetryPolicy::none(),
            ..GateOptions::default()
        };
        let report = Gate::new(&registry()).config(config()).workers(2).options(options).run(&version(true));
        assert_eq!(report.decision, GateDecision::Block);
        assert_eq!(report.engine_errors, 1);
        assert!(report.review_needed >= 1);
        assert!(report.reports[0].has_engine_error());
    }

    #[test]
    fn injected_panic_passes_with_warning_under_fail_open() {
        let options = GateOptions {
            fail_mode: FailMode::Open,
            faults: Some(FaultInjector::new(
                FaultPlan::new().inject("ZK-1208-r0", FaultKind::Panic),
            )),
            retry: RetryPolicy::none(),
            ..GateOptions::default()
        };
        let report = Gate::new(&registry()).config(config()).workers(2).options(options).run(&version(true));
        assert_eq!(report.decision, GateDecision::Pass);
        assert_eq!(report.engine_errors, 1);
        assert!(report.warnings.iter().any(|w| w.contains("engine error")));
    }

    #[test]
    fn transient_panic_is_retried_and_recovers() {
        let options = GateOptions {
            faults: Some(FaultInjector::new(
                FaultPlan::new().inject("ZK-1208-r0", FaultKind::TransientPanic),
            )),
            retry: RetryPolicy {
                max_attempts: 3,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            ..GateOptions::default()
        };
        let report = Gate::new(&registry()).config(config()).workers(1).options(options).run(&version(true));
        assert_eq!(report.decision, GateDecision::Pass, "{:?}", report.warnings);
        assert_eq!(report.engine_errors, 0);
        assert_eq!(report.retries, 1, "one retry should clear the blip");
    }

    #[test]
    fn malformed_condition_fault_is_a_per_rule_error() {
        let options = GateOptions {
            faults: Some(FaultInjector::new(
                FaultPlan::new().inject("ZK-1208-r0", FaultKind::MalformedCondition),
            )),
            retry: RetryPolicy::none(),
            ..GateOptions::default()
        };
        let report = Gate::new(&registry()).config(config()).workers(1).options(options).run(&version(true));
        assert_eq!(report.engine_errors, 1);
        assert!(report.warnings.iter().any(|w| w.contains("malformed")));
    }

    #[test]
    fn zero_deadline_degrades_every_rule_but_still_decides() {
        let options = GateOptions {
            deadline: Some(Duration::ZERO),
            ..GateOptions::default()
        };
        let report = Gate::new(&registry()).config(config()).workers(1).options(options).run(&version(false));
        assert_eq!(report.degraded_rules, 1);
        assert!(report.reports[0].degraded);
        assert!(report.warnings.iter().any(|w| w.contains("deadline")));
        // The degraded sanity check still executes the one selected test
        // and can still catch the regression on this small system.
        assert_eq!(report.decision, GateDecision::Block);
    }

    #[test]
    fn fault_on_one_rule_leaves_other_rules_untouched() {
        let mut reg = registry();
        reg.register(
            SemanticRule::new(
                "EXTRA-r0",
                "session must exist",
                TargetSpec::Call { callee: "create_ephemeral".into() },
                "s != null",
            )
            .expect("rule"),
        );
        let clean = Gate::new(&reg).config(config()).workers(2).run(&version(false));
        let options = GateOptions {
            faults: Some(FaultInjector::new(
                FaultPlan::new().inject("EXTRA-r0", FaultKind::Panic),
            )),
            retry: RetryPolicy::none(),
            ..GateOptions::default()
        };
        let faulted = Gate::new(&reg).config(config()).workers(2).options(options).run(&version(false));
        let clean_zk = &clean.reports[0];
        let faulted_zk = &faulted.reports[0];
        assert_eq!(clean_zk.rule_id, faulted_zk.rule_id);
        assert_eq!(clean_zk.violated_count(), faulted_zk.violated_count());
        assert_eq!(clean_zk.verified_count(), faulted_zk.verified_count());
        assert_eq!(clean_zk.not_covered_count(), faulted_zk.not_covered_count());
        assert!(faulted.reports[1].has_engine_error());
    }
}
