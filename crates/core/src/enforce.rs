//! The enforcement registry and CI/CD gate.
//!
//! The paper's vision (§1): "every failure, once fixed, automatically
//! becomes an executable contract that shields the system from ever
//! repeating the same mistake … enforced in CI/CD pipelines." The
//! [`RuleRegistry`] is that contract store: rules accumulate as tickets
//! are processed, and every new system version is gated on the full set.
//! Rule checks are independent, so the gate fans them out across worker
//! threads (crossbeam scoped threads).

use std::fmt;

use crossbeam::thread;
use parking_lot::Mutex;

use lisa_concolic::SystemVersion;
use lisa_oracle::SemanticRule;

use crate::pipeline::{Pipeline, PipelineConfig};
use crate::verdict::RuleReport;

/// The persistent set of enforced rules.
#[derive(Debug, Default, Clone)]
pub struct RuleRegistry {
    rules: Vec<SemanticRule>,
}

impl RuleRegistry {
    pub fn new() -> RuleRegistry {
        RuleRegistry::default()
    }

    /// Register a rule; replaces any rule with the same id.
    pub fn register(&mut self, rule: SemanticRule) {
        self.rules.retain(|r| r.id != rule.id);
        self.rules.push(rule);
    }

    pub fn rules(&self) -> &[SemanticRule] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    pub fn get(&self, id: &str) -> Option<&SemanticRule> {
        self.rules.iter().find(|r| r.id == id)
    }
}

/// Gate decision for a candidate version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// No rule violated: the change may ship.
    Pass,
    /// At least one semantic rule violated: block the change.
    Block,
}

impl fmt::Display for GateDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateDecision::Pass => write!(f, "PASS"),
            GateDecision::Block => write!(f, "BLOCK"),
        }
    }
}

/// Result of gating one version against the registry.
#[derive(Debug)]
pub struct EnforcementReport {
    pub version: String,
    pub reports: Vec<RuleReport>,
    pub decision: GateDecision,
    /// Coverage gaps requiring developer review (paper: "developers
    /// should provide the final verdict").
    pub review_needed: usize,
}

impl EnforcementReport {
    pub fn violated_rules(&self) -> Vec<&RuleReport> {
        self.reports.iter().filter(|r| r.has_violation()).collect()
    }
}

/// Check every registered rule against `version`, in parallel.
pub fn enforce(
    registry: &RuleRegistry,
    version: &SystemVersion,
    config: &PipelineConfig,
    workers: usize,
) -> EnforcementReport {
    let reports = Mutex::new(Vec::<(usize, RuleReport)>::new());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = workers.clamp(1, registry.len().max(1));
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let pipeline = Pipeline::new(config.clone());
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(rule) = registry.rules().get(i) else { break };
                    let report = pipeline.check_rule(version, rule);
                    reports.lock().push((i, report));
                }
            });
        }
    })
    .expect("enforcement workers must not panic");
    let mut indexed = reports.into_inner();
    indexed.sort_by_key(|(i, _)| *i);
    let reports: Vec<RuleReport> = indexed.into_iter().map(|(_, r)| r).collect();
    let decision = if reports.iter().any(|r| r.has_violation()) {
        GateDecision::Block
    } else {
        GateDecision::Pass
    };
    let review_needed = reports.iter().map(|r| r.not_covered_count()).sum();
    EnforcementReport { version: version.label.clone(), reports, decision, review_needed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TestSelection;
    use lisa_analysis::TargetSpec;
    use lisa_lang::Program;

    fn version(guard_prep: bool) -> SystemVersion {
        let prep_guard = if guard_prep { "session == null || session.closing" } else { "session == null" };
        let src = format!(
            "struct Session {{ id: int, closing: bool }}\n\
             global sessions: map<int, Session>;\n\
             fn create_ephemeral(s: Session, path: str) {{}}\n\
             fn prep_create(sid: int, path: str) {{\n\
                 let session: Session = sessions.get(sid);\n\
                 if ({prep_guard}) {{ return; }}\n\
                 create_ephemeral(session, path);\n\
             }}\n\
             fn test_prep_live() {{\n\
                 sessions.put(1, new Session {{ id: 1 }});\n\
                 prep_create(1, \"/a\");\n\
             }}"
        );
        let p = Program::parse_single("zk", &src).expect("p");
        let tests = lisa_concolic::discover_tests(&p, "test_");
        SystemVersion::new(if guard_prep { "fixed" } else { "regressed" }, p, tests)
    }

    fn registry() -> RuleRegistry {
        let mut reg = RuleRegistry::new();
        reg.register(
            SemanticRule::new(
                "ZK-1208-r0",
                "no ephemeral create on closing session",
                TargetSpec::Call { callee: "create_ephemeral".into() },
                "s != null && s.closing == false",
            )
            .expect("rule"),
        );
        reg
    }

    fn config() -> PipelineConfig {
        PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
    }

    #[test]
    fn fixed_version_passes_the_gate() {
        let report = enforce(&registry(), &version(true), &config(), 2);
        assert_eq!(report.decision, GateDecision::Pass);
        assert!(report.violated_rules().is_empty());
    }

    #[test]
    fn regressed_version_is_blocked() {
        let report = enforce(&registry(), &version(false), &config(), 2);
        assert_eq!(report.decision, GateDecision::Block);
        assert_eq!(report.violated_rules().len(), 1);
    }

    #[test]
    fn registry_replaces_same_id() {
        let mut reg = registry();
        let len_before = reg.len();
        reg.register(
            SemanticRule::new(
                "ZK-1208-r0",
                "updated",
                TargetSpec::Call { callee: "create_ephemeral".into() },
                "s != null",
            )
            .expect("rule"),
        );
        assert_eq!(reg.len(), len_before);
        assert_eq!(reg.get("ZK-1208-r0").expect("rule").description, "updated");
    }

    #[test]
    fn parallel_matches_sequential() {
        let reg = {
            let mut r = registry();
            r.register(
                SemanticRule::new(
                    "EXTRA-r0",
                    "session must exist",
                    TargetSpec::Call { callee: "create_ephemeral".into() },
                    "s != null",
                )
                .expect("rule"),
            );
            r
        };
        let v = version(false);
        let seq = enforce(&reg, &v, &config(), 1);
        let par = enforce(&reg, &v, &config(), 4);
        assert_eq!(seq.decision, par.decision);
        assert_eq!(seq.reports.len(), par.reports.len());
        for (a, b) in seq.reports.iter().zip(par.reports.iter()) {
            assert_eq!(a.rule_id, b.rule_id);
            assert_eq!(a.violated_count(), b.violated_count());
        }
    }
}
