//! Comparison baselines (paper Figure 4).
//!
//! LISA "occupies the middle ground between testing and verification":
//!
//! - **Regression testing** validates concrete executions only — each
//!   regression test encodes one scenario, so a fix regresses as soon as
//!   code evolves outside the test scope. Modelled by
//!   [`regression_test_baseline`]: replay the tests the original fix
//!   added and call a regression *detected* only if one fails.
//! - **Refinement-based verification** proves every path but at
//!   heavyweight cost. Modelled by [`verification_cost`]: the exhaustive
//!   path space that a full proof would have to discharge (static chain
//!   count × intraprocedural path products), alongside an exhaustive
//!   unpruned pipeline configuration for wall-clock comparison.

use std::time::Instant;

use lisa_analysis::{execution_tree, paths_to_stmt, CallGraph, TargetSpec, TreeLimits};
use lisa_concolic::SystemVersion;
use lisa_lang::{Interp, NullTracer, Value};

/// Outcome of replaying a set of named tests.
#[derive(Debug, Clone)]
pub struct TestReplay {
    pub tests_run: usize,
    pub failing: Vec<String>,
    pub wall: std::time::Duration,
}

impl TestReplay {
    /// The baseline flags a regression only when a replayed test fails.
    pub fn detected(&self) -> bool {
        !self.failing.is_empty()
    }
}

/// Replay `test_names` (the regression tests added by the original fix)
/// against a version. Tests absent from the version are skipped — exactly
/// the blind spot of the approach when code evolves.
pub fn regression_test_baseline(version: &SystemVersion, test_names: &[String]) -> TestReplay {
    let started = Instant::now();
    let mut failing = Vec::new();
    let mut tests_run = 0;
    for name in test_names {
        if version.program.function(name).is_none() {
            continue;
        }
        tests_run += 1;
        let mut interp = Interp::new(&version.program);
        if interp.call(name, Vec::<Value>::new(), &mut NullTracer).is_err() {
            failing.push(name.clone());
        }
    }
    TestReplay { tests_run, failing, wall: started.elapsed() }
}

/// Replay the whole suite (the "more tests" variant of the baseline).
pub fn full_suite_baseline(version: &SystemVersion) -> TestReplay {
    let names: Vec<String> = version.tests.iter().map(|t| t.name.clone()).collect();
    regression_test_baseline(version, &names)
}

/// Cost model for full verification: the number of execution paths a
/// refinement proof must cover for this target — every static chain times
/// the product of intraprocedural guard combinations along it.
pub fn verification_cost(version: &SystemVersion, target: &TargetSpec) -> u64 {
    let graph = CallGraph::build(&version.program);
    let tree = execution_tree(&graph, target, TreeLimits::default());
    let mut total: u64 = 0;
    for chain in &tree.chains {
        let mut product: u64 = 1;
        // Paths to each call site along the chain.
        for &sid in &chain.sites {
            let site = graph.site(sid);
            if let Some(f) = version.program.function(&site.caller) {
                if let Some(p) = paths_to_stmt(f, site.stmt) {
                    product = product.saturating_mul(p.max(1));
                }
            }
        }
        // Paths to the target site in its holder.
        let tsite = graph.site(chain.target_site);
        if let Some(f) = version.program.function(&tsite.caller) {
            if let Some(p) = paths_to_stmt(f, tsite.stmt) {
                product = product.saturating_mul(p.max(1));
            }
        }
        total = total.saturating_add(product);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_concolic::discover_tests;
    use lisa_lang::Program;

    /// Fixed version: regression test passes. Regressed version: the
    /// *original* regression test still passes (it exercises the fixed
    /// path), which is exactly the gap the paper describes.
    fn version(regressed: bool) -> SystemVersion {
        let prep_guard = if regressed { "s2 == null" } else { "s2 == null || s2.closing" };
        let src = format!(
            "struct Session {{ id: int, closing: bool }}\n\
             global sessions: map<int, Session>;\n\
             global nodes: map<str, int>;\n\
             fn create_ephemeral(s: Session, path: str) {{ nodes.put(path, s.id); }}\n\
             fn touch_create(sid: int, path: str) {{\n\
                 let s: Session = sessions.get(sid);\n\
                 if (s == null || s.closing) {{ return; }}\n\
                 create_ephemeral(s, path);\n\
             }}\n\
             fn prep_create(sid: int, path: str) {{\n\
                 let s2: Session = sessions.get(sid);\n\
                 if ({prep_guard}) {{ return; }}\n\
                 create_ephemeral(s2, path);\n\
             }}\n\
             fn test_no_create_on_closing_touch() {{\n\
                 let s = new Session {{ id: 1, closing: true }};\n\
                 sessions.put(1, s);\n\
                 touch_create(1, \"/a\");\n\
                 assert(nodes.contains(\"/a\") == false, \"no node on closing session\");\n\
             }}"
        );
        let p = Program::parse_single("zk", &src).expect("p");
        let tests = discover_tests(&p, "test_");
        SystemVersion::new(if regressed { "regressed" } else { "fixed" }, p, tests)
    }

    #[test]
    fn regression_test_passes_on_fixed_version() {
        let v = version(false);
        let replay =
            regression_test_baseline(&v, &["test_no_create_on_closing_touch".to_string()]);
        assert_eq!(replay.tests_run, 1);
        assert!(!replay.detected());
    }

    #[test]
    fn regression_test_misses_the_new_path() {
        // The regression escaped through prep_create; the old test still
        // exercises touch_create and passes — the baseline is blind.
        let v = version(true);
        let replay =
            regression_test_baseline(&v, &["test_no_create_on_closing_touch".to_string()]);
        assert!(!replay.detected(), "the Figure-1 gap: old test still green");
    }

    #[test]
    fn removed_test_is_skipped_not_failed() {
        let v = version(false);
        let replay = regression_test_baseline(&v, &["test_deleted_long_ago".to_string()]);
        assert_eq!(replay.tests_run, 0);
        assert!(!replay.detected());
    }

    #[test]
    fn verification_cost_counts_paths() {
        let v = version(false);
        let cost =
            verification_cost(&v, &TargetSpec::Call { callee: "create_ephemeral".into() });
        // Two chains, one guard each on the way to the target.
        assert!(cost >= 2, "cost {cost}");
    }

    #[test]
    fn full_suite_runs_everything() {
        let v = version(false);
        let replay = full_suite_baseline(&v);
        assert_eq!(replay.tests_run, v.tests.len());
    }
}
