//! Durable gate runs and the supervised `lisa serve` daemon.
//!
//! Two layers live here, both built on `lisa-store`:
//!
//! - [`gate_durable`] — a gate run whose progress is journaled. Rules
//!   are checked **sequentially** (deterministic journal-record
//!   boundaries are what make the E11 kill-matrix meaningful), each
//!   settled verdict is appended to the write-ahead journal before the
//!   next rule starts, and a resumed run reuses journaled verdicts
//!   instead of re-running concolic exploration. The recovery invariant:
//!   a run killed at *any* journal-record boundary and resumed produces
//!   a byte-identical final verdict artifact ([`DurableGateReport::verdicts_text`]).
//! - [`serve`] — a daemon accepting gate jobs as newline-delimited JSON
//!   over a unix socket and (with `--listen`) a multiplexed TCP
//!   listener, processed by a supervised worker pool: panicked workers
//!   are reaped and respawned, stalled workers (no heartbeat for the
//!   tenant's `job_timeout`) abandoned, their jobs retried with backoff
//!   and dead-lettered after `max_attempts`, with bounded-queue
//!   backpressure and graceful drain on shutdown. Two isolation rules
//!   keep recovery honest: every respawned worker gets a **fresh slot**
//!   (an abandoned thread can never take — or answer — a job it does
//!   not own), and jobs sharing a state directory are **serialized** (a
//!   retry never races its abandoned predecessor on the same journal).
//!
//! The daemon is **multi-tenant**: a gate request may carry a `tenant`
//! field routing it to that tenant's bounded queue, rule registry, and
//! version-scoped cache. Dequeue is weighted-fair (stride scheduling
//! over `--tenants` weights via [`crate::tenant::FairQueues`]), and
//! admission control sheds explicitly — a saturated tenant or global
//! queue answers `{"status":"shed","retry_after_ms":...}` immediately
//! instead of blocking or dropping the connection. The TCP front end is
//! a hand-rolled `poll(2)` readiness loop ([`crate::netloop`]): idle
//! clients cost no threads.
//!
//! Parallel throughput comes from the worker pool across jobs; within a
//! durable run, determinism wins over parallelism.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lisa_analysis::CallGraph;
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_lang::Program;
use lisa_oracle::{author_rule, SemanticRule};
use lisa_store::journal::{fnv1a, frame, Journal, FRAME_HEADER};
use lisa_store::repl::{
    decode_wire, encode_wire, Applier, BusPoll, FrameDecoder, ReplBus, StreamFault, StreamFaults,
    Wire, REPL_VERSION,
};
use lisa_store::{
    read_atomic, scan, FingerprintFile, GateEvent, IoFaults, RuleOutcome, RunState, RunStore,
    StoreError,
};
use lisa_util::RetryPolicy;

use crate::enforce::{enforce_impl, FailMode, GateDecision, GateOptions, RuleRegistry};
use crate::faults::FAULT_PANIC_PREFIX;
use crate::gate::GateCache;
use crate::json::{escape, Json};
use crate::netloop::{raise_fd_limit, PollSet, TcpGate};
use crate::pipeline::{PipelineConfig, TestSelection};
use crate::tenant::{
    valid_tenant, Admitted, FairQueues, TenantSpec, MAX_JOB_ID_LEN,
};
use crate::verdict::RuleReport;

/// NDJSON protocol version the serve daemon speaks. Requests may carry a
/// `"v"` field; a missing `v` is treated as version 1 (the field
/// predates nothing — v1 is the first and only version), while any other
/// value is a structured bad-request.
pub const PROTOCOL_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// System / rules loading (shared by the CLI and serve jobs)
// ---------------------------------------------------------------------------

/// Load every `.sir` file under `dir` (sorted, non-recursive) into one
/// program; discover tests by prefix.
pub fn load_system(dir: &str, test_prefix: &str) -> Result<SystemVersion, String> {
    let dir = Path::new(dir);
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sir"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .sir files in {}", dir.display()));
    }
    let mut sources = Vec::new();
    for f in &files {
        let text =
            std::fs::read_to_string(f).map_err(|e| format!("read {}: {e}", f.display()))?;
        let name = f.file_stem().and_then(|s| s.to_str()).unwrap_or("module").to_string();
        sources.push((name, text));
    }
    let refs: Vec<(&str, &str)> =
        sources.iter().map(|(n, t)| (n.as_str(), t.as_str())).collect();
    let program = Program::parse(&refs).map_err(|e| e.to_string())?;
    let errors = lisa_lang::check_program(&program);
    if !errors.is_empty() {
        let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        return Err(format!("type errors:\n  {}", msgs.join("\n  ")));
    }
    let tests = discover_tests(&program, test_prefix);
    let label = dir.file_name().and_then(|s| s.to_str()).unwrap_or("system").to_string();
    Ok(SystemVersion::new(label, program, tests))
}

/// Parse a rules file of authoring-template sentences.
pub fn load_rules(path: &str) -> Result<Vec<SemanticRule>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_rules_text(path, &text)
}

/// Parse rules from already-read text (`path` labels errors only).
fn parse_rules_text(path: &str, text: &str) -> Result<Vec<SemanticRule>, String> {
    let mut rules = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = author_rule(&format!("rule-{}", lineno + 1), line)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err(format!("{path}: no rules"));
    }
    Ok(rules)
}

// ---------------------------------------------------------------------------
// Durable gate runs
// ---------------------------------------------------------------------------

/// Fingerprint the `(version, rule set)` a journal belongs to. A stale
/// journal — different program text, tests, or rules — must never donate
/// verdicts to a run it does not describe.
pub fn run_key(version: &SystemVersion, rules: &[SemanticRule]) -> String {
    let mut text = String::new();
    text.push_str(&version.label);
    text.push('\n');
    for f in version.program.functions() {
        text.push_str(&lisa_lang::pretty::print_fn(f));
    }
    for t in &version.tests {
        text.push_str(&t.name);
        text.push('\n');
    }
    for r in rules {
        text.push_str(&format!(
            "{}\u{1f}{}\u{1f}{}\u{1f}{}\n",
            r.id, r.description, r.target, r.condition_src
        ));
    }
    format!("{}-{:016x}", version.label, fnv1a(text.as_bytes()))
}

/// Canonical verdict fingerprint for one rule report: chain verdicts and
/// rendered paths plus fold counts — everything decision-relevant,
/// nothing timing-dependent. This is the byte-comparable artifact the
/// crash-recovery invariant is stated over.
pub fn fingerprint(r: &RuleReport) -> String {
    let mut s = String::new();
    for c in &r.chains {
        s.push_str(&format!("[{}] {}\n", c.verdict.label(), c.rendered));
    }
    s.push_str(&format!(
        "verified={} violated={} off_tree={} not_covered={} engine_errors={} sanity_ok={}",
        r.verified_count(),
        r.violated_count(),
        r.off_tree_violations.len(),
        r.not_covered_count(),
        r.engine_error_count(),
        r.sanity_ok,
    ));
    s
}

/// Condense a rule report into the journaled outcome.
pub fn outcome_of(r: &RuleReport) -> RuleOutcome {
    RuleOutcome {
        rule_id: r.rule_id.clone(),
        fingerprint: fingerprint(r),
        verified: r.verified_count() as u64,
        violated: (r.violated_count() + r.off_tree_violations.len()) as u64,
        not_covered: r.not_covered_count() as u64,
        engine_errors: r.engine_error_count() as u64,
        degraded: r.degraded,
        sanity_ok: r.sanity_ok,
        retries: r.retries as u64,
    }
}

/// Computes per-rule dependency hashes for cross-version reuse: the hash
/// of exactly the inputs a rule's verdict is a function of. Sound
/// over-approximation — a hash that moves only forces a re-check, but a
/// hash that stays MUST imply an identical verdict, so the relevant set
/// errs wide:
///
/// - the rule itself (id, description, target, condition text),
/// - struct layouts and globals (interpreter semantics),
/// - every test's name, summary, and entry (selection inputs),
/// - the effective pipeline configuration and gate budgets,
/// - the fingerprint of every *relevant* function, in program order:
///   functions that can reach the target (they shape chains and
///   aliases) plus everything executed by tests that can reach it
///   (their whole trace feeds the recorded path conditions), with
///   membership itself part of the hash — adding or removing a relevant
///   function moves it.
///
/// Tests that cannot reach the target are deliberately NOT relevant
/// beyond their hashed name/summary/entry: the journaled outcome is
/// built from target arrivals and chain structure only (`fingerprint`
/// above), and a run that never arrives contributes neither — its
/// interior can change freely without moving any verdict.
struct DepHasher {
    graph: CallGraph,
    fn_fps: std::collections::BTreeMap<String, u64>,
    /// Hash of everything rule-independent: decls, tests, configuration.
    base: u64,
    /// Test entry points (candidates for the per-rule forward walk).
    test_entries: Vec<String>,
}

impl DepHasher {
    fn new(version: &SystemVersion, config: &PipelineConfig, gate: &GateOptions) -> DepHasher {
        let graph = CallGraph::build(&version.program);
        let mut base = lisa_util::Fnv1a::new();
        base.part_u64(lisa_lang::fingerprint_decls(&version.program));
        for t in &version.tests {
            base.part(t.name.as_bytes());
            base.part(t.summary.as_bytes());
            base.part(t.entry.as_bytes());
        }
        // Debug formatting is stable for a given binary; a format change
        // across releases costs one re-check, never a wrong reuse.
        base.part(format!("{config:?}").as_bytes());
        base.part(format!("{:?}", gate.budgets).as_bytes());
        base.part(format!("{:?}", gate.retry).as_bytes());

        DepHasher {
            graph,
            fn_fps: lisa_lang::fn_fingerprints(&version.program),
            base: base.finish(),
            test_entries: version.tests.iter().map(|t| t.entry.clone()).collect(),
        }
    }

    fn dep_hash(&self, rule: &SemanticRule) -> u64 {
        // Reverse closure: every function from which the target can be
        // reached (the functions that form chains and donate aliases).
        let mut to_target = HashSet::new();
        let mut work: Vec<String> = rule
            .target
            .sites(&self.graph)
            .into_iter()
            .map(|sid| self.graph.site(sid).caller.clone())
            .collect();
        while let Some(f) = work.pop() {
            if !to_target.insert(f.clone()) {
                continue;
            }
            for &sid in self.graph.callers_of(&f) {
                work.push(self.graph.site(sid).caller.clone());
            }
        }
        // Forward closure from the tests that can reach the target: the
        // whole trace of a reaching run feeds its recorded constraints,
        // including detours through functions off the target paths.
        let mut relevant = to_target.clone();
        let mut work: Vec<String> =
            self.test_entries.iter().filter(|e| to_target.contains(*e)).cloned().collect();
        while let Some(f) = work.pop() {
            for &sid in self.graph.sites_in(&f) {
                let callee = self.graph.site(sid).callee.clone();
                if relevant.insert(callee.clone()) {
                    work.push(callee);
                }
            }
        }
        let mut h = lisa_util::Fnv1a::new();
        h.part_u64(self.base);
        h.part(rule.id.as_bytes());
        h.part(rule.description.as_bytes());
        h.part(rule.target.to_string().as_bytes());
        h.part(rule.condition_src.as_bytes());
        // Relevant functions in program order, names + fingerprints:
        // relative order matters (it fixes chain and site enumeration
        // order in reports).
        for f in self.graph.functions() {
            if relevant.contains(f) {
                h.part(f.as_bytes());
                h.part_u64(self.fn_fps.get(f).copied().unwrap_or(0));
            }
        }
        h.finish()
    }
}

/// Where and how a durable run persists its state.
pub struct DurableOptions {
    /// Directory holding the run's journal and snapshot.
    pub state_dir: PathBuf,
    /// Scheduler width for each rule's leaf fan-out (0 = auto). Rules
    /// themselves settle one at a time — the journal's replay order is
    /// the registry order — but within a rule the concolic tests, SMT
    /// queries, and alias chains still spread across this many workers.
    pub workers: usize,
    /// Disk fault injection at the store's I/O seams (E11, tests).
    pub disk_faults: Option<Arc<dyn IoFaults>>,
    /// Checkpoint (snapshot + journal truncate) after every N fresh
    /// verdicts; 0 = never checkpoint.
    pub checkpoint_every: usize,
    /// Liveness heartbeat: called after every rule settles (reused or
    /// fresh). The serve supervisor uses it to tell a slow-but-
    /// progressing job from a wedged one.
    pub progress: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Cooperative cancellation, checked at every rule boundary. When it
    /// fires the run returns [`StoreError::Cancelled`] without touching
    /// the store further; the journal written so far stays valid for
    /// resume.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Version-scoped cache shared with the in-memory gate machinery.
    /// Also enables cross-version reuse via the persisted fingerprint
    /// file beside the journal (skipped whenever faults or a deadline
    /// make verdicts non-reproducible).
    pub cache: Option<Arc<GateCache>>,
    /// Replication publisher: when attached, every durable mutation of
    /// this run (append, snapshot, reset) is also shipped to subscribed
    /// followers.
    pub repl: Option<Arc<ReplBus>>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            state_dir: PathBuf::new(),
            // Sequential by default: durable runs are usually one job of
            // many inside `lisa serve`, which already parallelizes across
            // jobs. Callers opt into per-rule fan-out explicitly.
            workers: 1,
            disk_faults: None,
            checkpoint_every: 0,
            progress: None,
            cancel: None,
            cache: None,
            repl: None,
        }
    }
}

/// Result of a durable (journaled, resumable) gate run.
#[derive(Debug)]
pub struct DurableGateReport {
    pub version: String,
    pub run_key: String,
    pub decision: GateDecision,
    pub fail_mode: FailMode,
    /// Outcomes in registry order, one per rule.
    pub outcomes: Vec<RuleOutcome>,
    /// Verdicts reused from the journal (not re-executed).
    pub reused: usize,
    /// Verdicts settled by this process (includes cross-version reuses —
    /// they journal the same records a re-check would have).
    pub fresh: usize,
    /// Of `fresh`, how many were reused from the previous version's
    /// fingerprint file instead of being re-explored. Deliberately not
    /// part of [`DurableGateReport::render`] or the CLI JSON line: cached
    /// and uncached runs must stay byte-identical on stdout. Telemetry
    /// (`service.verdicts_cross_version`) carries it instead.
    pub cross_version: usize,
    /// False if journaling was disabled mid-run (e.g. ENOSPC).
    pub durable: bool,
    /// Journal records replayed on open.
    pub recovered_records: usize,
    pub warnings: Vec<String>,
}

impl DurableGateReport {
    pub fn engine_errors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.has_engine_error()).count()
    }

    pub fn has_violation(&self) -> bool {
        self.outcomes.iter().any(|o| o.has_violation())
    }

    /// The canonical verdict artifact: byte-identical between an
    /// uninterrupted run and any crash-resumed run of the same inputs.
    pub fn verdicts_text(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&format!("rule {}\n{}\n", o.rule_id, o.fingerprint));
        }
        out.push_str(&format!("decision {}\n", self.decision));
        out
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "durable gate `{}`: {} — {} rule(s), {} reused from journal, {} fresh\n",
            self.version,
            self.decision,
            self.outcomes.len(),
            self.reused,
            self.fresh,
        );
        for o in &self.outcomes {
            out.push_str(&format!(
                "  {:<12} verified={} violated={} not_covered={} engine_errors={}{}\n",
                o.rule_id,
                o.verified,
                o.violated,
                o.not_covered,
                o.engine_errors,
                if o.degraded { " (degraded)" } else { "" },
            ));
        }
        if !self.durable {
            out.push_str("  ! journaling disabled mid-run; this run is not resumable\n");
        }
        for w in &self.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
        out
    }
}

/// Run the gate durably: journal every settled verdict, reuse verdicts a
/// previous (crashed) run already journaled, and record the final
/// decision. Opening the store can fail (bad directory); everything past
/// that degrades instead of failing — an undecidable gate is worse than
/// an unjournaled one.
pub fn gate_durable(
    registry: &RuleRegistry,
    version: &SystemVersion,
    config: &PipelineConfig,
    gate: &GateOptions,
    durable: &DurableOptions,
) -> Result<DurableGateReport, StoreError> {
    let key = run_key(version, registry.rules());
    let mut run_span = lisa_telemetry::span_with("service.durable_run", key.clone());
    let mut store = RunStore::open_replicated(
        &durable.state_dir,
        &key,
        durable.disk_faults.clone(),
        durable.repl.clone(),
    )?;
    let mut warnings = std::mem::take(&mut store.warnings);
    let recovered_records = store.recovered_records;

    // Cross-version reuse: a rule whose dependency hash matches the
    // persisted fingerprint file (written by the previous run in this
    // state dir, possibly for a *different* version) gets its recorded
    // outcome journaled verbatim instead of being re-explored. Off
    // whenever faults or a deadline could make a verdict depend on
    // anything but the hashed inputs.
    // A wall-clock budget makes truncation timing-dependent: such
    // verdicts are not pure functions of the hashed inputs, so reuse is
    // off entirely (mirrors the trace cache's wall-budget bypass).
    let reuse_fingerprints = durable.cache.is_some()
        && gate.faults.is_none()
        && gate.deadline.is_none()
        && gate.budgets.rule_wall.is_none()
        && config.budgets.rule_wall.is_none();
    let prior = if reuse_fingerprints {
        FingerprintFile::load(&durable.state_dir)
    } else {
        FingerprintFile::default()
    };
    let deps = reuse_fingerprints.then(|| DepHasher::new(version, config, gate));

    let mut reused = 0usize;
    let mut fresh = 0usize;
    let mut cross_version = 0usize;
    for rule in registry.rules() {
        if durable.cancel.as_ref().is_some_and(|c| c.load(Ordering::SeqCst)) {
            return Err(StoreError::Cancelled);
        }
        if store.state.finished_outcome(&rule.id).is_some() {
            reused += 1;
            if let Some(beat) = &durable.progress {
                beat();
            }
            continue;
        }
        store.record_started(&rule.id);
        let prior_outcome = deps
            .as_ref()
            .and_then(|d| prior.reusable(&rule.id, d.dep_hash(rule)))
            .cloned();
        if let Some(outcome) = prior_outcome {
            // Same records a re-check would journal: the wal stays
            // byte-identical to an uncached run's.
            store.record_finished(outcome);
            cross_version += 1;
        } else {
            // One rule at a time: the per-rule machinery (panic
            // isolation, retries, budgets) is the gate engine on a
            // singleton registry. `durable.workers` widens the fan-out
            // *inside* the rule without touching the journal order.
            let mut single = RuleRegistry::new();
            single.register(rule.clone());
            let report = enforce_impl(
                &single,
                version,
                config,
                durable.workers,
                gate,
                durable.cache.as_ref(),
            );
            warnings.extend(report.warnings.iter().cloned());
            store.record_finished(outcome_of(&report.reports[0]));
        }
        fresh += 1;
        if let Some(beat) = &durable.progress {
            beat();
        }
        if durable.checkpoint_every > 0 && fresh.is_multiple_of(durable.checkpoint_every) {
            if let Err(e) = store.checkpoint() {
                warnings.push(format!("checkpoint failed ({e}); journal left as-is"));
            }
        }
    }
    if durable.cancel.as_ref().is_some_and(|c| c.load(Ordering::SeqCst)) {
        return Err(StoreError::Cancelled);
    }

    // Persist this run's fingerprints so the *next* version can reuse
    // every rule whose dependencies it leaves untouched. Failures warn:
    // the fingerprint file is an optimization, the journal is the truth.
    if let Some(d) = &deps {
        let mut next = FingerprintFile::default();
        for rule in registry.rules() {
            if let Some(o) = store.state.finished_outcome(&rule.id) {
                next.insert(d.dep_hash(rule), o.clone());
            }
        }
        if let Err(e) = next.save(&durable.state_dir) {
            warnings.push(format!("fingerprint file not saved ({e}); next run re-checks"));
        }
    }

    let outcomes: Vec<RuleOutcome> = registry
        .rules()
        .iter()
        .filter_map(|r| store.state.finished_outcome(&r.id).cloned())
        .collect();
    let engine_errors = outcomes.iter().filter(|o| o.has_engine_error()).count();
    let has_violation = outcomes.iter().any(|o| o.has_violation());
    let decision = if has_violation || (engine_errors > 0 && gate.fail_mode == FailMode::Closed)
    {
        GateDecision::Block
    } else {
        GateDecision::Pass
    };
    store.record_run_finished(&decision.to_string());
    warnings.extend(store.warnings.iter().cloned());

    run_span.arg("rules", registry.rules().len() as u64);
    run_span.arg("reused", reused as u64);
    run_span.arg("fresh", fresh as u64);
    run_span.arg("cross_version", cross_version as u64);
    run_span.arg("recovered_records", recovered_records as u64);
    if lisa_telemetry::metrics_enabled() {
        lisa_telemetry::counter_add("service.verdicts_reused", reused as u64);
        lisa_telemetry::counter_add("service.verdicts_fresh", fresh as u64);
        lisa_telemetry::counter_add("service.verdicts_cross_version", cross_version as u64);
        lisa_telemetry::counter_add("service.durable_runs", 1);
    }

    Ok(DurableGateReport {
        version: version.label.clone(),
        run_key: key,
        decision,
        fail_mode: gate.fail_mode,
        outcomes,
        reused,
        fresh,
        cross_version,
        durable: store.durable(),
        recovered_records,
        warnings,
    })
}

// ---------------------------------------------------------------------------
// The serve daemon
// ---------------------------------------------------------------------------

/// Configuration for [`serve`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on (created; removed on clean exit).
    pub socket: PathBuf,
    /// Root directory for per-job durable state (`<root>/<job-id>/`).
    pub state_root: PathBuf,
    /// Worker threads.
    pub workers: usize,
    /// Queue capacity; submissions beyond it get an `overloaded` reply.
    pub queue_cap: usize,
    /// A worker making no progress on its job for this long is
    /// considered stalled: abandoned, its job recovered and retried.
    /// Progress is a per-rule heartbeat from the durable run, so this
    /// bounds one rule check, not the whole job — a slow but advancing
    /// gate is left alone.
    pub job_timeout: Duration,
    /// Attempts per job before it is dead-lettered.
    pub max_attempts: u32,
    /// Backoff schedule between attempts (also paces follower
    /// reconnects in `--follow` mode — the Retry tactic in both roles).
    pub retry: RetryPolicy,
    /// Follow a leader at this address instead of accepting writes:
    /// mirror its state root, answer read-only ops, and promote to
    /// leader when it goes silent. Accepts `unix:<path>`,
    /// `tcp:<host:port>`, a bare socket path, or a bare `host:port`.
    pub follow: Option<String>,
    /// Additionally accept replication subscribers over TCP at this
    /// `host:port` (the unix socket always accepts the `follow` op).
    pub repl_listen: Option<String>,
    /// How often the leader ships a heartbeat frame to each follower.
    pub heartbeat_interval: Duration,
    /// A synced follower that receives nothing — no frame, no heartbeat
    /// — for this long declares its leader dead and promotes itself.
    pub heartbeat_timeout: Duration,
    /// Seeded fault injection at the follower's receive seam (tests and
    /// the failover fault sweep).
    pub stream_faults: Option<Arc<dyn StreamFaults>>,
    /// Additionally accept gate submissions over TCP at this
    /// `host:port`, multiplexed onto the supervisor thread by a
    /// nonblocking `poll(2)` readiness loop — thousands of idle clients
    /// cost no threads.
    pub listen: Option<String>,
    /// Tenant roster: fairness weight and optional per-tenant job
    /// timeout per name. Tenants not listed here auto-register at
    /// weight 1 on first submission.
    pub tenants: Vec<TenantSpec>,
    /// Explicit per-tenant queue bound; 0 means each tenant's bound is
    /// its weight-proportional share of `queue_cap`.
    pub tenant_cap: usize,
    /// Maximum concurrently parked TCP connections on `listen`; accepts
    /// past it are answered with a structured shed and closed.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            socket: PathBuf::from("lisa.sock"),
            state_root: PathBuf::from("lisa-state"),
            workers: 2,
            queue_cap: 64,
            job_timeout: Duration::from_secs(30),
            max_attempts: 3,
            retry: RetryPolicy::default(),
            follow: None,
            repl_listen: None,
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_millis(2500),
            stream_faults: None,
            listen: None,
            tenants: Vec::new(),
            tenant_cap: 0,
            max_conns: 4096,
        }
    }
}

impl fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeConfig")
            .field("socket", &self.socket)
            .field("state_root", &self.state_root)
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .field("job_timeout", &self.job_timeout)
            .field("max_attempts", &self.max_attempts)
            .field("retry", &self.retry)
            .field("follow", &self.follow)
            .field("repl_listen", &self.repl_listen)
            .field("heartbeat_interval", &self.heartbeat_interval)
            .field("heartbeat_timeout", &self.heartbeat_timeout)
            .field("stream_faults", &self.stream_faults.is_some())
            .field("listen", &self.listen)
            .field("tenants", &self.tenants)
            .field("tenant_cap", &self.tenant_cap)
            .field("max_conns", &self.max_conns)
            .finish()
    }
}

/// Counters the daemon reports on exit and via the `stats` op.
#[derive(Debug, Default, Clone)]
pub struct ServeStats {
    pub jobs_done: u64,
    pub retries: u64,
    pub dead_letters: u64,
    pub respawned_workers: u64,
    pub rejected_overload: u64,
    /// 1 if this process started as a follower and took over as leader.
    pub promotions: u64,
}

/// The response channel a job (or transient request) travels with: a
/// unix-socket peer or a TCP peer from the `--listen` readiness loop.
/// Both transports speak the same one-line NDJSON protocol, so replies
/// are byte-identical across them.
enum Responder {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Responder {
    /// Write one reply line. A failed write is counted in
    /// `serve.reply_errors` and the connection is torn down cleanly —
    /// a dead client must cost a counter bump, never a wedged worker.
    /// Returns whether the reply reached the kernel.
    fn send(&mut self, line: &str) -> bool {
        let res = match self {
            Responder::Unix(s) => write_reply(s, line),
            Responder::Tcp(s) => write_reply(s, line),
        };
        if let Err(e) = res {
            lisa_telemetry::counter_add("serve.reply_errors", 1);
            lisa_telemetry::note("serve", || format!("reply failed: {e}"));
            match self {
                Responder::Unix(s) => drop(s.shutdown(std::net::Shutdown::Both)),
                Responder::Tcp(s) => drop(s.shutdown(std::net::Shutdown::Both)),
            }
            return false;
        }
        true
    }
}

/// One queued gate job. The response stream travels with the job so
/// whoever settles it — worker, or supervisor on dead-letter — can reply.
struct Job {
    id: String,
    tenant: String,
    system: String,
    rules: String,
    fail_mode: FailMode,
    /// Test hook: `panic` (every attempt), `panic-once` (first attempt
    /// only), `stall` (sleep past the job timeout).
    chaos: Option<String>,
    attempts: u32,
    stream: Responder,
}

/// A worker's in-flight job: parked here while processing so the
/// supervisor can recover it from a panicked or stalled thread. The
/// `Instant` is the job's last heartbeat, refreshed per settled rule.
///
/// A slot is owned by exactly one live worker: when the supervisor
/// abandons a stalled worker it replaces the slot (and the worker) in
/// the pool, so the abandoned thread's `take()` can only ever see its
/// own job or `None` — never a job a replacement worker parked later.
type Slot = Arc<Mutex<Option<(Job, Instant)>>>;

/// One pool entry: the worker thread, the slot it parks jobs in, and the
/// cancellation flag the supervisor raises when abandoning it.
struct Worker {
    handle: Option<JoinHandle<()>>,
    slot: Slot,
    cancel: Arc<AtomicBool>,
}

struct QueueState {
    /// Per-tenant bounded queues with weighted-fair (stride) dequeue
    /// and per-tenant retry budgets / degradation state.
    queues: FairQueues<Job>,
    /// State-dir keys currently owned by a live attempt (including an
    /// abandoned thread that has not yet reached a cancellation point).
    /// Workers skip queued jobs whose key is busy, so two attempts can
    /// never hold a `RunStore` on the same directory at once.
    busy_dirs: HashSet<String>,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    shutdown: AtomicBool,
    jobs_done: AtomicU64,
    state_root: PathBuf,
    /// Worker slots by pool position, read by the `stats` op. The
    /// supervisor replaces an entry whenever it respawns that worker, so
    /// the view always reflects the live pool — an abandoned thread's
    /// stale slot is unreachable from here.
    worker_slots: Mutex<Vec<Slot>>,
    /// Replication publisher over the state root; every durable run the
    /// workers execute feeds it, and each subscribed follower drains it
    /// through a shipper thread.
    repl: Arc<ReplBus>,
    /// Followers currently attached (live shipper threads).
    followers: AtomicU64,
    /// Shipper thread handles, joined on shutdown.
    shippers: Mutex<Vec<JoinHandle<()>>>,
    /// Per-tenant execution state (rule registries, verdict cache).
    /// Isolation, not just bookkeeping: one tenant's cached verdicts
    /// and parsed rules are invisible to every other tenant's jobs.
    runtimes: Mutex<HashMap<String, Arc<TenantRuntime>>>,
    /// Currently parked TCP connections on the `--listen` gate,
    /// refreshed each supervision tick for the `stats` op.
    listen_conns: AtomicU64,
}

impl Shared {
    fn runtime(&self, tenant: &str) -> Arc<TenantRuntime> {
        let mut map = self.runtimes.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(tenant.to_string()).or_insert_with(|| {
            Arc::new(TenantRuntime {
                cache: Arc::new(GateCache::new()),
                rules: Mutex::new(HashMap::new()),
            })
        }))
    }
}

/// Distinct rule sets a tenant's registry memo holds before it is
/// flushed wholesale (rule files are tiny; the bound exists so a tenant
/// cycling file contents cannot grow daemon memory without limit).
const RULES_MEMO_CAP: usize = 32;

/// One tenant's runtime: the version-scoped verdict cache its jobs
/// share, and parsed rule sets memoized by rules-file content hash.
struct TenantRuntime {
    cache: Arc<GateCache>,
    rules: Mutex<HashMap<u64, Arc<Vec<SemanticRule>>>>,
}

impl TenantRuntime {
    /// Load the rule set at `path`, reusing the parse when the file
    /// content is unchanged.
    fn load_rules(&self, path: &str) -> Result<Arc<Vec<SemanticRule>>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let key = fnv1a(text.as_bytes());
        {
            let memo = self.rules.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(rules) = memo.get(&key) {
                return Ok(Arc::clone(rules));
            }
        }
        let rules = Arc::new(parse_rules_text(path, &text)?);
        let mut memo = self.rules.lock().unwrap_or_else(|p| p.into_inner());
        if memo.len() >= RULES_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, Arc::clone(&rules));
        Ok(rules)
    }
}

/// Holds a job's state-dir key in `busy_dirs` for the duration of one
/// attempt. Dropped on every exit path — normal completion, chaos panic
/// unwind, or cancelled abandonment — so the key is always released.
struct DirGuard {
    shared: Arc<Shared>,
    key: String,
}

impl Drop for DirGuard {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).busy_dirs.remove(&self.key);
        // A waiting worker may only have been blocked on this dir.
        self.shared.available.notify_all();
    }
}

fn write_reply(stream: &mut impl Write, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Reply on a transient (non-job) connection. The client may have gone
/// away; a failed reply must not take the daemon down with it — but it
/// is counted, and the connection closes when the stream drops.
fn respond(stream: &mut impl Write, line: &str) {
    if let Err(e) = write_reply(stream, line) {
        lisa_telemetry::counter_add("serve.reply_errors", 1);
        lisa_telemetry::note("serve", || format!("reply failed: {e}"));
    }
}

/// Exit-code contract, same as the CLI: 0 = pass, 1 = violations,
/// 2 = engine errors under fail-closed.
fn exit_code_of(report: &DurableGateReport) -> u64 {
    if report.has_violation() {
        1
    } else if report.engine_errors() > 0 && report.fail_mode == FailMode::Closed {
        2
    } else {
        0
    }
}

fn done_response(job_id: &str, report: &DurableGateReport) -> String {
    format!(
        "{{\"job_id\":\"{}\",\"status\":\"done\",\"decision\":\"{}\",\"exit\":{},\"violations\":{},\"engine_errors\":{},\"reused\":{},\"fresh\":{}}}",
        escape(job_id),
        report.decision,
        exit_code_of(report),
        report.outcomes.iter().map(|o| o.violated).sum::<u64>(),
        report.engine_errors(),
        report.reused,
        report.fresh,
    )
}

fn error_response(job_id: &str, status: &str, error: &str) -> String {
    format!(
        "{{\"job_id\":\"{}\",\"status\":\"{}\",\"exit\":2,\"error\":\"{}\"}}",
        escape(job_id),
        escape(status),
        escape(error),
    )
}

/// Explicit admission control: the client learns immediately that it
/// was turned away and when to come back, instead of blocking on a
/// saturated queue or having its connection silently dropped.
fn shed_response(job_id: &str, tenant: &str, retry_after_ms: u64, reason: &str) -> String {
    format!(
        "{{\"job_id\":\"{}\",\"status\":\"shed\",\"tenant\":\"{}\",\"retry_after_ms\":{retry_after_ms},\"exit\":2,\"error\":\"{}\"}}",
        escape(job_id),
        escape(tenant),
        escape(reason),
    )
}

/// Structured bad-request for an over-long job id. The id is not echoed
/// back: the reply must stay bounded no matter what the client sent.
fn job_id_too_long(len: usize) -> String {
    error_response(
        "",
        "bad-request",
        &format!("job_id length {len} exceeds the {MAX_JOB_ID_LEN}-byte bound"),
    )
}

/// Map a client-supplied job id to its state-directory name. Ids that
/// are already filesystem-safe map to themselves; anything else gets a
/// hash of the raw id appended so distinct ids can never collide after
/// character replacement (`a/b` vs `a_b`), and an empty id can never
/// alias the state root itself.
fn sanitize(id: &str) -> String {
    let safe: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    if safe == id && !safe.is_empty() {
        safe
    } else {
        format!("{safe}-{:08x}", fnv1a(id.as_bytes()) as u32)
    }
}

/// Process one gate job end to end (load, durable gate, response text).
/// `cancel` stops the run at the next rule boundary once the supervisor
/// abandons this attempt; `progress` is the per-rule liveness heartbeat.
#[allow(clippy::too_many_arguments)] // the full job context, threaded once
fn process_job(
    system: &str,
    rules_path: &str,
    fail_mode: FailMode,
    shared: &Arc<Shared>,
    job_id: &str,
    tenant: &str,
    cancel: Arc<AtomicBool>,
    progress: Arc<dyn Fn() + Send + Sync>,
) -> Result<DurableGateReport, String> {
    let version = load_system(system, "test_")?;
    // The tenant's own registry and cache: rule sets are memoized per
    // tenant by file content, and verdict reuse never crosses tenants.
    let runtime = shared.runtime(tenant);
    let rules = runtime.load_rules(rules_path)?;
    let mut registry = RuleRegistry::new();
    for r in rules.iter() {
        registry.register(r.clone());
    }
    let config = PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() };
    let gate = GateOptions { fail_mode, ..GateOptions::default() };
    let durable = DurableOptions {
        state_dir: shared.state_root.join(sanitize(job_id)),
        progress: Some(progress),
        cancel: Some(cancel),
        cache: Some(Arc::clone(&runtime.cache)),
        repl: Some(Arc::clone(&shared.repl)),
        ..DurableOptions::default()
    };
    gate_durable(&registry, &version, &config, &gate, &durable).map_err(|e| e.to_string())
}

fn worker_loop(shared: Arc<Shared>, slot: Slot, cancel: Arc<AtomicBool>) {
    loop {
        // An abandoned worker must never pull another job: its slot is no
        // longer supervised, so any job it took would be invisible.
        if cancel.load(Ordering::SeqCst) {
            return;
        }
        let popped = {
            let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if cancel.load(Ordering::SeqCst) {
                    break None;
                }
                // Weighted-fair pick across tenants, skipping jobs whose
                // state dir another attempt still owns — a retry must
                // never race its abandoned predecessor on the same
                // journal, and duplicate job ids serialize.
                let QueueState { queues, busy_dirs } = &mut *q;
                if let Some((_, job)) = queues.pop(|j| !busy_dirs.contains(&sanitize(&j.id))) {
                    let key = sanitize(&job.id);
                    busy_dirs.insert(key.clone());
                    break Some((job, key));
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        let Some((job, key)) = popped else { return };
        // Released on every exit from this iteration — completion, chaos
        // panic unwind, or cancelled abandonment.
        let _dir = DirGuard { shared: Arc::clone(&shared), key };
        let (id, tenant, system, rules, fail_mode, chaos, attempts) = (
            job.id.clone(),
            job.tenant.clone(),
            job.system.clone(),
            job.rules.clone(),
            job.fail_mode,
            job.chaos.clone(),
            job.attempts,
        );
        let job_started = Instant::now();
        let mut job_span = lisa_telemetry::span_with("serve.job", id.clone());
        job_span.arg("attempt", attempts as u64);
        // Park the job (with its response stream) in the slot FIRST: from
        // here on, a panic or stall loses nothing — the supervisor
        // recovers the job from the slot.
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some((job, Instant::now()));
        match chaos.as_deref() {
            Some("panic") => panic!("{FAULT_PANIC_PREFIX} chaos panic for job {id}"),
            Some("panic-once") if attempts == 0 => {
                panic!("{FAULT_PANIC_PREFIX} chaos first-attempt panic for job {id}")
            }
            Some("stall") => {
                // A wedged job: never heartbeats, outlives any plausible
                // job timeout. Cancellation-aware only so the abandoned
                // attempt releases its state dir promptly for the retry.
                let wedged = Instant::now();
                while !cancel.load(Ordering::SeqCst)
                    && wedged.elapsed() < Duration::from_secs(600)
                {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            _ => {}
        }
        let beat_slot = Arc::clone(&slot);
        let progress: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
            if let Some((_, beat)) =
                beat_slot.lock().unwrap_or_else(|p| p.into_inner()).as_mut()
            {
                *beat = Instant::now();
            }
        });
        let result = process_job(
            &system,
            &rules,
            fail_mode,
            &shared,
            &id,
            &tenant,
            Arc::clone(&cancel),
            progress,
        );
        // Take the job back; if the supervisor already recovered it (it
        // judged us stalled), it owns the reply — do not double-respond.
        let taken = slot.lock().unwrap_or_else(|p| p.into_inner()).take();
        let Some((mut job, _)) = taken else { continue };
        let line = match &result {
            Ok(report) => done_response(&job.id, report),
            Err(e) => error_response(&job.id, "error", e),
        };
        job.stream.send(&line);
        shared.jobs_done.fetch_add(1, Ordering::Relaxed);
        let elapsed_us = job_started.elapsed().as_micros() as u64;
        // Settle the tenant's accounting: active count, done count, one
        // retry token earned back, and the shed-hint duration EWMA.
        shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .queues
            .settle(&job.tenant, elapsed_us / 1000);
        job_span.arg("failed", u64::from(result.is_err()));
        if lisa_telemetry::metrics_enabled() {
            lisa_telemetry::histogram_record("serve.job_us", elapsed_us);
            lisa_telemetry::histogram_record(&format!("serve.job_us.{}", job.tenant), elapsed_us);
            lisa_telemetry::counter_add("serve.jobs_done", 1);
            if result.is_err() {
                lisa_telemetry::counter_add("serve.jobs_failed", 1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Replication: leader-side shipping
// ---------------------------------------------------------------------------

/// Where a follower finds its leader's replication endpoint.
#[derive(Debug, PartialEq, Eq)]
enum ReplAddr {
    Unix(PathBuf),
    Tcp(String),
}

/// Parse a leader address: `unix:<path>`, `tcp:<host:port>`, a bare
/// path (anything containing `/`), or a bare `host:port`.
fn parse_repl_addr(spec: &str) -> ReplAddr {
    if let Some(path) = spec.strip_prefix("unix:") {
        ReplAddr::Unix(PathBuf::from(path))
    } else if let Some(hostport) = spec.strip_prefix("tcp:") {
        ReplAddr::Tcp(hostport.to_string())
    } else if spec.contains('/') {
        ReplAddr::Unix(PathBuf::from(spec))
    } else {
        ReplAddr::Tcp(spec.to_string())
    }
}

/// A replication transport: the unix socket and the TCP listener both
/// carry the same handshake line followed by binary frames.
trait ReplStream: Read + Write + Send {}
impl<T: Read + Write + Send> ReplStream for T {}

/// Stream the leader's state to one follower: full sync first, then
/// live frames off the bus, with heartbeats in idle gaps. Runs on its
/// own thread until the follower drops or the daemon shuts down.
fn ship_to_follower(mut stream: Box<dyn ReplStream>, shared: &Arc<Shared>, interval: Duration) {
    shared.followers.fetch_add(1, Ordering::SeqCst);
    if let Err(e) = ship_loop(&mut stream, shared, interval) {
        lisa_telemetry::note("repl", || format!("follower detached: {e}"));
    }
    shared.followers.fetch_sub(1, Ordering::SeqCst);
}

fn ship_frame(stream: &mut Box<dyn ReplStream>, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&frame(payload))?;
    lisa_telemetry::counter_add("repl.frames_shipped", 1);
    lisa_telemetry::counter_add("repl.bytes_shipped", (FRAME_HEADER + payload.len()) as u64);
    Ok(())
}

fn ship_loop(
    stream: &mut Box<dyn ReplStream>,
    shared: &Arc<Shared>,
    interval: Duration,
) -> std::io::Result<()> {
    let bus = &shared.repl;
    let (payloads, mut pos) = bus.sync_payloads();
    for p in &payloads {
        ship_frame(stream, p)?;
    }
    stream.flush()?;
    let mut last_heartbeat = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match bus.poll_after(pos, Duration::from_millis(100)) {
            BusPoll::Frames(frames) => {
                for (seq, payload) in frames {
                    ship_frame(stream, &payload)?;
                    pos = seq;
                }
                stream.flush()?;
            }
            BusPoll::Idle { .. } => {}
            BusPoll::Gap => {
                // This subscriber fell out of bus retention; the only
                // honest recovery is a fresh full sync on the same
                // stream (frame application is idempotent).
                lisa_telemetry::counter_add("repl.resyncs", 1);
                let (payloads, new_pos) = bus.sync_payloads();
                for p in &payloads {
                    ship_frame(stream, p)?;
                }
                stream.flush()?;
                pos = new_pos;
            }
        }
        if last_heartbeat.elapsed() >= interval {
            let (seq, bytes) = bus.position();
            ship_frame(stream, &encode_wire(&Wire::Heartbeat { seq, bytes }))?;
            stream.flush()?;
            lisa_telemetry::counter_add("repl.heartbeats_shipped", 1);
            last_heartbeat = Instant::now();
        }
    }
    Ok(())
}

/// Acknowledge a `follow` handshake and hand the stream to a shipper
/// thread that owns it for the rest of the daemon's life.
fn start_shipper(mut stream: Box<dyn ReplStream>, shared: &Arc<Shared>, config: &ServeConfig) {
    let (seq, _) = shared.repl.position();
    respond(&mut stream, &format!("{{\"status\":\"ok\",\"repl\":{REPL_VERSION},\"seq\":{seq}}}"));
    lisa_telemetry::counter_add("repl.followers_attached", 1);
    let handle = {
        let shared = Arc::clone(shared);
        let interval = config.heartbeat_interval;
        std::thread::spawn(move || ship_to_follower(stream, &shared, interval))
    };
    shared.shippers.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
}

// ---------------------------------------------------------------------------
// Replication: the follower
// ---------------------------------------------------------------------------

/// Live view of a follower's replication progress, shared between the
/// stream client thread and the read-only op handlers. Times are
/// milliseconds since `start` so they fit in atomics.
struct FollowState {
    start: Instant,
    connected: AtomicBool,
    /// Sticky once set: this root has held a complete mirror of the
    /// leader at least once (a `SyncDone` arrived). A disconnect does
    /// not clear it — applied frames are atomic, so the mirror stays a
    /// valid prefix of the leader's history, which is exactly what
    /// promotion needs.
    synced: AtomicBool,
    last_activity_ms: AtomicU64,
    last_heartbeat_ms: AtomicU64,
    leader_seq: AtomicU64,
    leader_bytes: AtomicU64,
    applied_seq: AtomicU64,
    applied_bytes: AtomicU64,
}

impl FollowState {
    fn new() -> FollowState {
        FollowState {
            start: Instant::now(),
            connected: AtomicBool::new(false),
            synced: AtomicBool::new(false),
            last_activity_ms: AtomicU64::new(0),
            last_heartbeat_ms: AtomicU64::new(0),
            leader_seq: AtomicU64::new(0),
            leader_bytes: AtomicU64::new(0),
            applied_seq: AtomicU64::new(0),
            applied_bytes: AtomicU64::new(0),
        }
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn touch_activity(&self) {
        self.last_activity_ms.store(self.now_ms(), Ordering::SeqCst);
    }

    fn touch_heartbeat(&self) {
        let now = self.now_ms();
        let prev = self.last_heartbeat_ms.swap(now, Ordering::SeqCst);
        if prev > 0 {
            lisa_telemetry::histogram_record("repl.heartbeat_gap_ms", now.saturating_sub(prev));
        }
    }

    /// How long since *anything* arrived from the leader — frame,
    /// heartbeat, or sync marker. This, not heartbeat age alone, drives
    /// promotion: a leader busy shipping big frames is clearly alive
    /// even if its heartbeats queue behind them.
    fn activity_age(&self) -> Duration {
        Duration::from_millis(
            self.now_ms().saturating_sub(self.last_activity_ms.load(Ordering::SeqCst)),
        )
    }

    fn heartbeat_age_ms(&self) -> u64 {
        self.now_ms().saturating_sub(self.last_heartbeat_ms.load(Ordering::SeqCst))
    }

    fn lag_frames(&self) -> u64 {
        self.leader_seq
            .load(Ordering::SeqCst)
            .saturating_sub(self.applied_seq.load(Ordering::SeqCst))
    }

    fn lag_bytes(&self) -> u64 {
        self.leader_bytes
            .load(Ordering::SeqCst)
            .saturating_sub(self.applied_bytes.load(Ordering::SeqCst))
    }
}

/// Why a follower's stream session ended.
enum StreamEnd {
    /// Clean EOF or transport error: reconnect with backoff.
    Disconnected,
    /// The stream desynchronized — corrupt frame, undecodable payload,
    /// or a partial frame that stalled. Nothing past that point can be
    /// trusted, so the session drops and the reconnect's full sync
    /// re-establishes a known-good mirror.
    Desync,
}

/// Why follower mode returned control to [`serve`].
enum FollowerExit {
    /// A `shutdown` op drained us; exit cleanly.
    Drained,
    /// The leader went silent past the heartbeat timeout with a complete
    /// mirror on disk: take over as leader.
    Promoted,
}

fn follower_connect(addr: &ReplAddr) -> std::io::Result<Box<dyn ReplStream>> {
    // Short read timeouts keep the client loop responsive to `stop` and
    // let it notice staleness without a dedicated timer thread.
    match addr {
        ReplAddr::Unix(path) => {
            let s = UnixStream::connect(path)?;
            s.set_read_timeout(Some(Duration::from_millis(200)))?;
            Ok(Box::new(s))
        }
        ReplAddr::Tcp(hostport) => {
            let s = TcpStream::connect(hostport.as_str())?;
            s.set_read_timeout(Some(Duration::from_millis(200)))?;
            Ok(Box::new(s))
        }
    }
}

/// The follower's stream client: connect, follow, reconnect with
/// [`RetryPolicy`] backoff — forever, until `stop`. The policy shapes
/// the backoff curve; it is *not* an attempt cap, because the exit from
/// a dead leader is promotion (decided by the supervisor from
/// [`FollowState`] staleness), not giving up.
fn follower_client(
    addr: ReplAddr,
    state: Arc<FollowState>,
    applier: Arc<Applier>,
    retry: RetryPolicy,
    stop: Arc<AtomicBool>,
    faults: Option<Arc<dyn StreamFaults>>,
    stale_after: Duration,
) {
    let mut failures: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        match follower_connect(&addr) {
            Ok(stream) => {
                state.connected.store(true, Ordering::SeqCst);
                lisa_telemetry::counter_add("repl.connects", 1);
                let end =
                    follow_stream(stream, &state, &applier, &stop, faults.as_deref(), stale_after);
                state.connected.store(false, Ordering::SeqCst);
                match end {
                    StreamEnd::Disconnected => {
                        lisa_telemetry::counter_add("repl.disconnects", 1);
                    }
                    StreamEnd::Desync => {
                        lisa_telemetry::counter_add("repl.resyncs_requested", 1);
                    }
                }
                failures = 0;
            }
            Err(_) => failures = failures.saturating_add(1),
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(retry.backoff(failures.clamp(1, retry.max_attempts)));
    }
}

/// Run one connected session: handshake, then decode-and-apply until
/// EOF, corruption, or shutdown.
fn follow_stream(
    mut stream: Box<dyn ReplStream>,
    state: &FollowState,
    applier: &Applier,
    stop: &AtomicBool,
    faults: Option<&dyn StreamFaults>,
    stale_after: Duration,
) -> StreamEnd {
    let hello = format!("{{\"v\":{PROTOCOL_VERSION},\"op\":\"follow\"}}\n");
    if stream.write_all(hello.as_bytes()).is_err() || stream.flush().is_err() {
        return StreamEnd::Disconnected;
    }
    // Read the one-line ack byte-at-a-time: everything after the newline
    // is binary frame data that buffered reading would swallow.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut ack = Vec::new();
    loop {
        let mut b = [0u8; 1];
        match stream.read(&mut b) {
            Ok(0) => return StreamEnd::Disconnected,
            Ok(_) if b[0] == b'\n' => break,
            Ok(_) => {
                ack.push(b[0]);
                if ack.len() > 4096 {
                    return StreamEnd::Desync;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if Instant::now() >= deadline || stop.load(Ordering::SeqCst) {
                    return StreamEnd::Disconnected;
                }
            }
            Err(_) => return StreamEnd::Disconnected,
        }
    }
    let acked = std::str::from_utf8(&ack)
        .ok()
        .and_then(|s| Json::parse(s.trim()).ok())
        .is_some_and(|a| {
            a.str_of("status") == Some("ok") && a.u64_of("repl") == Some(REPL_VERSION)
        });
    if !acked {
        lisa_telemetry::note("repl", || "leader rejected the follow handshake".to_string());
        return StreamEnd::Disconnected;
    }
    state.touch_activity();

    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut drop_heartbeats = false;
    let mut last_progress = Instant::now();
    loop {
        if stop.load(Ordering::SeqCst) {
            return StreamEnd::Disconnected;
        }
        match stream.read(&mut buf) {
            Ok(0) => return StreamEnd::Disconnected,
            Ok(n) => {
                let mut chunk = buf[..n].to_vec();
                let mut tear_after = false;
                if let Some(fault) = faults.and_then(|f| f.on_chunk(n)) {
                    lisa_telemetry::counter_add("repl.stream_faults_injected", 1);
                    match fault {
                        StreamFault::Torn { keep } => {
                            chunk.truncate(keep.min(n));
                            tear_after = true;
                        }
                        StreamFault::Flip { at } => chunk[at % n] ^= 0x20,
                        StreamFault::Short { keep } => chunk.truncate(keep.min(n)),
                        StreamFault::DropHeartbeat => drop_heartbeats = true,
                    }
                }
                dec.feed(&chunk);
                loop {
                    match dec.next_frame() {
                        Ok(Some(payload)) => {
                            last_progress = Instant::now();
                            if let Some(end) =
                                apply_wire(&payload, state, applier, drop_heartbeats)
                            {
                                return end;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            lisa_telemetry::note("repl", || format!("stream corrupt: {e}"));
                            return StreamEnd::Desync;
                        }
                    }
                }
                if tear_after {
                    return StreamEnd::Disconnected;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return StreamEnd::Disconnected,
        }
        // A silently desynchronized stream — a short read the checksum
        // cannot catch until the *next* frame boundary — shows up as a
        // partial frame that never completes while bytes keep arriving.
        // Surface it as desync rather than letting a stale stream
        // masquerade as a dead leader and trigger a false promotion.
        if dec.pending() > 0 && last_progress.elapsed() > stale_after {
            lisa_telemetry::note("repl", || "partial frame stalled; resyncing".to_string());
            return StreamEnd::Desync;
        }
    }
}

/// Apply one decoded payload to the mirror and the progress view.
/// Returns `Some(end)` when the session must end: an event the applier
/// refused (hostile path, I/O failure) means this stream can no longer
/// be trusted to produce a faithful mirror.
fn apply_wire(
    payload: &[u8],
    state: &FollowState,
    applier: &Applier,
    drop_heartbeats: bool,
) -> Option<StreamEnd> {
    match decode_wire(payload) {
        Ok(Wire::Event { seq, event }) => {
            if let Err(e) = applier.apply(&event) {
                lisa_telemetry::counter_add("repl.frames_quarantined", 1);
                lisa_telemetry::note("repl", || format!("refused replicated event: {e}"));
                return Some(StreamEnd::Desync);
            }
            state.applied_seq.store(seq, Ordering::SeqCst);
            state
                .applied_bytes
                .fetch_add((FRAME_HEADER + payload.len()) as u64, Ordering::SeqCst);
            state.leader_seq.fetch_max(seq, Ordering::SeqCst);
            state.touch_activity();
            None
        }
        Ok(Wire::Heartbeat { seq, bytes }) => {
            if drop_heartbeats {
                lisa_telemetry::counter_add("repl.heartbeats_dropped", 1);
                return None;
            }
            state.leader_seq.store(seq, Ordering::SeqCst);
            state.leader_bytes.store(bytes, Ordering::SeqCst);
            state.touch_heartbeat();
            state.touch_activity();
            lisa_telemetry::counter_add("repl.heartbeats_seen", 1);
            None
        }
        Ok(Wire::SyncDone { seq, bytes }) => {
            state.applied_seq.store(seq, Ordering::SeqCst);
            state.applied_bytes.store(bytes, Ordering::SeqCst);
            state.leader_seq.store(seq, Ordering::SeqCst);
            state.leader_bytes.store(bytes, Ordering::SeqCst);
            state.synced.store(true, Ordering::SeqCst);
            state.touch_heartbeat();
            state.touch_activity();
            lisa_telemetry::counter_add("repl.syncs_completed", 1);
            None
        }
        Err(e) => {
            lisa_telemetry::counter_add("repl.frames_rejected", 1);
            lisa_telemetry::note("repl", || format!("undecodable frame: {e}"));
            Some(StreamEnd::Desync)
        }
    }
}

/// Run follower mode on the already-bound unix socket: mirror the
/// leader into the state root, answer read-only ops, and decide
/// promotion. Returns whether we drained or should take over.
fn run_follower(
    listener: &UnixListener,
    config: &ServeConfig,
    addr: ReplAddr,
    metrics_journal: &mut Option<Journal>,
) -> FollowerExit {
    let state = Arc::new(FollowState::new());
    let applier = match Applier::new(&config.state_root) {
        Ok(a) => Arc::new(a),
        Err(e) => {
            lisa_telemetry::note("repl", || format!("follower state root unusable: {e}"));
            return FollowerExit::Drained;
        }
    };
    let stop = Arc::new(AtomicBool::new(false));
    let client = {
        let state = Arc::clone(&state);
        let applier = Arc::clone(&applier);
        let stop = Arc::clone(&stop);
        let retry = config.retry;
        let faults = config.stream_faults.clone();
        let stale_after = config.heartbeat_timeout;
        std::thread::spawn(move || {
            follower_client(addr, state, applier, retry, stop, faults, stale_after)
        })
    };
    let mut last_snapshot = Instant::now();
    let mut drained = false;
    let exit = loop {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    handle_follower_connection(stream, config, &state, &mut drained)
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => {
                    lisa_telemetry::note("serve", || format!("accept failed: {e}"));
                    break;
                }
            }
        }
        if drained {
            break FollowerExit::Drained;
        }
        if state.synced.load(Ordering::SeqCst) && state.activity_age() > config.heartbeat_timeout
        {
            break FollowerExit::Promoted;
        }
        if last_snapshot.elapsed() >= METRICS_SNAPSHOT_INTERVAL {
            // Record replication gauges alongside the regular snapshot
            // so lag and heartbeat age are visible post-mortem in the
            // metrics journal, not just in live `stats` replies.
            lisa_telemetry::histogram_record("repl.heartbeat_age_ms", state.heartbeat_age_ms());
            lisa_telemetry::histogram_record("repl.lag_frames", state.lag_frames());
            snapshot_metrics(metrics_journal);
            last_snapshot = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    stop.store(true, Ordering::SeqCst);
    let _ = client.join();
    exit
}

/// One NDJSON request in follower mode: read-only ops plus `shutdown`.
/// Writes are refused with a structured `read-only` reply (Degradation:
/// the follower keeps serving what it can, never what it can't).
fn handle_follower_connection(
    mut stream: UnixStream,
    config: &ServeConfig,
    state: &Arc<FollowState>,
    drained: &mut bool,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut line = String::new();
    if BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    })
    .read_line(&mut line)
    .is_err()
    {
        respond(&mut stream, &error_response("", "bad-request", "could not read request line"));
        return;
    }
    let request = match Json::parse(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            respond(&mut stream, &error_response("", "bad-request", &format!("bad JSON: {e}")));
            return;
        }
    };
    if let Err(e) = version_ok(&request) {
        respond(&mut stream, &error_response("", "bad-request", &e));
        return;
    }
    match request.str_of("op").unwrap_or("gate") {
        "ping" => respond(&mut stream, "{\"status\":\"ok\"}"),
        "stats" => respond(&mut stream, &follower_stats_response(state)),
        "verdict" => {
            let id = request.str_of("job_id").unwrap_or("");
            respond(&mut stream, &verdict_response(&config.state_root, id));
        }
        "shutdown" => {
            *drained = true;
            respond(&mut stream, "{\"status\":\"draining\"}");
        }
        "gate" => respond(
            &mut stream,
            &error_response(
                request.str_of("job_id").unwrap_or(""),
                "read-only",
                "follower is read-only while its leader is alive; submit to the leader",
            ),
        ),
        other => respond(
            &mut stream,
            &error_response("", "bad-request", &format!("unknown op {other:?}")),
        ),
    }
}

/// The follower's `stats` reply: role, replication progress, and the
/// same cumulative counters/timings a leader reports.
fn follower_stats_response(state: &FollowState) -> String {
    format!(
        "{{\"status\":\"ok\",\"role\":\"follower\",\"connected\":{},\"synced\":{},\"leader_seq\":{},\"applied_seq\":{},\"lag_frames\":{},\"lag_bytes\":{},\"heartbeat_age_ms\":{},\"counters\":{},\"timings\":{}}}",
        state.connected.load(Ordering::SeqCst),
        state.synced.load(Ordering::SeqCst),
        state.leader_seq.load(Ordering::SeqCst),
        state.applied_seq.load(Ordering::SeqCst),
        state.lag_frames(),
        state.lag_bytes(),
        state.heartbeat_age_ms(),
        counters_json(),
        timings_json(),
    )
}

/// Answer a `verdict` query purely from on-disk run state, without
/// opening a [`RunStore`] — recovery repairs (truncation, quarantine)
/// would *mutate* the journals this node is busy mirroring. Corrupt or
/// torn tails simply aren't counted; the leader's copy is authoritative
/// until promotion.
fn verdict_response(state_root: &Path, job_id: &str) -> String {
    if job_id.is_empty() {
        return error_response("", "bad-request", "verdict needs `job_id`");
    }
    let dir = state_root.join(sanitize(job_id));
    if !dir.is_dir() {
        return error_response(job_id, "not-found", "no durable state for this job id");
    }
    let mut state = match read_atomic(&dir.join(RunStore::SNAPSHOT)) {
        Some(bytes) => RunState::from_snapshot(&bytes),
        None => RunState::default(),
    };
    if let Ok(bytes) = std::fs::read(dir.join(RunStore::JOURNAL)) {
        for rec in &scan(&bytes).records {
            if let Ok(event) = GateEvent::decode(rec) {
                state.apply(&event);
            }
        }
    }
    // A compact, order-sensitive digest of the settled verdicts lets a
    // caller compare two nodes' views without shipping every report.
    let mut digest = String::new();
    for o in &state.finished {
        digest.push_str(&format!("rule {}\n{}\n", o.rule_id, o.fingerprint));
    }
    if let Some(d) = &state.decision {
        digest.push_str(&format!("decision {d}\n"));
    }
    format!(
        "{{\"status\":\"ok\",\"job_id\":\"{}\",\"decision\":\"{}\",\"started\":{},\"finished\":{},\"verdicts_fnv\":\"{:016x}\"}}",
        escape(job_id),
        escape(state.decision.as_deref().unwrap_or("in-progress")),
        state.started.len(),
        state.finished.len(),
        fnv1a(digest.as_bytes()),
    )
}

/// One connection on the TCP replication listener. Only `ping` and
/// `follow` are spoken here — gate submissions stay on the unix socket,
/// so exposing the replication port never exposes the write path.
fn handle_repl_tcp(mut stream: TcpStream, config: &ServeConfig, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut line = String::new();
    if BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    })
    .read_line(&mut line)
    .is_err()
    {
        respond(&mut stream, &error_response("", "bad-request", "could not read request line"));
        return;
    }
    let request = match Json::parse(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            respond(&mut stream, &error_response("", "bad-request", &format!("bad JSON: {e}")));
            return;
        }
    };
    if let Err(e) = version_ok(&request) {
        respond(&mut stream, &error_response("", "bad-request", &e));
        return;
    }
    match request.str_of("op").unwrap_or("") {
        "ping" => respond(&mut stream, "{\"status\":\"ok\"}"),
        "follow" => {
            // A follower that stops reading must not wedge its shipper
            // (and with it, daemon shutdown) forever.
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            start_shipper(Box::new(stream), shared, config);
        }
        other => respond(
            &mut stream,
            &error_response(
                "",
                "bad-request",
                &format!("unsupported op {other:?} on the replication listener"),
            ),
        ),
    }
}

/// How often the daemon journals a metrics snapshot while running.
const METRICS_SNAPSHOT_INTERVAL: Duration = Duration::from_secs(2);

/// Open the daemon's persisted-metrics journal under the state root and
/// restore the last snapshot into the live telemetry registry, so
/// cumulative `stats` counters and timings survive a restart. The journal
/// holds one snapshot record, rewritten in place (reset + append); a
/// crash between the two loses at most one snapshot interval.
fn open_metrics_journal(state_root: &Path) -> Option<Journal> {
    let path = state_root.join("metrics.journal");
    match Journal::open(&path, None) {
        Ok((journal, report)) => {
            if let Some(last) = report.records.last() {
                restore_metrics(last);
            }
            Some(journal)
        }
        Err(e) => {
            lisa_telemetry::note("serve", || format!("metrics journal unavailable: {e}"));
            None
        }
    }
}

/// Replay one persisted metrics snapshot (the `metrics_json` format) into
/// the live registry. Malformed snapshots are ignored — restoring metrics
/// is never worth failing the daemon over.
fn restore_metrics(bytes: &[u8]) {
    let Ok(text) = std::str::from_utf8(bytes) else { return };
    let Ok(snap) = Json::parse(text) else { return };
    if let Some(Json::Obj(counters)) = snap.get("counters") {
        for (name, value) in counters {
            if let Some(v) = value.as_u64() {
                lisa_telemetry::counter_add(name, v);
            }
        }
    }
    if let Some(Json::Obj(histograms)) = snap.get("histograms") {
        for (name, h) in histograms {
            let Some(Json::Arr(buckets)) = h.get("buckets") else { continue };
            let mut restored = lisa_telemetry::Histogram::new();
            for (i, b) in buckets.iter().take(restored.buckets.len()).enumerate() {
                restored.buckets[i] = b.as_u64().unwrap_or(0);
            }
            restored.count = h.u64_of("count").unwrap_or(0);
            restored.sum = h.u64_of("sum").unwrap_or(0);
            lisa_telemetry::histogram_merge(name, &restored);
        }
    }
}

/// Journal the current metrics snapshot, replacing the previous one. On
/// any I/O failure the journal is dropped for the rest of the run —
/// best-effort persistence must not wedge the supervisor.
fn snapshot_metrics(journal: &mut Option<Journal>) {
    let Some(j) = journal else { return };
    let payload = lisa_telemetry::metrics_json();
    if j.reset().is_err() || j.append(payload.as_bytes()).is_err() {
        lisa_telemetry::note("serve", || "metrics snapshot failed; persistence disabled".into());
        *journal = None;
    }
}

/// Run the daemon until a `shutdown` request drains it. Never panics on
/// malformed input; every connection gets some reply.
pub fn serve(config: &ServeConfig) -> Result<ServeStats, String> {
    if let Some(parent) = config.socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
        }
    }
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)
        .map_err(|e| format!("bind {}: {e}", config.socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    std::fs::create_dir_all(&config.state_root)
        .map_err(|e| format!("mkdir {}: {e}", config.state_root.display()))?;

    // The daemon always collects metrics: the `stats` op and the
    // journaled snapshots depend on them. Spans stay off unless the
    // caller opted into them — an unbounded span registry would leak in
    // a long-running process.
    if lisa_telemetry::config() == lisa_telemetry::TelemetryConfig::Off {
        lisa_telemetry::init(lisa_telemetry::TelemetryConfig::MetricsOnly);
    }
    let mut metrics_journal = open_metrics_journal(&config.state_root);
    let mut last_snapshot = Instant::now();
    let mut stats = ServeStats::default();

    // Follower mode: mirror the leader until a shutdown drains us or
    // the leader goes silent. Promotion falls through into the leader
    // path below on the already-bound socket, so the address clients
    // know keeps working across the role change.
    if let Some(spec) = &config.follow {
        match run_follower(&listener, config, parse_repl_addr(spec), &mut metrics_journal) {
            FollowerExit::Drained => {
                snapshot_metrics(&mut metrics_journal);
                let _ = std::fs::remove_file(&config.socket);
                return Ok(stats);
            }
            FollowerExit::Promoted => {
                stats.promotions = 1;
                lisa_telemetry::counter_add("repl.promotions", 1);
                lisa_telemetry::event(
                    "repl.promoted",
                    "leader silent past heartbeat timeout; follower taking over",
                );
            }
        }
    }

    let repl_listener = match &config.repl_listen {
        Some(addr) => {
            let l = TcpListener::bind(addr.as_str()).map_err(|e| format!("bind {addr}: {e}"))?;
            l.set_nonblocking(true).map_err(|e| format!("nonblocking repl listener: {e}"))?;
            Some(l)
        }
        None => None,
    };

    // The TCP gate front end: nonblocking accept plus poll(2)-driven
    // readiness over parked connections, all on this thread.
    let mut tcp_gate = match &config.listen {
        Some(addr) => {
            // Thousands of parked sockets need headroom past the
            // default 1024 soft fd limit.
            raise_fd_limit(config.max_conns as u64 + 512);
            let gate = TcpGate::bind(addr, config.max_conns)?;
            lisa_telemetry::note("serve", || format!("gate listening on tcp {addr}"));
            Some(gate)
        }
        None => None,
    };

    // 0 = auto-size the pool to the machine, like the gate scheduler.
    let workers = crate::sched::resolve_workers(config.workers);
    lisa_telemetry::note("serve", || {
        format!("worker pool width {workers} (configured {})", config.workers)
    });
    let mut tenant_specs = config.tenants.clone();
    if !tenant_specs.iter().any(|s| s.name == "default") {
        tenant_specs.push(TenantSpec {
            name: "default".to_string(),
            weight: 1,
            job_timeout: None,
        });
    }
    let queues = FairQueues::new(
        &tenant_specs,
        config.queue_cap,
        config.tenant_cap,
        config.job_timeout,
        workers,
    );
    let shared = Arc::new(Shared {
        queue: Mutex::new(QueueState { queues, busy_dirs: HashSet::new() }),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        jobs_done: AtomicU64::new(0),
        state_root: config.state_root.clone(),
        worker_slots: Mutex::new(Vec::new()),
        repl: ReplBus::new(&config.state_root),
        followers: AtomicU64::new(0),
        shippers: Mutex::new(Vec::new()),
        runtimes: Mutex::new(HashMap::new()),
        listen_conns: AtomicU64::new(0),
    });
    let mut pool: Vec<Worker> = (0..workers).map(|i| spawn_worker(&shared, i)).collect();
    let mut poll = PollSet::new();

    let mut pending_retries: Vec<(Job, Instant)> = Vec::new();
    let mut next_job = 0u64;
    let mut draining = false;

    loop {
        // 0. One poll(2) over everything: the unix listener, the repl
        // listener, and every parked TCP connection. The 10ms cap keeps
        // supervision (reaping, retries, snapshots) ticking with no I/O;
        // readiness wakes the loop immediately.
        poll.clear();
        poll.push(listener.as_raw_fd());
        if let Some(l) = &repl_listener {
            poll.push(l.as_raw_fd());
        }
        if let Some(gate) = &mut tcp_gate {
            gate.register(&mut poll);
        }
        poll.wait(Duration::from_millis(10));

        // 1. Accept one round of connections.
        loop {
            match listener.accept() {
                Ok((stream, _)) => handle_connection(
                    stream,
                    config,
                    &shared,
                    &mut stats,
                    &mut next_job,
                    &mut draining,
                ),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => {
                    lisa_telemetry::note("serve", || format!("accept failed: {e}"));
                    break;
                }
            }
        }
        if let Some(l) = &repl_listener {
            loop {
                match l.accept() {
                    Ok((stream, _)) => handle_repl_tcp(stream, config, &shared),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => {
                        lisa_telemetry::note("serve", || format!("repl accept failed: {e}"));
                        break;
                    }
                }
            }
        }

        // 1b. Pump the TCP gate: accept new connections, advance every
        // readable parked one, dispatch each completed request line.
        if let Some(gate) = &mut tcp_gate {
            let pumped = gate.pump(&poll);
            for s in pumped.over_capacity {
                let _ = s.set_nonblocking(false);
                let _ = s.set_write_timeout(Some(Duration::from_secs(5)));
                stats.rejected_overload += 1;
                lisa_telemetry::counter_add("serve.shed", 1);
                Responder::Tcp(s).send(&shed_response("", "", 1000, "connection limit reached"));
            }
            for s in pumped.over_length {
                let _ = s.set_nonblocking(false);
                let _ = s.set_write_timeout(Some(Duration::from_secs(5)));
                Responder::Tcp(s).send(&error_response(
                    "",
                    "bad-request",
                    "request line exceeds the 64KiB bound",
                ));
            }
            if pumped.dropped > 0 {
                lisa_telemetry::counter_add("serve.conns_dropped", pumped.dropped as u64);
            }
            for (s, line) in pumped.requests {
                dispatch_request(
                    &line,
                    Responder::Tcp(s),
                    config,
                    &shared,
                    &mut stats,
                    &mut next_job,
                    &mut draining,
                );
            }
            shared.listen_conns.store(gate.open_conns() as u64, Ordering::Relaxed);
        }

        // 2. Reap panicked workers, abandon stalled ones; recover jobs.
        // Stall detection honors per-tenant job timeouts; the roster is
        // snapshotted first so the queue lock is never taken while a
        // slot lock is held (lock order stays one-way).
        let tenant_timeouts = shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .queues
            .timeouts();
        for (widx, worker) in pool.iter_mut().enumerate() {
            let panicked = worker.handle.as_ref().is_some_and(|h| h.is_finished())
                && !shared.shutdown.load(Ordering::SeqCst);
            let stalled = worker
                .slot
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .as_ref()
                .is_some_and(|(job, beat)| {
                    let limit = tenant_timeouts
                        .get(&job.tenant)
                        .copied()
                        .unwrap_or(config.job_timeout);
                    beat.elapsed() > limit
                });
            if !panicked && !stalled {
                continue;
            }
            // Abandon first: a live thread stops at its next cancellation
            // point (rule boundary) and never pulls another job.
            worker.cancel.store(true, Ordering::SeqCst);
            let recovered = worker.slot.lock().unwrap_or_else(|p| p.into_inner()).take();
            if let Some((mut job, _)) = recovered {
                job.attempts += 1;
                // Spend from the tenant's retry budget (Retry tactic):
                // a tenant whose jobs keep failing burns its own budget
                // and degrades alone, nobody else's jobs pay for it.
                let budget_ok = {
                    let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
                    q.queues.recovered(&job.tenant);
                    job.attempts < config.max_attempts
                        && q.queues.try_retry(&job.tenant, Instant::now())
                };
                if job.attempts >= config.max_attempts {
                    let why = if stalled { "stalled" } else { "worker panicked" };
                    job.stream.send(&error_response(
                        &job.id,
                        "dead-letter",
                        &format!("{why}; gave up after {} attempt(s)", job.attempts),
                    ));
                    stats.dead_letters += 1;
                    shared
                        .queue
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .queues
                        .record_dead_letter(&job.tenant);
                } else if !budget_ok {
                    // Budget exhausted: Degradation mode for this tenant
                    // — dead-letter now, fast-fail its submissions for
                    // the cooldown instead of feeding workers jobs that
                    // keep failing.
                    job.stream.send(&error_response(
                        &job.id,
                        "dead-letter",
                        "tenant retry budget exhausted; tenant degraded",
                    ));
                    stats.dead_letters += 1;
                    lisa_telemetry::counter_add("serve.tenant_degraded", 1);
                    shared
                        .queue
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .queues
                        .record_dead_letter(&job.tenant);
                } else {
                    let due = Instant::now() + config.retry.backoff(job.attempts);
                    pending_retries.push((job, due));
                    stats.retries += 1;
                }
            }
            if panicked {
                // Collect the dead thread; a panic result is expected.
                if let Some(h) = worker.handle.take() {
                    let _ = h.join();
                }
            }
            // The replacement gets a FRESH slot and cancel flag. An
            // abandoned (stalled, unkillable) thread still holds the old
            // slot Arc, so its eventual `take()` sees only `None` — it
            // can never grab a job the replacement parked, nor answer one
            // job's client with another job's verdict.
            *worker = spawn_worker(&shared, widx);
            stats.respawned_workers += 1;
            lisa_telemetry::counter_add("serve.respawned_workers", 1);
            lisa_telemetry::event(
                "serve.worker_respawned",
                format!(
                    "worker {widx} {}",
                    if stalled { "stalled; abandoned" } else { "panicked; reaped" }
                ),
            );
        }

        // 3. Requeue retries that are due.
        let now = Instant::now();
        let mut i = 0;
        while i < pending_retries.len() {
            if pending_retries[i].1 <= now {
                let (job, _) = pending_retries.swap_remove(i);
                let tenant = job.tenant.clone();
                shared
                    .queue
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .queues
                    .requeue_front(&tenant, job);
                shared.available.notify_one();
            } else {
                i += 1;
            }
        }

        // 4. Periodically journal a metrics snapshot so cumulative stats
        // survive a daemon restart.
        if last_snapshot.elapsed() >= METRICS_SNAPSHOT_INTERVAL {
            snapshot_metrics(&mut metrics_journal);
            last_snapshot = Instant::now();
        }

        // 5. Drain: queue empty, no in-flight jobs, no pending retries.
        if draining {
            let queue_empty = shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .queues
                .queued_total()
                == 0;
            let idle = pool
                .iter()
                .all(|w| w.slot.lock().unwrap_or_else(|p| p.into_inner()).is_none());
            if queue_empty && idle && pending_retries.is_empty() {
                break;
            }
        }
        // No sleep here: step 0's poll(2) is the loop's wait.
    }

    shared.shutdown.store(true, Ordering::SeqCst);
    shared.available.notify_all();
    for worker in pool.iter_mut() {
        if let Some(h) = worker.handle.take() {
            let _ = h.join();
        }
    }
    for shipper in shared.shippers.lock().unwrap_or_else(|p| p.into_inner()).drain(..) {
        let _ = shipper.join();
    }
    stats.jobs_done = shared.jobs_done.load(Ordering::Relaxed);
    snapshot_metrics(&mut metrics_journal);
    let _ = std::fs::remove_file(&config.socket);
    Ok(stats)
}

fn spawn_worker(shared: &Arc<Shared>, index: usize) -> Worker {
    let slot: Slot = Arc::new(Mutex::new(None));
    {
        let mut slots = shared.worker_slots.lock().unwrap_or_else(|p| p.into_inner());
        if index >= slots.len() {
            slots.resize_with(index + 1, || Arc::new(Mutex::new(None)));
        }
        slots[index] = Arc::clone(&slot);
    }
    let cancel = Arc::new(AtomicBool::new(false));
    let handle = {
        let shared = Arc::clone(shared);
        let slot = Arc::clone(&slot);
        let cancel = Arc::clone(&cancel);
        std::thread::spawn(move || worker_loop(shared, slot, cancel))
    };
    Worker { handle: Some(handle), slot, cancel }
}

/// Timing histograms surfaced (as p50/p95 summaries) in the `stats`
/// reply. Everything else is still in the full `counters` object.
const STATS_TIMINGS: [&str; 8] = [
    "serve.job_us",
    "pipeline.rule_us",
    "stage.callgraph_us",
    "stage.tree_us",
    "stage.select_us",
    "stage.concolic_us",
    "stage.judge_us",
    "smt.query_us",
];

/// The cumulative telemetry counters as one JSON object (shared by the
/// leader and follower `stats` replies).
fn counters_json() -> String {
    let mut counters = String::from("{");
    for (i, (name, value)) in lisa_telemetry::counters_snapshot().iter().enumerate() {
        if i > 0 {
            counters.push(',');
        }
        counters.push_str(&format!("\"{}\":{value}", escape(name)));
    }
    counters.push('}');
    counters
}

/// The per-stage timing summaries as one JSON object.
fn timings_json() -> String {
    let mut timings = String::from("{");
    let hists = lisa_telemetry::histograms_snapshot();
    let mut first = true;
    for name in STATS_TIMINGS {
        let Some(h) = hists.get(name) else { continue };
        if !first {
            timings.push(',');
        }
        first = false;
        timings.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            h.count,
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
        ));
    }
    timings.push('}');
    timings
}

/// Per-tenant queue, fairness, tactic, and latency summaries for the
/// `stats` reply: the operator's view of who is queued, who is shedding,
/// who is degraded, and each tenant's p50/p95/p99 job latency.
fn tenants_json(shared: &Arc<Shared>) -> String {
    let hists = lisa_telemetry::histograms_snapshot();
    let q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
    let now = Instant::now();
    let mut out = String::from("{");
    let mut first = true;
    for (name, t) in q.queues.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let (jobs, p50, p95, p99) = match hists.get(&format!("serve.job_us.{name}")) {
            Some(h) => {
                (h.count, h.percentile(0.50), h.percentile(0.95), h.percentile(0.99))
            }
            None => (0, 0, 0, 0),
        };
        out.push_str(&format!(
            "\"{}\":{{\"weight\":{},\"queued\":{},\"active\":{},\"done\":{},\"shed\":{},\"retries\":{},\"dead_letters\":{},\"retry_budget\":{},\"degraded\":{},\"jobs\":{jobs},\"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99}}}",
            escape(name),
            t.weight,
            t.queued(),
            t.active,
            t.done,
            t.shed,
            t.retries,
            t.dead_letters,
            t.retry_budget,
            t.degraded(now),
        ));
    }
    out.push('}');
    out
}

/// Build the one-line `stats` reply: role, queue depth, per-worker
/// states, per-tenant summaries, replication position and attached
/// followers, cumulative telemetry counters (restored across restarts
/// via the metrics journal), and per-stage timing summaries.
fn stats_response(shared: &Arc<Shared>, stats: &ServeStats) -> String {
    let queued = shared.queue.lock().unwrap_or_else(|p| p.into_inner()).queues.queued_total();
    let resolved_workers;
    let mut workers = String::from("[");
    {
        let slots = shared.worker_slots.lock().unwrap_or_else(|p| p.into_inner());
        resolved_workers = slots.len();
        for (i, slot) in slots.iter().enumerate() {
            if i > 0 {
                workers.push(',');
            }
            match slot.lock().unwrap_or_else(|p| p.into_inner()).as_ref() {
                Some((job, beat)) => workers.push_str(&format!(
                    "{{\"worker\":{i},\"state\":\"busy\",\"job_id\":\"{}\",\"attempt\":{},\"since_heartbeat_ms\":{}}}",
                    escape(&job.id),
                    job.attempts,
                    beat.elapsed().as_millis(),
                )),
                None => workers.push_str(&format!("{{\"worker\":{i},\"state\":\"idle\"}}")),
            }
        }
    }
    workers.push(']');
    let (repl_seq, repl_bytes) = shared.repl.position();
    format!(
        "{{\"status\":\"ok\",\"role\":\"leader\",\"jobs_done\":{},\"retries\":{},\"dead_letters\":{},\"respawned_workers\":{},\"rejected_overload\":{},\"promotions\":{},\"followers\":{},\"repl_seq\":{repl_seq},\"repl_bytes\":{repl_bytes},\"queued\":{queued},\"listen_conns\":{},\"tenants\":{},\"resolved_workers\":{resolved_workers},\"workers\":{workers},\"counters\":{},\"timings\":{}}}",
        shared.jobs_done.load(Ordering::Relaxed),
        stats.retries,
        stats.dead_letters,
        stats.respawned_workers,
        stats.rejected_overload,
        stats.promotions,
        shared.followers.load(Ordering::SeqCst),
        shared.listen_conns.load(Ordering::Relaxed),
        tenants_json(shared),
        counters_json(),
        timings_json(),
    )
}

/// Protocol versioning, shared by every listener: absent `v` means v1
/// (pre-versioning clients); a non-numeric or mismatched `v` is a
/// structured bad-request rather than a silent assumption.
fn version_ok(request: &Json) -> Result<(), String> {
    if let Some(v) = request.u64_of("v") {
        if v != PROTOCOL_VERSION {
            return Err(format!(
                "unsupported protocol version {v} (daemon speaks v{PROTOCOL_VERSION})"
            ));
        }
    } else if request.get("v").is_some() {
        return Err("field `v` must be a number".to_string());
    }
    Ok(())
}

/// Read one NDJSON request from a fresh unix-socket connection and
/// dispatch it.
fn handle_connection(
    mut stream: UnixStream,
    config: &ServeConfig,
    shared: &Arc<Shared>,
    stats: &mut ServeStats,
    next_job: &mut u64,
    draining: &mut bool,
) {
    // Requests are one short line; a slow or silent client gets cut off
    // rather than wedging the supervisor.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut line = String::new();
    if BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    })
    .read_line(&mut line)
    .is_err()
    {
        respond(&mut stream, &error_response("", "bad-request", "could not read request line"));
        return;
    }
    dispatch_request(&line, Responder::Unix(stream), config, shared, stats, next_job, draining);
}

/// Dispatch one complete NDJSON request line. Shared by the unix-socket
/// accept path and the TCP readiness loop: both transports speak exactly
/// the same protocol, so per-job replies are byte-identical across them.
fn dispatch_request(
    line: &str,
    mut stream: Responder,
    config: &ServeConfig,
    shared: &Arc<Shared>,
    stats: &mut ServeStats,
    next_job: &mut u64,
    draining: &mut bool,
) {
    let request = match Json::parse(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            stream.send(&error_response("", "bad-request", &format!("bad JSON: {e}")));
            return;
        }
    };
    if let Err(e) = version_ok(&request) {
        stream.send(&error_response("", "bad-request", &e));
        return;
    }
    match request.str_of("op").unwrap_or("gate") {
        "ping" => {
            stream.send("{\"status\":\"ok\"}");
        }
        "stats" => {
            stream.send(&stats_response(shared, stats));
        }
        "verdict" => {
            let id = request.str_of("job_id").unwrap_or("");
            if id.len() > MAX_JOB_ID_LEN {
                stream.send(&job_id_too_long(id.len()));
                return;
            }
            stream.send(&verdict_response(&shared.state_root, id));
        }
        "follow" => match stream {
            Responder::Unix(s) => {
                // A follower that stops reading must not wedge its
                // shipper (and with it, daemon shutdown) forever.
                let _ = s.set_write_timeout(Some(Duration::from_secs(5)));
                start_shipper(Box::new(s), shared, config);
            }
            mut tcp => {
                // The gate listener never exposes the replication
                // stream; that stays on --repl-listen.
                tcp.send(&error_response(
                    "",
                    "bad-request",
                    "`follow` is not served on the gate listener; use --repl-listen",
                ));
            }
        },
        "shutdown" => {
            *draining = true;
            stream.send("{\"status\":\"draining\"}");
        }
        "gate" => {
            if *draining {
                stream.send(&error_response("", "shutting-down", "daemon is draining"));
                return;
            }
            let tenant = request.str_of("tenant").unwrap_or("default");
            if !valid_tenant(tenant) {
                stream.send(&error_response(
                    "",
                    "bad-request",
                    "tenant must be 1..=32 chars of [A-Za-z0-9_-]",
                ));
                return;
            }
            let (Some(system), Some(rules)) =
                (request.str_of("system"), request.str_of("rules"))
            else {
                stream.send(&error_response(
                    "",
                    "bad-request",
                    "gate needs `system` and `rules`",
                ));
                return;
            };
            let fail_mode = match request.str_of("fail_mode").unwrap_or("closed").parse::<FailMode>() {
                Ok(m) => m,
                Err(e) => {
                    stream.send(&error_response("", "bad-request", &e));
                    return;
                }
            };
            if let Some(id) = request.str_of("job_id") {
                if id.len() > MAX_JOB_ID_LEN {
                    stream.send(&job_id_too_long(id.len()));
                    return;
                }
            }
            *next_job += 1;
            let id = request
                .str_of("job_id")
                .map(str::to_string)
                .unwrap_or_else(|| format!("job-{next_job}"));
            // From here the stream travels with the job; on admission
            // the reply comes when the job settles, on shed it comes
            // right back with the retry hint.
            let job = Job {
                id,
                tenant: tenant.to_string(),
                system: system.to_string(),
                rules: rules.to_string(),
                fail_mode,
                chaos: request.str_of("chaos").map(str::to_string),
                attempts: 0,
                stream,
            };
            let admitted = shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .queues
                .admit(tenant, job, Instant::now());
            match admitted {
                Admitted::Queued => shared.available.notify_one(),
                Admitted::Shed { mut job, retry_after_ms, reason } => {
                    stats.rejected_overload += 1;
                    lisa_telemetry::counter_add("serve.shed", 1);
                    job.stream.send(&shed_response(
                        &job.id,
                        tenant,
                        retry_after_ms,
                        reason.as_str(),
                    ));
                }
                Admitted::Refused { mut job, error } => {
                    job.stream.send(&error_response(&job.id, "bad-request", &error));
                }
            }
        }
        other => {
            stream.send(&error_response("", "bad-request", &format!("unknown op {other:?}")));
        }
    }
}

/// Client side over TCP: send one NDJSON request to a `--listen` daemon
/// and wait for the one-line reply. The wire protocol (and every reply
/// byte) is identical to the unix-socket path.
pub fn request_tcp(addr: &str, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out)?;
    Ok(out.trim_end().to_string())
}

/// Client side: send one NDJSON request and wait for the one-line reply.
pub fn request(socket: &Path, line: &str) -> std::io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    reader.read_line(&mut out)?;
    Ok(out.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_analysis::TargetSpec;

    fn version(guarded: bool) -> SystemVersion {
        let guard = if guarded { "session == null || session.closing" } else { "session == null" };
        let src = format!(
            "struct Session {{ id: int, closing: bool }}\n\
             global sessions: map<int, Session>;\n\
             fn create_ephemeral(s: Session, path: str) {{}}\n\
             fn prep_create(sid: int, path: str) {{\n\
                 let session: Session = sessions.get(sid);\n\
                 if ({guard}) {{ return; }}\n\
                 create_ephemeral(session, path);\n\
             }}\n\
             fn test_prep_live() {{\n\
                 sessions.put(1, new Session {{ id: 1 }});\n\
                 prep_create(1, \"/a\");\n\
             }}"
        );
        let p = Program::parse_single("zk", &src).expect("parse");
        let tests = discover_tests(&p, "test_");
        SystemVersion::new(if guarded { "fixed" } else { "regressed" }, p, tests)
    }

    fn registry() -> RuleRegistry {
        let mut reg = RuleRegistry::new();
        for (id, cond) in
            [("ZK-1208-r0", "s != null && s.closing == false"), ("EXTRA-r0", "s != null")]
        {
            reg.register(
                SemanticRule::new(
                    id,
                    id,
                    TargetSpec::Call { callee: "create_ephemeral".into() },
                    cond,
                )
                .expect("rule"),
            );
        }
        reg
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lisa-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn config() -> PipelineConfig {
        PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
    }

    #[test]
    fn run_key_separates_versions_and_rule_sets() {
        let reg = registry();
        let fixed = run_key(&version(true), reg.rules());
        let regressed = run_key(&version(false), reg.rules());
        assert_ne!(fixed, regressed);
        let mut fewer = RuleRegistry::new();
        fewer.register(reg.rules()[0].clone());
        assert_ne!(fixed, run_key(&version(true), fewer.rules()));
        // Deterministic across calls.
        assert_eq!(fixed, run_key(&version(true), reg.rules()));
    }

    #[test]
    fn durable_run_resumes_and_reuses_verdicts() {
        let dir = tmpdir("resume");
        let reg = registry();
        let v = version(false);
        let gate = GateOptions::default();
        let durable = DurableOptions { state_dir: dir.clone(), ..DurableOptions::default() };
        let full = gate_durable(&reg, &v, &config(), &gate, &durable).expect("run");
        assert_eq!(full.decision, GateDecision::Block);
        assert_eq!(full.fresh, 2);
        assert_eq!(full.reused, 0);
        // Second run over the same state: everything is reused.
        let resumed = gate_durable(&reg, &v, &config(), &gate, &durable).expect("rerun");
        assert_eq!(resumed.reused, 2);
        assert_eq!(resumed.fresh, 0);
        assert_eq!(resumed.verdicts_text(), full.verdicts_text());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_inputs_do_not_reuse_stale_verdicts() {
        let dir = tmpdir("stale");
        let reg = registry();
        let gate = GateOptions::default();
        let durable = DurableOptions { state_dir: dir.clone(), ..DurableOptions::default() };
        let blocked =
            gate_durable(&reg, &version(false), &config(), &gate, &durable).expect("run");
        assert_eq!(blocked.decision, GateDecision::Block);
        // Same state dir, fixed version: the journal is stale; no verdict
        // may leak across the run-key boundary.
        let passed =
            gate_durable(&reg, &version(true), &config(), &gate, &durable).expect("rerun");
        assert_eq!(passed.decision, GateDecision::Pass);
        assert_eq!(passed.reused, 0);
        assert_eq!(passed.fresh, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointing_preserves_the_verdict_artifact() {
        let dir_a = tmpdir("ckpt-a");
        let dir_b = tmpdir("ckpt-b");
        let reg = registry();
        let v = version(false);
        let gate = GateOptions::default();
        let plain = DurableOptions { state_dir: dir_a.clone(), ..DurableOptions::default() };
        let ckpt = DurableOptions {
            state_dir: dir_b.clone(),
            checkpoint_every: 1,
            ..DurableOptions::default()
        };
        let a = gate_durable(&reg, &v, &config(), &gate, &plain).expect("plain");
        let b = gate_durable(&reg, &v, &config(), &gate, &ckpt).expect("checkpointed");
        assert_eq!(a.verdicts_text(), b.verdicts_text());
        // And a resume over the checkpointed state still reuses.
        let resumed = gate_durable(&reg, &v, &config(), &gate, &ckpt).expect("resume");
        assert_eq!(resumed.reused, 2);
        assert_eq!(resumed.verdicts_text(), a.verdicts_text());
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn cancel_stops_at_rule_boundary_and_preserves_resume() {
        let dir = tmpdir("cancel");
        let reg = registry();
        let v = version(false);
        let gate = GateOptions::default();
        // Cancel fires after the first rule settles: the run aborts at
        // the next boundary instead of finishing.
        let flag = Arc::new(AtomicBool::new(false));
        let trip = Arc::clone(&flag);
        let durable = DurableOptions {
            state_dir: dir.clone(),
            progress: Some(Arc::new(move || trip.store(true, Ordering::SeqCst))),
            cancel: Some(Arc::clone(&flag)),
            ..DurableOptions::default()
        };
        match gate_durable(&reg, &v, &config(), &gate, &durable) {
            Err(StoreError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The journal the cancelled attempt wrote stays valid: a clean
        // retry reuses the settled verdict.
        let resumed = gate_durable(
            &reg,
            &v,
            &config(),
            &gate,
            &DurableOptions { state_dir: dir.clone(), ..DurableOptions::default() },
        )
        .expect("resume after cancel");
        assert_eq!(resumed.reused, 1);
        assert_eq!(resumed.fresh, 1);
        assert_eq!(resumed.decision, GateDecision::Block);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_heartbeats_once_per_rule_including_reused() {
        let dir = tmpdir("heartbeat");
        let reg = registry();
        let v = version(false);
        let gate = GateOptions::default();
        let beats = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&beats);
        let durable = DurableOptions {
            state_dir: dir.clone(),
            progress: Some(Arc::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })),
            ..DurableOptions::default()
        };
        gate_durable(&reg, &v, &config(), &gate, &durable).expect("run");
        assert_eq!(beats.load(Ordering::SeqCst), 2, "one heartbeat per fresh rule");
        gate_durable(&reg, &v, &config(), &gate, &durable).expect("rerun");
        assert_eq!(beats.load(Ordering::SeqCst), 4, "reused rules heartbeat too");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_cannot_collide_or_alias_the_state_root() {
        assert_eq!(sanitize("clean-id_1"), "clean-id_1");
        // Distinct raw ids must map to distinct state dirs even when
        // character replacement would merge them.
        assert_ne!(sanitize("a/b"), sanitize("a_b"));
        assert_ne!(sanitize("a/b"), sanitize("a.b"));
        // An empty id must not resolve to the state root itself.
        assert!(!sanitize("").is_empty());
        // Deterministic: retries land in the same dir.
        assert_eq!(sanitize("a/b"), sanitize("a/b"));
    }

    #[test]
    fn parse_repl_addr_schemes_win_over_shape() {
        // Explicit schemes are taken at face value, even when the
        // remainder looks like the other transport (or is empty).
        assert_eq!(
            parse_repl_addr("unix:/tmp/lisa.sock"),
            ReplAddr::Unix(PathBuf::from("/tmp/lisa.sock"))
        );
        assert_eq!(parse_repl_addr("unix:"), ReplAddr::Unix(PathBuf::new()));
        assert_eq!(
            parse_repl_addr("unix:localhost:7001"),
            ReplAddr::Unix(PathBuf::from("localhost:7001"))
        );
        assert_eq!(
            parse_repl_addr("tcp:127.0.0.1:7001"),
            ReplAddr::Tcp("127.0.0.1:7001".to_string())
        );
        assert_eq!(parse_repl_addr("tcp:"), ReplAddr::Tcp(String::new()));
    }

    #[test]
    fn parse_repl_addr_bare_specs_split_on_slash() {
        // A '/' anywhere marks a filesystem path — colons in the path
        // (legal on unix) do not flip it back to host:port.
        assert_eq!(
            parse_repl_addr("/var/run/lisa:1.sock"),
            ReplAddr::Unix(PathBuf::from("/var/run/lisa:1.sock"))
        );
        assert_eq!(parse_repl_addr("./lisa.sock"), ReplAddr::Unix(PathBuf::from("./lisa.sock")));
        // No '/': host:port territory.
        assert_eq!(parse_repl_addr("localhost:7001"), ReplAddr::Tcp("localhost:7001".to_string()));
    }

    #[test]
    fn parse_repl_addr_degenerate_specs_fall_to_tcp() {
        // The ambiguous leftovers — empty spec, bare host with a missing
        // port, a slashless socket filename — all parse as TCP and fail
        // loudly at connect() rather than being guessed at. Callers who
        // mean a relative socket path write `unix:` explicitly.
        assert_eq!(parse_repl_addr(""), ReplAddr::Tcp(String::new()));
        assert_eq!(parse_repl_addr("localhost"), ReplAddr::Tcp("localhost".to_string()));
        assert_eq!(parse_repl_addr("lisa.sock"), ReplAddr::Tcp("lisa.sock".to_string()));
    }
}
