//! Composing low-level semantics into high-level guarantees (§5 Q3).
//!
//! "Can we verify high-level system properties by composing multiple
//! validated low-level semantics? … Our long-term goal is to logically
//! compose multiple low-level semantic rules and merge partial
//! insights, so that it could provide a more complete, high-level form
//! of system correctness guarantee."
//!
//! The preliminary mechanism implemented here (the "initial step" the
//! paper plans): a high-level property is a formula over a shared
//! vocabulary; each contributing rule binds its placeholders into that
//! vocabulary; the composition is *logically sufficient* when the
//! conjunction of the bound rule conditions entails the property
//! (discharged by the SMT solver), and *enforced* on a version when
//! every contributing rule also checked out violation-free there. Both
//! together yield the partial high-level guarantee.

use std::collections::HashMap;

use lisa_oracle::SemanticRule;
use lisa_smt::{implies, parse_cond, ParseError, Term};

use crate::verdict::RuleReport;

/// A high-level system property over a shared vocabulary.
#[derive(Debug, Clone)]
pub struct HighLevelProperty {
    pub id: String,
    /// Natural-language statement (e.g. "every ephemeral node is deleted
    /// once its client session is fully disconnected").
    pub description: String,
    pub formula_src: String,
    pub formula: Term,
}

impl HighLevelProperty {
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        formula_src: impl Into<String>,
    ) -> Result<HighLevelProperty, ParseError> {
        let formula_src = formula_src.into();
        let formula = parse_cond(&formula_src)?;
        Ok(HighLevelProperty {
            id: id.into(),
            description: description.into(),
            formula_src,
            formula,
        })
    }
}

/// One contributing rule with its binding into the shared vocabulary
/// (rule placeholder root → shared variable root).
#[derive(Debug, Clone)]
pub struct Obligation {
    pub rule: SemanticRule,
    pub binding: HashMap<String, String>,
}

impl Obligation {
    pub fn new(rule: SemanticRule) -> Obligation {
        Obligation { rule, binding: HashMap::new() }
    }

    pub fn bind(mut self, placeholder: &str, shared: &str) -> Obligation {
        self.binding.insert(placeholder.to_string(), shared.to_string());
        self
    }

    /// The rule condition rewritten into the shared vocabulary.
    pub fn bound_condition(&self) -> Term {
        self.rule.condition.rename_vars(&|v| {
            let root = lisa_lang::symbolic::path_root(v);
            match self.binding.get(root) {
                Some(shared) => format!("{shared}{}", &v[root.len()..]),
                None => v.to_string(),
            }
        })
    }
}

/// The outcome of a composition check.
#[derive(Debug, Clone)]
pub struct CompositionResult {
    pub property_id: String,
    /// The conjunction of bound rule conditions.
    pub combined: Term,
    /// Do the rules *logically* entail the property?
    pub sufficient: bool,
    /// Rules whose reports carried violations (or were missing) on the
    /// checked version; empty ⇒ enforced.
    pub unenforced_rules: Vec<String>,
}

impl CompositionResult {
    /// The property is guaranteed on the version: logically sufficient
    /// and every contributing rule enforced violation-free.
    pub fn guaranteed(&self) -> bool {
        self.sufficient && self.unenforced_rules.is_empty()
    }
}

/// Check whether `obligations` compose into `property`, given the rule
/// reports from enforcing them on one version (pass an empty slice to
/// check logical sufficiency only).
pub fn compose(
    property: &HighLevelProperty,
    obligations: &[Obligation],
    reports: &[RuleReport],
) -> CompositionResult {
    let combined = Term::and(obligations.iter().map(|o| o.bound_condition()));
    let sufficient = implies(&combined, &property.formula);
    let mut unenforced = Vec::new();
    for o in obligations {
        match reports.iter().find(|r| r.rule_id == o.rule.id) {
            Some(r) if !r.has_violation() && r.not_covered_count() == 0 => {}
            Some(r) => unenforced.push(format!(
                "{} ({} violated, {} uncovered)",
                r.rule_id,
                r.violated_count(),
                r.not_covered_count()
            )),
            None => unenforced.push(format!("{} (no report)", o.rule.id)),
        }
    }
    CompositionResult {
        property_id: property.id.clone(),
        combined,
        sufficient,
        unenforced_rules: unenforced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_analysis::TargetSpec;

    fn rule(id: &str, cond: &str) -> SemanticRule {
        SemanticRule::new(id, id, TargetSpec::Call { callee: "create".into() }, cond)
            .expect("rule")
    }

    #[test]
    fn two_partial_rules_entail_the_property() {
        let property = HighLevelProperty::new(
            "H1",
            "no creation on dead or closing sessions",
            "session != null && session.closing == false",
        )
        .expect("property");
        let o1 = Obligation::new(rule("R1", "s != null")).bind("s", "session");
        let o2 = Obligation::new(rule("R2", "s.closing == false")).bind("s", "session");
        let result = compose(&property, &[o1, o2], &[]);
        assert!(result.sufficient, "combined: {}", result.combined);
    }

    #[test]
    fn insufficient_composition_detected() {
        let property = HighLevelProperty::new(
            "H2",
            "sessions are alive and within ttl",
            "session != null && session.ttl > 0",
        )
        .expect("property");
        let o1 = Obligation::new(rule("R1", "s != null")).bind("s", "session");
        let result = compose(&property, &[o1], &[]);
        assert!(!result.sufficient, "the ttl obligation is missing");
    }

    #[test]
    fn binding_renames_field_paths() {
        let o = Obligation::new(rule("R", "s.closing == false && s.ttl > 0"))
            .bind("s", "sess");
        let c = o.bound_condition();
        let want = parse_cond("sess.closing == false && sess.ttl > 0").expect("want");
        assert!(lisa_smt::equivalent(&c, &want), "{c}");
    }

    #[test]
    fn enforcement_status_is_tracked() {
        let property =
            HighLevelProperty::new("H3", "not null", "x != null").expect("property");
        let o = Obligation::new(rule("R1", "s != null")).bind("s", "x");
        // No report at all:
        let r = compose(&property, std::slice::from_ref(&o), &[]);
        assert!(r.sufficient && !r.guaranteed());
        assert_eq!(r.unenforced_rules, vec!["R1 (no report)"]);
    }

    #[test]
    fn contradictory_obligations_entail_anything_but_flag_nothing() {
        // A degenerate composition (inconsistent rules) is logically
        // sufficient for any property — the caller learns about it from
        // the combined term being unsatisfiable.
        let property = HighLevelProperty::new("H4", "whatever", "q > 100").expect("p");
        let o1 = Obligation::new(rule("R1", "s.ttl > 0")).bind("s", "x");
        let o2 = Obligation::new(rule("R2", "s.ttl < 0")).bind("s", "x");
        let r = compose(&property, &[o1, o2], &[]);
        assert!(r.sufficient);
        assert!(!lisa_smt::is_sat(&r.combined), "caller can detect vacuity");
    }
}
