//! Engine-side error taxonomy for the enforcement gate.
//!
//! The gate's contract is that it *always returns a decision*: a rule
//! whose check panics, exhausts a budget, or arrives malformed must not
//! kill the whole enforcement run. Stage boundaries return
//! `Result<_, LisaError>` and the gate folds failures into per-rule
//! engine-error reports, with the fail-mode deciding whether they block.

use std::fmt;
use std::time::Duration;

/// A failure of the gate machinery itself, as opposed to a semantic-rule
/// violation in the system under check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LisaError {
    /// The rule check panicked (a bug in the engine or a pathological
    /// input); the payload is preserved for the report.
    RulePanicked { rule_id: String, reason: String },
    /// A solver resource budget ran out and no decision was reached.
    SolverBudgetExhausted { rule_id: String, detail: String },
    /// The rule itself is unusable — e.g. the oracle emitted a condition
    /// that does not parse. A per-rule error, never a process abort.
    MalformedRule { rule_id: String, detail: String },
    /// A pipeline stage exceeded its wall-clock allowance.
    StageTimeout { rule_id: String, stage: &'static str, elapsed: Duration },
    /// A transient failure worth retrying (injected or environmental).
    Transient { rule_id: String, detail: String },
}

impl LisaError {
    /// Transient errors are retried with backoff; everything else fails
    /// the attempt immediately.
    pub fn is_transient(&self) -> bool {
        matches!(self, LisaError::Transient { .. })
    }

    /// The rule the error is attributed to.
    pub fn rule_id(&self) -> &str {
        match self {
            LisaError::RulePanicked { rule_id, .. }
            | LisaError::SolverBudgetExhausted { rule_id, .. }
            | LisaError::MalformedRule { rule_id, .. }
            | LisaError::StageTimeout { rule_id, .. }
            | LisaError::Transient { rule_id, .. } => rule_id,
        }
    }
}

impl fmt::Display for LisaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LisaError::RulePanicked { rule_id, reason } => {
                write!(f, "rule {rule_id}: check panicked: {reason}")
            }
            LisaError::SolverBudgetExhausted { rule_id, detail } => {
                write!(f, "rule {rule_id}: solver budget exhausted: {detail}")
            }
            LisaError::MalformedRule { rule_id, detail } => {
                write!(f, "rule {rule_id}: malformed rule: {detail}")
            }
            LisaError::StageTimeout { rule_id, stage, elapsed } => {
                write!(f, "rule {rule_id}: stage {stage} timed out after {elapsed:?}")
            }
            LisaError::Transient { rule_id, detail } => {
                write!(f, "rule {rule_id}: transient failure: {detail}")
            }
        }
    }
}

impl std::error::Error for LisaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transiency_classification() {
        let t = LisaError::Transient { rule_id: "R".into(), detail: "blip".into() };
        let p = LisaError::RulePanicked { rule_id: "R".into(), reason: "boom".into() };
        assert!(t.is_transient());
        assert!(!p.is_transient());
        assert_eq!(t.rule_id(), "R");
    }

    #[test]
    fn display_includes_rule_and_detail() {
        let e = LisaError::MalformedRule { rule_id: "ZK-1".into(), detail: "bad token".into() };
        let s = e.to_string();
        assert!(s.contains("ZK-1") && s.contains("bad token"));
    }
}
