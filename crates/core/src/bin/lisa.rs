//! `lisa` — command-line front end.
//!
//! ```text
//! lisa check   --system <dir> --rules <file> [--test-prefix test_] [--rag <k>] [--format json]
//! lisa gate    --system <dir> --rules <file> [--workers N] [--format json]
//!              [--test-prefix test_] [--rag <k>]
//!              [--fail-mode closed|open] [--deadline-ms N] [--max-solver-conflicts N]
//!              [--fault-seed N] [--fault-rate F] [--state <dir>]
//!              [--cache on|off] [--cache-queries N]
//!              [--trace-out <file>] [--metrics-out <file>]
//! lisa resume  --system <dir> --rules <file> --state <dir> [--fail-mode closed|open]
//! lisa serve   --socket <path> [--state-root <dir>] [--workers N] [--queue-cap N]
//!              [--job-timeout-ms N] [--max-attempts N]
//!              [--listen <host:port>] [--tenants name[:weight[:timeout_ms]],...]
//!              [--tenant-cap N] [--max-conns N]
//!              [--follow <addr>] [--repl-listen <host:port>]
//!              [--heartbeat-ms N] [--heartbeat-timeout-ms N]
//! lisa submit  (--socket <path> | --addr <host:port>)
//!              [--op gate|ping|stats|verdict|shutdown] [--system <dir>]
//!              [--rules <file>] [--fail-mode closed|open] [--job-id <id>]
//!              [--tenant <name>]
//! lisa suggest --system <dir> --target <fn>
//! lisa paths   --system <dir> --target <fn>
//! ```
//!
//! Every subcommand also accepts `--verbose` (progress notes on stderr;
//! stdout artifacts stay machine-clean). `--trace-out <file>` writes a
//! Chrome trace-event JSON of the whole run — load it at
//! `ui.perfetto.dev` — and `--metrics-out <file>` writes a counters +
//! latency-histogram snapshot; both work on any subcommand.
//!
//! `--system` points at a directory of `.sir` modules (tests included,
//! discovered by prefix). `--rules` is a text file of authoring-template
//! sentences (one per line, `#` comments):
//!
//! ```text
//! # shield from ZK-1208
//! when calling create_ephemeral_node, require s != null && s.closing == false
//! never call blocking_io while holding a lock
//! ```
//!
//! `gate --state <dir>` journals every settled verdict to `<dir>` so a
//! killed run can be resumed (`lisa resume`) without re-checking rules
//! whose verdicts were already durable. `lisa serve` runs the same
//! durable gate as a daemon behind a unix socket with a supervised
//! worker pool; `lisa submit` is its client. `--listen <host:port>`
//! additionally serves the same protocol over TCP through a nonblocking
//! `poll(2)` readiness loop, with multi-tenant fairness (`--tenants`
//! weights), per-tenant bounded queues, and explicit load shedding —
//! saturated submissions get `{"status":"shed","retry_after_ms":...}`
//! immediately instead of a hung or dropped connection. `lisa serve --follow
//! <addr>` runs a warm standby instead: it mirrors the leader's state
//! root over a replication stream, answers read-only ops (`stats`,
//! `verdict`), and promotes itself to leader when the leader's
//! heartbeats go silent.
//!
//! Every gate-relevant flag is parsed once by [`lisa::GateConfig`], the
//! same struct the library's `Gate` builder and the serve daemon use.
//! `--cache on|off` (default on) controls the version-scoped analysis,
//! trace, and SMT-query caches; caches are transparent — every stdout
//! byte, JSON artifact, and journal entry is identical with caching off.
//! `--cache-queries N` bounds the SMT query cache (LRU, default 4096
//! entries; 0 disables just the query tier).
//!
//! Exit status: 0 = pass, 1 = violations found (gate blocks), 2 = a true
//! engine error — usage/load failure, or (under fail-closed) a rule check
//! the gate itself could not complete. Directly usable as a CI step.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use lisa::faults::FAULT_PANIC_PREFIX;
use lisa::report::{render_enforcement, render_rule_report};
use lisa::service::request;
use lisa::{
    gate_durable, load_rules, load_system, serve, DurableOptions, FailMode, Gate, GateConfig,
    GateDecision, GateOptions, Json, Pipeline, RuleRegistry, ServeConfig, StreamFaultInjector,
};
use lisa_analysis::{execution_tree_filtered, CallGraph, TargetSpec, TreeLimits};
use lisa_oracle::suggest_conditions;
use lisa_util::RetryPolicy;

/// How a successful run (no usage/load error) ended.
enum Outcome {
    /// Gate passed / no violations.
    Clean,
    /// Semantic-rule violations: the change is blocked.
    Violations,
    /// The gate machinery failed on at least one rule under fail-closed:
    /// nobody knows whether the change is safe.
    EngineFailure,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Violations) => ExitCode::from(1),
        Ok(Outcome::EngineFailure) => ExitCode::from(2),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  lisa check   --system <dir> --rules <file> [--test-prefix test_] [--rag <k>] [--format json]
  lisa gate    --system <dir> --rules <file> [--workers N|auto] [--format json]
               [--test-prefix test_] [--rag <k>]
               [--fail-mode closed|open] [--deadline-ms N] [--max-solver-conflicts N]
               [--fault-seed N] [--fault-rate F] [--state <dir>]
               [--cache on|off] [--cache-queries N]
               [--trace-out <file>] [--metrics-out <file>]
  lisa resume  --system <dir> --rules <file> --state <dir> [--fail-mode closed|open]
  lisa serve   --socket <path> [--state-root <dir>] [--workers N|auto] [--queue-cap N]
               [--job-timeout-ms N] [--max-attempts N]
               [--listen <host:port>] [--tenants name[:weight[:timeout_ms]],...]
               [--tenant-cap N] [--max-conns N]
               [--follow <addr>] [--repl-listen <host:port>]
               [--heartbeat-ms N] [--heartbeat-timeout-ms N]
  lisa submit  (--socket <path> | --addr <host:port>)
               [--op gate|ping|stats|verdict|shutdown] [--system <dir>]
               [--rules <file>] [--fail-mode closed|open] [--job-id <id>]
               [--tenant <name>]
  lisa suggest --system <dir> --target <fn>
  lisa paths   --system <dir> --target <fn>
flags accepted everywhere:
  --verbose                progress notes on stderr (stdout stays machine-clean)
  --trace-out <file>       write a Chrome trace (Perfetto-loadable) of the run
  --metrics-out <file>     write a counters + latency-histogram JSON snapshot";

fn run(args: &[String]) -> Result<Outcome, String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(&args[1..])?;
    // Telemetry is configured before any work starts: --trace-out needs
    // full spans, --metrics-out alone needs only counters/histograms.
    // Telemetry never feeds a verdict, so enabling it cannot change any
    // artifact written to stdout.
    if flags.contains_key("trace-out") {
        lisa_telemetry::init(lisa_telemetry::TelemetryConfig::Full);
    } else if flags.contains_key("metrics-out") {
        lisa_telemetry::init(lisa_telemetry::TelemetryConfig::MetricsOnly);
    }
    if flags.contains_key("verbose") {
        lisa_telemetry::set_verbose(true);
    }
    let result = match cmd.as_str() {
        "check" => cmd_check(&flags, false),
        "gate" => cmd_check(&flags, true),
        "resume" => cmd_resume(&flags),
        "serve" => cmd_serve(&flags),
        "submit" => cmd_submit(&flags),
        "suggest" => cmd_suggest(&flags),
        "paths" => cmd_paths(&flags),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    // Export on the way out even when the gate blocks — a blocked run's
    // trace is exactly the one worth looking at.
    if let Some(path) = flags.get("trace-out") {
        std::fs::write(path, lisa_telemetry::chrome_trace_json())
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = flags.get("metrics-out") {
        std::fs::write(path, lisa_telemetry::metrics_json())
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    result
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, found {flag:?}"));
        };
        // The one valueless flag; everything else is a --name value pair.
        if name == "verbose" {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
) -> Result<Option<T>, String> {
    flags
        .get(name)
        .map(|v| v.parse::<T>().map_err(|_| format!("--{name} {v}: not a number")))
        .transpose()
}

fn cmd_check(flags: &HashMap<String, String>, gate: bool) -> Result<Outcome, String> {
    // Every gate-relevant flag is parsed in one place; check mode and the
    // serve daemon consume the same struct.
    let cfg = GateConfig::from_args(flags)?;
    let version = load_system(required(flags, "system")?, &cfg.pipeline.test_prefix)?;
    let rules = load_rules(required(flags, "rules")?)?;
    let config = cfg.pipeline.clone();
    let json = matches!(flags.get("format").map(String::as_str), Some("json"));
    lisa_telemetry::note("load", || {
        format!(
            "system `{}`: {} function(s), {} test(s), {} rule(s)",
            version.label,
            version.program.functions().count(),
            version.tests.len(),
            rules.len()
        )
    });
    if gate {
        let ids: Vec<String> = rules.iter().map(|r| r.id.clone()).collect();
        let options = cfg.gate_options(&ids);
        let mut registry = RuleRegistry::new();
        for r in rules {
            registry.register(r);
        }
        // `--state <dir>`: journal the run so a crash can be resumed
        // without re-checking already-settled rules.
        if let Some(state) = flags.get("state") {
            return run_durable(&registry, &version, &cfg, &options, state, json);
        }
        let mut gate = Gate::new(&registry).config(config).workers(cfg.workers).options(options);
        if let Some(cache) = cfg.gate_cache() {
            gate = gate.cache(&cache);
        }
        let report = gate.run(&version);
        // Resolved width goes to the verbose stderr channel, never into
        // the report: gate output is byte-identical at any worker count.
        lisa_telemetry::note("gate", || {
            format!("scheduler width {} (--workers {})", report.workers, cfg.workers)
        });
        if json {
            println!("{}", lisa::json::enforcement_json(&report));
        } else {
            print!("{}", render_enforcement(&report));
        }
        // Exit 2 is reserved for true engine errors: the gate could not
        // complete a check under fail-closed and no violation explains
        // the block. Genuine violations stay exit 1.
        if report.reports.iter().any(|r| r.has_violation()) {
            Ok(Outcome::Violations)
        } else if report.has_engine_errors() && cfg.fail_mode == FailMode::Closed {
            Ok(Outcome::EngineFailure)
        } else if report.decision == GateDecision::Pass {
            Ok(Outcome::Clean)
        } else {
            Ok(Outcome::Violations)
        }
    } else {
        let pipeline = Pipeline::new(config);
        let mut clean = true;
        let mut json_reports = Vec::new();
        for rule in &rules {
            let report = pipeline.check_rule(&version, rule);
            if json {
                json_reports.push(lisa::json::rule_report_json(&report));
            } else {
                print!("{}", render_rule_report(&report));
            }
            clean &= !report.has_violation();
        }
        if json {
            println!("[{}]", json_reports.join(","));
        }
        Ok(if clean { Outcome::Clean } else { Outcome::Violations })
    }
}

/// `lisa resume` — continue a journaled gate run. Identical to
/// `gate --state <dir>`: the journal itself knows which verdicts are
/// already settled, so "start" and "resume" are the same operation.
fn cmd_resume(flags: &HashMap<String, String>) -> Result<Outcome, String> {
    let cfg = GateConfig::from_args(flags)?;
    let version = load_system(required(flags, "system")?, &cfg.pipeline.test_prefix)?;
    let rules = load_rules(required(flags, "rules")?)?;
    let state = required(flags, "state")?;
    let ids: Vec<String> = rules.iter().map(|r| r.id.clone()).collect();
    let options = cfg.gate_options(&ids);
    let mut registry = RuleRegistry::new();
    for r in rules {
        registry.register(r);
    }
    run_durable(&registry, &version, &cfg, &options, state, false)
}

fn run_durable(
    registry: &RuleRegistry,
    version: &lisa_concolic::SystemVersion,
    cfg: &GateConfig,
    options: &GateOptions,
    state: &str,
    json: bool,
) -> Result<Outcome, String> {
    let durable = DurableOptions {
        state_dir: PathBuf::from(state),
        workers: cfg.workers,
        cache: cfg.gate_cache(),
        ..DurableOptions::default()
    };
    let report = gate_durable(registry, version, &cfg.pipeline, options, &durable)
        .map_err(|e| format!("durable state {state}: {e}"))?;
    if json {
        println!(
            "{{\"decision\":\"{}\",\"reused\":{},\"fresh\":{},\"durable\":{}}}",
            report.decision, report.reused, report.fresh, report.durable
        );
    } else {
        print!("{}", report.render());
    }
    if report.has_violation() {
        Ok(Outcome::Violations)
    } else if report.engine_errors() > 0 && report.fail_mode == FailMode::Closed {
        Ok(Outcome::EngineFailure)
    } else {
        Ok(Outcome::Clean)
    }
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<Outcome, String> {
    let socket = PathBuf::from(required(flags, "socket")?);
    let state_root = flags
        .get("state-root")
        .map(PathBuf::from)
        .unwrap_or_else(|| socket.with_extension("state"));
    let config = ServeConfig {
        socket,
        state_root,
        workers: match flags.get("workers").map(String::as_str) {
            None => 2,
            Some("auto") => 0,
            Some(v) => v
                .parse()
                .map_err(|_| format!("--workers {v}: expected a number or `auto`"))?,
        },
        queue_cap: parse_num(flags, "queue-cap")?.unwrap_or(64),
        job_timeout: Duration::from_millis(
            parse_num::<u64>(flags, "job-timeout-ms")?.unwrap_or(30_000),
        ),
        max_attempts: parse_num(flags, "max-attempts")?.unwrap_or(3),
        retry: RetryPolicy::default(),
        follow: flags.get("follow").cloned(),
        repl_listen: flags.get("repl-listen").cloned(),
        heartbeat_interval: Duration::from_millis(
            parse_num::<u64>(flags, "heartbeat-ms")?.unwrap_or(500),
        ),
        heartbeat_timeout: Duration::from_millis(
            parse_num::<u64>(flags, "heartbeat-timeout-ms")?.unwrap_or(2500),
        ),
        // Test hook: seed a fault plan at the replication receive seam
        // (torn frames, short reads, bit flips, stalled heartbeats).
        stream_faults: parse_num::<u64>(flags, "repl-fault-seed")?
            .map(|seed| Arc::new(StreamFaultInjector::random(seed)) as _),
        listen: flags.get("listen").cloned(),
        tenants: match flags.get("tenants") {
            Some(spec) => lisa::parse_tenant_specs(spec)?,
            None => Vec::new(),
        },
        tenant_cap: parse_num(flags, "tenant-cap")?.unwrap_or(0),
        max_conns: parse_num(flags, "max-conns")?.unwrap_or(4096),
    };
    // Chaos panics (and enforce-side injected panics) are expected,
    // supervised events in a daemon — keep them off stderr.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let quiet = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.starts_with(FAULT_PANIC_PREFIX));
        if !quiet {
            default_hook(info);
        }
    }));
    lisa_telemetry::note("serve", || format!("listening on {}", config.socket.display()));
    let stats = serve(&config)?;
    lisa_telemetry::note("serve", || {
        format!(
            "drained — {} job(s) done, {} retried, {} dead-lettered, {} worker(s) respawned{}",
            stats.jobs_done,
            stats.retries,
            stats.dead_letters,
            stats.respawned_workers,
            if stats.promotions > 0 { ", promoted from follower" } else { "" },
        )
    });
    Ok(Outcome::Clean)
}

fn cmd_submit(flags: &HashMap<String, String>) -> Result<Outcome, String> {
    // One of the two transports: --socket (unix) or --addr (TCP, for a
    // daemon started with --listen). Same protocol, same reply bytes.
    let op = flags.get("op").map(String::as_str).unwrap_or("gate");
    let line = match op {
        "ping" | "stats" | "shutdown" => format!("{{\"op\":\"{op}\"}}"),
        "verdict" => {
            let id = required(flags, "job-id")?;
            format!(
                "{{\"v\":{},\"op\":\"verdict\",\"job_id\":\"{}\"}}",
                lisa::service::PROTOCOL_VERSION,
                lisa::json::escape(id),
            )
        }
        "gate" => {
            let system = required(flags, "system")?;
            let rules = required(flags, "rules")?;
            // The protocol is versioned; the daemon rejects numbers it
            // does not speak with a structured bad-request reply.
            let mut line = format!(
                "{{\"v\":{},\"op\":\"gate\",\"system\":\"{}\",\"rules\":\"{}\"",
                lisa::service::PROTOCOL_VERSION,
                lisa::json::escape(system),
                lisa::json::escape(rules),
            );
            for (flag, field) in [
                ("fail-mode", "fail_mode"),
                ("job-id", "job_id"),
                ("tenant", "tenant"),
                ("chaos", "chaos"),
            ] {
                if let Some(v) = flags.get(flag) {
                    line.push_str(&format!(",\"{field}\":\"{}\"", lisa::json::escape(v)));
                }
            }
            line.push('}');
            line
        }
        other => return Err(format!("unknown --op {other:?}")),
    };
    let reply = match flags.get("addr") {
        Some(addr) => lisa::request_tcp(addr, &line)
            .map_err(|e| format!("request to tcp {addr}: {e}"))?,
        None => {
            let socket = PathBuf::from(required(flags, "socket")?);
            request(&socket, &line)
                .map_err(|e| format!("request to {}: {e}", socket.display()))?
        }
    };
    println!("{reply}");
    let parsed = Json::parse(&reply).map_err(|e| format!("bad reply: {e}"))?;
    match parsed.u64_of("exit") {
        Some(0) | None => Ok(Outcome::Clean),
        Some(1) => Ok(Outcome::Violations),
        Some(_) => Ok(Outcome::EngineFailure),
    }
}

fn cmd_suggest(flags: &HashMap<String, String>) -> Result<Outcome, String> {
    let version = load_system(required(flags, "system")?, "test_")?;
    let target = required(flags, "target")?;
    let suggestions = suggest_conditions(&version.program, target);
    if suggestions.is_empty() {
        println!("no guarded paths to `{target}` found — nothing to suggest");
        return Ok(Outcome::Clean);
    }
    println!("suggested conditions for `when calling {target}, require ...`:");
    for s in suggestions {
        println!("  [{} path(s) already enforce] {}", s.support, s.condition_src);
    }
    Ok(Outcome::Clean)
}

fn cmd_paths(flags: &HashMap<String, String>) -> Result<Outcome, String> {
    let version = load_system(required(flags, "system")?, "test_")?;
    let target = required(flags, "target")?;
    let graph = CallGraph::build(&version.program);
    let spec = TargetSpec::Call { callee: target.to_string() };
    let tree = execution_tree_filtered(&graph, &spec, TreeLimits::default(), &|f| {
        f.starts_with("test_")
    });
    println!("{} chain(s) reach {spec}:", tree.chains.len());
    for chain in &tree.chains {
        println!("  {}", chain.render(&graph));
    }
    if tree.truncated {
        println!("  ... (truncated)");
    }
    Ok(Outcome::Clean)
}
