//! `lisa` — command-line front end.
//!
//! ```text
//! lisa check   --system <dir> --rules <file> [--test-prefix test_] [--rag <k>] [--format json]
//! lisa gate    --system <dir> --rules <file> [--workers N] [--format json]
//!              [--fail-mode closed|open] [--deadline-ms N] [--max-solver-conflicts N]
//!              [--fault-seed N] [--fault-rate F]
//! lisa suggest --system <dir> --target <fn>
//! lisa paths   --system <dir> --target <fn>
//! ```
//!
//! `--system` points at a directory of `.sir` modules (tests included,
//! discovered by prefix). `--rules` is a text file of authoring-template
//! sentences (one per line, `#` comments):
//!
//! ```text
//! # shield from ZK-1208
//! when calling create_ephemeral_node, require s != null && s.closing == false
//! never call blocking_io while holding a lock
//! ```
//!
//! Exit status: 0 = pass, 1 = violations found (gate blocks), 2 = a true
//! engine error — usage/load failure, or (under fail-closed) a rule check
//! the gate itself could not complete. Directly usable as a CI step.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use lisa::report::{render_enforcement, render_rule_report};
use lisa::{
    enforce_with, FailMode, FaultInjector, FaultPlan, GateDecision, GateOptions, Pipeline,
    PipelineConfig, ResourceBudgets, RuleRegistry, TestSelection,
};
use lisa_analysis::{execution_tree_filtered, CallGraph, TargetSpec, TreeLimits};
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_lang::Program;
use lisa_oracle::{author_rule, suggest_conditions, SemanticRule};

/// How a successful run (no usage/load error) ended.
enum Outcome {
    /// Gate passed / no violations.
    Clean,
    /// Semantic-rule violations: the change is blocked.
    Violations,
    /// The gate machinery failed on at least one rule under fail-closed:
    /// nobody knows whether the change is safe.
    EngineFailure,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Violations) => ExitCode::from(1),
        Ok(Outcome::EngineFailure) => ExitCode::from(2),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  lisa check   --system <dir> --rules <file> [--test-prefix test_] [--rag <k>] [--format json]
  lisa gate    --system <dir> --rules <file> [--workers N] [--format json]
               [--fail-mode closed|open] [--deadline-ms N] [--max-solver-conflicts N]
               [--fault-seed N] [--fault-rate F]
  lisa suggest --system <dir> --target <fn>
  lisa paths   --system <dir> --target <fn>";

fn run(args: &[String]) -> Result<Outcome, String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "check" => cmd_check(&flags, false),
        "gate" => cmd_check(&flags, true),
        "suggest" => cmd_suggest(&flags),
        "paths" => cmd_paths(&flags),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, found {flag:?}"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

/// Load every `.sir` file under `dir` (sorted, non-recursive) into one
/// program; discover tests by prefix.
fn load_system(dir: &str, test_prefix: &str) -> Result<SystemVersion, String> {
    let dir = Path::new(dir);
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sir"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .sir files in {}", dir.display()));
    }
    let mut sources = Vec::new();
    for f in &files {
        let text =
            std::fs::read_to_string(f).map_err(|e| format!("read {}: {e}", f.display()))?;
        let name = f.file_stem().and_then(|s| s.to_str()).unwrap_or("module").to_string();
        sources.push((name, text));
    }
    let refs: Vec<(&str, &str)> =
        sources.iter().map(|(n, t)| (n.as_str(), t.as_str())).collect();
    let program = Program::parse(&refs).map_err(|e| e.to_string())?;
    let errors = lisa_lang::check_program(&program);
    if !errors.is_empty() {
        let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        return Err(format!("type errors:\n  {}", msgs.join("\n  ")));
    }
    let tests = discover_tests(&program, test_prefix);
    let label = dir.file_name().and_then(|s| s.to_str()).unwrap_or("system").to_string();
    Ok(SystemVersion::new(label, program, tests))
}

/// Parse a rules file of authoring-template sentences.
fn load_rules(path: &str) -> Result<Vec<SemanticRule>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut rules = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = author_rule(&format!("rule-{}", lineno + 1), line)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err(format!("{path}: no rules"));
    }
    Ok(rules)
}

fn cmd_check(flags: &HashMap<String, String>, gate: bool) -> Result<Outcome, String> {
    let version = load_system(
        required(flags, "system")?,
        flags.get("test-prefix").map(String::as_str).unwrap_or("test_"),
    )?;
    let rules = load_rules(required(flags, "rules")?)?;
    let selection = match flags.get("rag") {
        Some(k) => TestSelection::Rag {
            k: k.parse().map_err(|_| format!("--rag {k}: not a number"))?,
        },
        None => TestSelection::All,
    };
    let config = PipelineConfig { selection, ..PipelineConfig::default() };
    let json = matches!(flags.get("format").map(String::as_str), Some("json"));
    if !json {
        println!(
            "system `{}`: {} function(s), {} test(s), {} rule(s)",
            version.label,
            version.program.functions().count(),
            version.tests.len(),
            rules.len()
        );
    }
    if gate {
        let workers = flags
            .get("workers")
            .map(|w| w.parse().map_err(|_| format!("--workers {w}: not a number")))
            .transpose()?
            .unwrap_or(4);
        let fail_mode = flags
            .get("fail-mode")
            .map(|m| m.parse::<FailMode>())
            .transpose()?
            .unwrap_or_default();
        let deadline = flags
            .get("deadline-ms")
            .map(|d| {
                d.parse::<u64>().map_err(|_| format!("--deadline-ms {d}: not a number"))
            })
            .transpose()?
            .map(Duration::from_millis);
        let max_solver_conflicts = flags
            .get("max-solver-conflicts")
            .map(|c| {
                c.parse::<u64>()
                    .map_err(|_| format!("--max-solver-conflicts {c}: not a number"))
            })
            .transpose()?;
        // Resilience drill: seed a deterministic fault plan over the
        // loaded rules (chaos-testing the gate itself in CI).
        let fault_seed = flags
            .get("fault-seed")
            .map(|s| s.parse::<u64>().map_err(|_| format!("--fault-seed {s}: not a number")))
            .transpose()?;
        let fault_rate = flags
            .get("fault-rate")
            .map(|r| {
                r.parse::<f64>().map_err(|_| format!("--fault-rate {r}: not a number"))
            })
            .transpose()?
            .unwrap_or(1.0);
        let faults = fault_seed.map(|seed| {
            let ids: Vec<String> = rules.iter().map(|r| r.id.clone()).collect();
            FaultInjector::new(FaultPlan::random(seed, fault_rate, &ids))
        });
        let options = GateOptions {
            fail_mode,
            deadline,
            budgets: ResourceBudgets { max_solver_conflicts, ..ResourceBudgets::default() },
            faults,
            ..GateOptions::default()
        };
        let mut registry = RuleRegistry::new();
        for r in rules {
            registry.register(r);
        }
        let report = enforce_with(&registry, &version, &config, workers, &options);
        if json {
            println!("{}", lisa::json::enforcement_json(&report));
        } else {
            print!("{}", render_enforcement(&report));
        }
        // Exit 2 is reserved for true engine errors: the gate could not
        // complete a check under fail-closed and no violation explains
        // the block. Genuine violations stay exit 1.
        if report.reports.iter().any(|r| r.has_violation()) {
            Ok(Outcome::Violations)
        } else if report.has_engine_errors() && fail_mode == FailMode::Closed {
            Ok(Outcome::EngineFailure)
        } else if report.decision == GateDecision::Pass {
            Ok(Outcome::Clean)
        } else {
            Ok(Outcome::Violations)
        }
    } else {
        let pipeline = Pipeline::new(config);
        let mut clean = true;
        let mut json_reports = Vec::new();
        for rule in &rules {
            let report = pipeline.check_rule(&version, rule);
            if json {
                json_reports.push(lisa::json::rule_report_json(&report));
            } else {
                print!("{}", render_rule_report(&report));
            }
            clean &= !report.has_violation();
        }
        if json {
            println!("[{}]", json_reports.join(","));
        }
        Ok(if clean { Outcome::Clean } else { Outcome::Violations })
    }
}

fn cmd_suggest(flags: &HashMap<String, String>) -> Result<Outcome, String> {
    let version = load_system(required(flags, "system")?, "test_")?;
    let target = required(flags, "target")?;
    let suggestions = suggest_conditions(&version.program, target);
    if suggestions.is_empty() {
        println!("no guarded paths to `{target}` found — nothing to suggest");
        return Ok(Outcome::Clean);
    }
    println!("suggested conditions for `when calling {target}, require ...`:");
    for s in suggestions {
        println!("  [{} path(s) already enforce] {}", s.support, s.condition_src);
    }
    Ok(Outcome::Clean)
}

fn cmd_paths(flags: &HashMap<String, String>) -> Result<Outcome, String> {
    let version = load_system(required(flags, "system")?, "test_")?;
    let target = required(flags, "target")?;
    let graph = CallGraph::build(&version.program);
    let spec = TargetSpec::Call { callee: target.to_string() };
    let tree = execution_tree_filtered(&graph, &spec, TreeLimits::default(), &|f| {
        f.starts_with("test_")
    });
    println!("{} chain(s) reach {spec}:", tree.chains.len());
    for chain in &tree.chains {
        println!("  {}", chain.render(&graph));
    }
    if tree.truncated {
        println!("  ... (truncated)");
    }
    Ok(Outcome::Clean)
}
