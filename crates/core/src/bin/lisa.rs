//! `lisa` — command-line front end.
//!
//! ```text
//! lisa check   --system <dir> --rules <file> [--test-prefix test_] [--rag <k>] [--format json]
//! lisa gate    --system <dir> --rules <file> [--workers N] [--format json]
//! lisa suggest --system <dir> --target <fn>
//! lisa paths   --system <dir> --target <fn>
//! ```
//!
//! `--system` points at a directory of `.sir` modules (tests included,
//! discovered by prefix). `--rules` is a text file of authoring-template
//! sentences (one per line, `#` comments):
//!
//! ```text
//! # shield from ZK-1208
//! when calling create_ephemeral_node, require s != null && s.closing == false
//! never call blocking_io while holding a lock
//! ```
//!
//! Exit status: 0 = pass, 1 = violations found (gate blocks), 2 = usage
//! or load error — directly usable as a CI step.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lisa::report::{render_enforcement, render_rule_report};
use lisa::{enforce, GateDecision, Pipeline, PipelineConfig, RuleRegistry, TestSelection};
use lisa_analysis::{execution_tree_filtered, CallGraph, TargetSpec, TreeLimits};
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_lang::Program;
use lisa_oracle::{author_rule, suggest_conditions, SemanticRule};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  lisa check   --system <dir> --rules <file> [--test-prefix test_] [--rag <k>] [--format json]
  lisa gate    --system <dir> --rules <file> [--workers N] [--format json]
  lisa suggest --system <dir> --target <fn>
  lisa paths   --system <dir> --target <fn>";

fn run(args: &[String]) -> Result<bool, String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "check" => cmd_check(&flags, false),
        "gate" => cmd_check(&flags, true),
        "suggest" => cmd_suggest(&flags),
        "paths" => cmd_paths(&flags),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, found {flag:?}"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

/// Load every `.sir` file under `dir` (sorted, non-recursive) into one
/// program; discover tests by prefix.
fn load_system(dir: &str, test_prefix: &str) -> Result<SystemVersion, String> {
    let dir = Path::new(dir);
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sir"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .sir files in {}", dir.display()));
    }
    let mut sources = Vec::new();
    for f in &files {
        let text =
            std::fs::read_to_string(f).map_err(|e| format!("read {}: {e}", f.display()))?;
        let name = f.file_stem().and_then(|s| s.to_str()).unwrap_or("module").to_string();
        sources.push((name, text));
    }
    let refs: Vec<(&str, &str)> =
        sources.iter().map(|(n, t)| (n.as_str(), t.as_str())).collect();
    let program = Program::parse(&refs).map_err(|e| e.to_string())?;
    let errors = lisa_lang::check_program(&program);
    if !errors.is_empty() {
        let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        return Err(format!("type errors:\n  {}", msgs.join("\n  ")));
    }
    let tests = discover_tests(&program, test_prefix);
    let label = dir.file_name().and_then(|s| s.to_str()).unwrap_or("system").to_string();
    Ok(SystemVersion::new(label, program, tests))
}

/// Parse a rules file of authoring-template sentences.
fn load_rules(path: &str) -> Result<Vec<SemanticRule>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut rules = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = author_rule(&format!("rule-{}", lineno + 1), line)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err(format!("{path}: no rules"));
    }
    Ok(rules)
}

fn cmd_check(flags: &HashMap<String, String>, gate: bool) -> Result<bool, String> {
    let version = load_system(
        required(flags, "system")?,
        flags.get("test-prefix").map(String::as_str).unwrap_or("test_"),
    )?;
    let rules = load_rules(required(flags, "rules")?)?;
    let selection = match flags.get("rag") {
        Some(k) => TestSelection::Rag {
            k: k.parse().map_err(|_| format!("--rag {k}: not a number"))?,
        },
        None => TestSelection::All,
    };
    let config = PipelineConfig { selection, ..PipelineConfig::default() };
    let json = matches!(flags.get("format").map(String::as_str), Some("json"));
    if !json {
        println!(
            "system `{}`: {} function(s), {} test(s), {} rule(s)",
            version.label,
            version.program.functions().count(),
            version.tests.len(),
            rules.len()
        );
    }
    if gate {
        let workers = flags
            .get("workers")
            .map(|w| w.parse().map_err(|_| format!("--workers {w}: not a number")))
            .transpose()?
            .unwrap_or(4);
        let mut registry = RuleRegistry::new();
        for r in rules {
            registry.register(r);
        }
        let report = enforce(&registry, &version, &config, workers);
        if json {
            println!("{}", lisa::json::enforcement_json(&report));
        } else {
            print!("{}", render_enforcement(&report));
        }
        Ok(report.decision == GateDecision::Pass)
    } else {
        let pipeline = Pipeline::new(config);
        let mut clean = true;
        let mut json_reports = Vec::new();
        for rule in &rules {
            let report = pipeline.check_rule(&version, rule);
            if json {
                json_reports.push(lisa::json::rule_report_json(&report));
            } else {
                print!("{}", render_rule_report(&report));
            }
            clean &= !report.has_violation();
        }
        if json {
            println!("[{}]", json_reports.join(","));
        }
        Ok(clean)
    }
}

fn cmd_suggest(flags: &HashMap<String, String>) -> Result<bool, String> {
    let version = load_system(required(flags, "system")?, "test_")?;
    let target = required(flags, "target")?;
    let suggestions = suggest_conditions(&version.program, target);
    if suggestions.is_empty() {
        println!("no guarded paths to `{target}` found — nothing to suggest");
        return Ok(true);
    }
    println!("suggested conditions for `when calling {target}, require ...`:");
    for s in suggestions {
        println!("  [{} path(s) already enforce] {}", s.support, s.condition_src);
    }
    Ok(true)
}

fn cmd_paths(flags: &HashMap<String, String>) -> Result<bool, String> {
    let version = load_system(required(flags, "system")?, "test_")?;
    let target = required(flags, "target")?;
    let graph = CallGraph::build(&version.program);
    let spec = TargetSpec::Call { callee: target.to_string() };
    let tree = execution_tree_filtered(&graph, &spec, TreeLimits::default(), &|f| {
        f.starts_with("test_")
    });
    println!("{} chain(s) reach {spec}:", tree.chains.len());
    for chain in &tree.chains {
        println!("  {}", chain.render(&graph));
    }
    if tree.truncated {
        println!("  ... (truncated)");
    }
    Ok(true)
}
