//! Multi-tenant admission control and weighted-fair queueing for the
//! serve daemon.
//!
//! Each tenant owns a bounded job queue plus per-tenant instances of the
//! daemon's availability tactics: a **retry budget** (Retry — a tenant
//! whose jobs keep panicking or stalling burns its own budget, nobody
//! else's), a **degradation window** (Degradation / Ignore Faulty
//! Behavior — a tenant that exhausts its budget is fast-failed with
//! structured shed replies for a cooldown instead of burning workers),
//! and a per-tenant **stall timeout** feeding the supervisor's
//! heartbeat check. Dequeue order is stride scheduling over tenant
//! weights, so a noisy tenant with a deep backlog cannot starve a quiet
//! one: a freshly backlogged tenant re-enters at the scheduler's
//! current virtual time and is served within ~one weighted turn.
//!
//! The container is generic over the job type so it stays free of the
//! daemon's socket machinery and unit-testable in isolation.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Upper bound on client-supplied job ids. Past it the daemon answers a
/// structured bad-request instead of letting `sanitize()` mint
/// pathological state-dir names and bloat the busy-dirs set.
pub const MAX_JOB_ID_LEN: usize = 128;

/// Tenant names are identifiers: bounded, filesystem- and JSON-safe,
/// and cheap to embed in telemetry keys.
pub const MAX_TENANT_LEN: usize = 32;

/// Hard cap on distinct tenants a daemon will track. Auto-registration
/// past it is refused with a structured error — an attacker spraying
/// tenant names must not grow unbounded per-tenant state.
pub const MAX_TENANTS: usize = 64;

/// Retry tokens a tenant starts with (and the ceiling replenishment
/// can reach). Every supervised retry spends one; every completed job
/// earns one back.
pub const RETRY_BUDGET_MAX: u32 = 8;

/// How long an exhausted tenant is degraded (fast-failed) before it is
/// allowed to queue work again at half budget.
pub const DEGRADED_COOLDOWN: Duration = Duration::from_secs(3);

/// Stride-scheduling scale: `stride = STRIDE1 / weight`.
const STRIDE1: u64 = 1 << 20;

/// A tenant name is valid when it is a short identifier. Keeping the
/// charset tight bounds telemetry-key cardinality and keeps the name
/// safe to print un-escaped in JSON and logs.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// One `--tenants` entry: `name[:weight[:timeout_ms]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    pub name: String,
    pub weight: u64,
    pub job_timeout: Option<Duration>,
}

/// Parse a `--tenants` spec: comma-separated `name[:weight[:timeout_ms]]`
/// entries, e.g. `ci:4,batch:2:60000,adhoc`.
pub fn parse_tenant_specs(spec: &str) -> Result<Vec<TenantSpec>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let mut parts = entry.split(':');
        let name = parts.next().unwrap_or("").to_string();
        if !valid_tenant(&name) {
            return Err(format!(
                "tenant name {name:?}: must be 1..={MAX_TENANT_LEN} chars of [A-Za-z0-9_-]"
            ));
        }
        let weight = match parts.next() {
            None | Some("") => 1,
            Some(w) => w
                .parse::<u64>()
                .ok()
                .filter(|w| (1..=100).contains(w))
                .ok_or_else(|| format!("tenant {name}: weight {w:?} must be 1..=100"))?,
        };
        let job_timeout = match parts.next() {
            None | Some("") => None,
            Some(t) => Some(Duration::from_millis(
                t.parse::<u64>()
                    .ok()
                    .filter(|t| *t > 0)
                    .ok_or_else(|| format!("tenant {name}: timeout_ms {t:?} must be > 0"))?,
            )),
        };
        if parts.next().is_some() {
            return Err(format!("tenant {name}: too many `:` fields (name[:weight[:timeout_ms]])"));
        }
        if out.iter().any(|s: &TenantSpec| s.name == name) {
            return Err(format!("tenant {name}: listed twice"));
        }
        out.push(TenantSpec { name, weight, job_timeout });
    }
    if out.len() > MAX_TENANTS {
        return Err(format!("{} tenants listed; the daemon tracks at most {MAX_TENANTS}", out.len()));
    }
    Ok(out)
}

/// Per-tenant queue, scheduler position, quota, and tactic state.
#[derive(Debug)]
pub struct Tenant<J> {
    pub weight: u64,
    stride: u64,
    /// Stride-scheduler position; lowest backlogged pass dequeues next.
    pass: u64,
    queue: VecDeque<J>,
    /// Explicit queue bound; 0 = weight-proportional share of the
    /// global cap, recomputed as tenants register.
    pub cap: usize,
    pub job_timeout: Duration,
    /// Jobs currently held by workers (or parked awaiting retry
    /// supervision) on this tenant's behalf.
    pub active: usize,
    pub done: u64,
    pub shed: u64,
    pub retries: u64,
    pub dead_letters: u64,
    pub retry_budget: u32,
    pub degraded_events: u64,
    degraded_until: Option<Instant>,
}

impl<J> Tenant<J> {
    fn new(weight: u64, cap: usize, job_timeout: Duration) -> Tenant<J> {
        Tenant {
            weight,
            stride: STRIDE1 / weight.clamp(1, 100),
            pass: 0,
            queue: VecDeque::new(),
            cap,
            job_timeout,
            active: 0,
            done: 0,
            shed: 0,
            retries: 0,
            dead_letters: 0,
            retry_budget: RETRY_BUDGET_MAX,
            degraded_events: 0,
            degraded_until: None,
        }
    }

    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    pub fn degraded(&self, now: Instant) -> bool {
        self.degraded_until.is_some_and(|until| now < until)
    }
}

/// Why a submission was shed instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The global queue (sum over tenants) is at capacity.
    GlobalSaturated,
    /// This tenant's own bounded queue is at capacity.
    TenantSaturated,
    /// The tenant exhausted its retry budget and is in its degradation
    /// cooldown: fast-fail rather than feed workers jobs that keep
    /// failing (Ignore Faulty Behavior).
    Degraded,
}

impl ShedReason {
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::GlobalSaturated => "global queue saturated",
            ShedReason::TenantSaturated => "tenant queue saturated",
            ShedReason::Degraded => "tenant degraded (retry budget exhausted)",
        }
    }
}

/// Admission verdict. Shed and refused submissions hand the job back so
/// the caller can reclaim its response stream.
pub enum Admitted<J> {
    Queued,
    Shed { job: J, retry_after_ms: u64, reason: ShedReason },
    Refused { job: J, error: String },
}

/// Weighted-fair, bounded, multi-tenant job queues.
pub struct FairQueues<J> {
    tenants: BTreeMap<String, Tenant<J>>,
    queued_total: usize,
    global_cap: usize,
    /// Explicit per-tenant cap; 0 = weight-proportional share.
    tenant_cap: usize,
    default_timeout: Duration,
    workers: u64,
    /// Scheduler virtual time: the pass of the most recent dequeue. A
    /// tenant going from empty to backlogged re-enters here, not at its
    /// stale historical pass (which would let it monopolize) nor ahead
    /// (which would starve it).
    virtual_time: u64,
    /// EWMA of completed-job wall time, feeding `retry_after_ms`.
    mean_job_ms: u64,
}

impl<J> FairQueues<J> {
    pub fn new(
        specs: &[TenantSpec],
        global_cap: usize,
        tenant_cap: usize,
        default_timeout: Duration,
        workers: usize,
    ) -> FairQueues<J> {
        let mut q = FairQueues {
            tenants: BTreeMap::new(),
            queued_total: 0,
            global_cap: global_cap.max(1),
            tenant_cap,
            default_timeout,
            workers: workers.max(1) as u64,
            virtual_time: 0,
            mean_job_ms: 100,
        };
        for spec in specs {
            q.tenants.insert(
                spec.name.clone(),
                Tenant::new(spec.weight, tenant_cap, spec.job_timeout.unwrap_or(default_timeout)),
            );
        }
        q
    }

    pub fn queued_total(&self) -> usize {
        self.queued_total
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tenant<J>)> {
        self.tenants.iter()
    }

    /// The stall timeout for each known tenant (snapshotted so the
    /// supervisor can consult it without holding the queue lock while it
    /// holds a worker-slot lock).
    pub fn timeouts(&self) -> BTreeMap<String, Duration> {
        self.tenants.iter().map(|(name, t)| (name.clone(), t.job_timeout)).collect()
    }

    pub fn timeout_of(&self, tenant: &str) -> Duration {
        self.tenants.get(tenant).map(|t| t.job_timeout).unwrap_or(self.default_timeout)
    }

    fn total_weight(&self) -> u64 {
        self.tenants.values().map(|t| t.weight).sum::<u64>().max(1)
    }

    /// Effective queue bound for one tenant: explicit cap, or its
    /// weight-proportional share of the global cap (at least 1, so a
    /// quiet low-weight tenant can always queue something).
    fn effective_cap(&self, tenant: &Tenant<J>) -> usize {
        if tenant.cap > 0 {
            return tenant.cap;
        }
        (self.global_cap as u64 * tenant.weight / self.total_weight()).max(1) as usize
    }

    /// How long a shed client should wait before retrying: the time the
    /// backlog ahead of it needs to drain through the worker pool,
    /// clamped to something a polite client can actually honor.
    fn retry_after_ms(&self, depth_ahead: usize) -> u64 {
        ((depth_ahead as u64 + 1) * self.mean_job_ms / self.workers).clamp(50, 30_000)
    }

    /// Admit a job for `tenant`, auto-registering unknown tenants at
    /// weight 1 (up to [`MAX_TENANTS`]).
    pub fn admit(&mut self, tenant: &str, job: J, now: Instant) -> Admitted<J> {
        if !self.tenants.contains_key(tenant) {
            if self.tenants.len() >= MAX_TENANTS {
                return Admitted::Refused {
                    job,
                    error: format!("too many tenants (max {MAX_TENANTS}); reuse an existing one"),
                };
            }
            self.tenants.insert(
                tenant.to_string(),
                Tenant::new(1, self.tenant_cap, self.default_timeout),
            );
        }
        if self.queued_total >= self.global_cap {
            let retry = self.retry_after_ms(self.queued_total);
            let t = self.tenants.get_mut(tenant).expect("registered above");
            t.shed += 1;
            return Admitted::Shed { job, retry_after_ms: retry, reason: ShedReason::GlobalSaturated };
        }
        let cap = self.effective_cap(&self.tenants[tenant]);
        let vt = self.virtual_time;
        let t = self.tenants.get_mut(tenant).expect("registered above");
        if let Some(until) = t.degraded_until {
            if now < until {
                t.shed += 1;
                let wait = until.saturating_duration_since(now).as_millis() as u64;
                return Admitted::Shed {
                    job,
                    retry_after_ms: wait.max(50),
                    reason: ShedReason::Degraded,
                };
            }
            // Cooldown over: re-admit at half budget (Degradation ends,
            // trust is rebuilt by finishing jobs, not by waiting).
            t.degraded_until = None;
            t.retry_budget = RETRY_BUDGET_MAX / 2;
        }
        if t.queue.len() >= cap {
            t.shed += 1;
            let depth = t.queue.len();
            let retry = self.retry_after_ms(depth);
            return Admitted::Shed { job, retry_after_ms: retry, reason: ShedReason::TenantSaturated };
        }
        if t.queue.is_empty() {
            // Re-enter the stride schedule at current virtual time.
            t.pass = t.pass.max(vt);
        }
        t.queue.push_back(job);
        self.queued_total += 1;
        Admitted::Queued
    }

    /// Dequeue the next job under weighted fairness: among tenants with
    /// at least one `dequeuable` job, pick the lowest stride pass, pop
    /// that tenant's first dequeuable job, and charge its pass. Jobs
    /// failing `dequeuable` (busy state dirs) are skipped in place.
    pub fn pop(&mut self, dequeuable: impl Fn(&J) -> bool) -> Option<(String, J)> {
        let mut best: Option<(&String, usize, u64)> = None;
        for (name, t) in &self.tenants {
            if let Some(idx) = t.queue.iter().position(&dequeuable) {
                if best.is_none_or(|(_, _, pass)| t.pass < pass) {
                    best = Some((name, idx, t.pass));
                }
            }
        }
        let (name, idx, _) = best?;
        let name = name.clone();
        let t = self.tenants.get_mut(&name).expect("picked above");
        let job = t.queue.remove(idx).expect("indexed job");
        self.virtual_time = t.pass;
        t.pass += t.stride;
        t.active += 1;
        self.queued_total -= 1;
        Some((name, job))
    }

    /// Return a recovered job to the front of its tenant's queue (a
    /// supervised retry re-runs before newer submissions; its admission
    /// was already paid). The job is no longer active until re-popped.
    pub fn requeue_front(&mut self, tenant: &str, job: J) {
        let vt = self.virtual_time;
        let default = (self.tenant_cap, self.default_timeout);
        let t = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant::new(1, default.0, default.1));
        if t.queue.is_empty() {
            t.pass = t.pass.max(vt);
        }
        t.queue.push_front(job);
        self.queued_total += 1;
    }

    /// A worker settled a job for `tenant` (reply sent or attempt ended).
    /// `elapsed_ms` feeds the shed-retry estimate; a completed job earns
    /// one retry token back.
    pub fn settle(&mut self, tenant: &str, elapsed_ms: u64) {
        self.mean_job_ms = (self.mean_job_ms * 7 + elapsed_ms.max(1)) / 8;
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.active = t.active.saturating_sub(1);
            t.done += 1;
            t.retry_budget = (t.retry_budget + 1).min(RETRY_BUDGET_MAX);
        }
    }

    /// The supervisor recovered this tenant's in-flight job from an
    /// abandoned worker; it is no longer active.
    pub fn recovered(&mut self, tenant: &str) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.active = t.active.saturating_sub(1);
        }
    }

    /// Spend one retry token. Returns false — and starts the tenant's
    /// degradation cooldown — when the budget is exhausted, in which
    /// case the caller dead-letters instead of retrying.
    pub fn try_retry(&mut self, tenant: &str, now: Instant) -> bool {
        let default = (self.tenant_cap, self.default_timeout);
        let t = match self.tenants.entry(tenant.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(Tenant::new(1, default.0, default.1)),
        };
        if t.retry_budget == 0 {
            t.degraded_until = Some(now + DEGRADED_COOLDOWN);
            t.degraded_events += 1;
            return false;
        }
        t.retry_budget -= 1;
        t.retries += 1;
        true
    }

    pub fn record_dead_letter(&mut self, tenant: &str) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.dead_letters += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(specs: &str, global_cap: usize) -> FairQueues<u32> {
        FairQueues::new(
            &parse_tenant_specs(specs).expect("spec"),
            global_cap,
            0,
            Duration::from_secs(30),
            2,
        )
    }

    #[test]
    fn spec_parsing_accepts_weights_and_timeouts() {
        let specs = parse_tenant_specs("ci:4,batch:2:60000,adhoc").expect("parses");
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0], TenantSpec { name: "ci".into(), weight: 4, job_timeout: None });
        assert_eq!(specs[1].job_timeout, Some(Duration::from_millis(60_000)));
        assert_eq!(specs[2].weight, 1);
        assert!(parse_tenant_specs("bad name:1").is_err(), "space in name");
        assert!(parse_tenant_specs("x:0").is_err(), "zero weight");
        assert!(parse_tenant_specs("x:1:0").is_err(), "zero timeout");
        assert!(parse_tenant_specs("x:1:2:3").is_err(), "too many fields");
        assert!(parse_tenant_specs("x,x").is_err(), "duplicate");
        assert!(parse_tenant_specs("").expect("empty ok").is_empty());
    }

    #[test]
    fn tenant_names_are_validated() {
        assert!(valid_tenant("ci-prod_1"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("a b"));
        assert!(!valid_tenant(&"x".repeat(MAX_TENANT_LEN + 1)));
    }

    #[test]
    fn weighted_dequeue_tracks_weights() {
        let mut q = queues("heavy:3,light:1", 1000);
        let now = Instant::now();
        for i in 0..80u32 {
            assert!(matches!(q.admit("heavy", i, now), Admitted::Queued));
            assert!(matches!(q.admit("light", 100 + i, now), Admitted::Queued));
        }
        let mut heavy = 0;
        let mut light = 0;
        for _ in 0..40 {
            match q.pop(|_| true).expect("job").0.as_str() {
                "heavy" => heavy += 1,
                _ => light += 1,
            }
        }
        // Stride scheduling: of 40 dequeues, ~30 heavy / ~10 light.
        assert!((28..=32).contains(&heavy), "heavy got {heavy}/40");
        assert!((8..=12).contains(&light), "light got {light}/40");
    }

    #[test]
    fn backlogged_newcomer_is_not_starved() {
        let mut q = queues("noisy:1,quiet:1", 1000);
        let now = Instant::now();
        for i in 0..50u32 {
            assert!(matches!(q.admit("noisy", i, now), Admitted::Queued));
        }
        // Drain a while: the noisy tenant's pass advances.
        for _ in 0..20 {
            assert_eq!(q.pop(|_| true).expect("job").0, "noisy");
        }
        // A quiet job arriving now re-enters at virtual time and must be
        // served within two dequeues, not after the noisy backlog.
        assert!(matches!(q.admit("quiet", 999, now), Admitted::Queued));
        let order: Vec<String> = (0..2).filter_map(|_| q.pop(|_| true)).map(|(t, _)| t).collect();
        assert!(order.contains(&"quiet".to_string()), "quiet starved: {order:?}");
    }

    #[test]
    fn caps_shed_with_retry_hint_and_count() {
        let mut q = queues("a:1,b:1", 4);
        let now = Instant::now();
        // Per-tenant share of the global cap: 4 * 1/2 = 2 each.
        assert!(matches!(q.admit("a", 1, now), Admitted::Queued));
        assert!(matches!(q.admit("a", 2, now), Admitted::Queued));
        match q.admit("a", 3, now) {
            Admitted::Shed { job, retry_after_ms, reason } => {
                assert_eq!(job, 3, "shed hands the job back");
                assert!(retry_after_ms >= 50);
                assert_eq!(reason, ShedReason::TenantSaturated);
            }
            _ => panic!("expected tenant-cap shed"),
        }
        // b can still queue: a's overflow never ate b's share.
        assert!(matches!(q.admit("b", 4, now), Admitted::Queued));
        assert!(matches!(q.admit("b", 5, now), Admitted::Queued));
        match q.admit("b", 6, now) {
            Admitted::Shed { reason, .. } => assert_eq!(reason, ShedReason::GlobalSaturated),
            _ => panic!("expected global shed at cap 4"),
        }
        assert_eq!(q.iter().map(|(_, t)| t.shed).sum::<u64>(), 2);
        assert_eq!(q.queued_total(), 4);
    }

    #[test]
    fn retry_budget_exhaustion_degrades_then_recovers() {
        let mut q = queues("flaky:1", 100);
        let now = Instant::now();
        for _ in 0..RETRY_BUDGET_MAX {
            assert!(q.try_retry("flaky", now), "budget spends one per retry");
        }
        assert!(!q.try_retry("flaky", now), "exhausted budget refuses");
        // Degraded: submissions shed immediately with the cooldown hint.
        match q.admit("flaky", 1, now) {
            Admitted::Shed { reason, retry_after_ms, .. } => {
                assert_eq!(reason, ShedReason::Degraded);
                assert!(retry_after_ms <= DEGRADED_COOLDOWN.as_millis() as u64);
            }
            _ => panic!("degraded tenant must shed"),
        }
        // After the cooldown, admission resumes at half budget.
        let later = now + DEGRADED_COOLDOWN + Duration::from_millis(1);
        assert!(matches!(q.admit("flaky", 2, later), Admitted::Queued));
        let t = q.iter().find(|(n, _)| n.as_str() == "flaky").expect("tenant").1;
        assert_eq!(t.retry_budget, RETRY_BUDGET_MAX / 2);
        assert_eq!(t.degraded_events, 1);
    }

    #[test]
    fn settle_replenishes_budget_and_tracks_active() {
        let mut q = queues("t:1", 100);
        let now = Instant::now();
        assert!(matches!(q.admit("t", 1, now), Admitted::Queued));
        let (tenant, _) = q.pop(|_| true).expect("job");
        assert_eq!(q.iter().next().expect("t").1.active, 1);
        assert!(q.try_retry(&tenant, now));
        q.settle(&tenant, 120);
        let t = q.iter().next().expect("t").1;
        assert_eq!(t.active, 0);
        assert_eq!(t.done, 1);
        assert_eq!(t.retry_budget, RETRY_BUDGET_MAX, "a finished job earns a token back");
    }

    #[test]
    fn busy_jobs_are_skipped_in_place() {
        let mut q = queues("t:1", 100);
        let now = Instant::now();
        for i in 0..3u32 {
            assert!(matches!(q.admit("t", i, now), Admitted::Queued));
        }
        // Job 0 is "busy" (its state dir is held): the pop takes job 1.
        let (_, job) = q.pop(|j| *j != 0).expect("job");
        assert_eq!(job, 1);
        // Released: job 0 dequeues next, order preserved.
        let (_, job) = q.pop(|_| true).expect("job");
        assert_eq!(job, 0);
    }

    #[test]
    fn unknown_tenants_auto_register_up_to_the_cap() {
        let mut q = queues("", 10_000);
        let now = Instant::now();
        for i in 0..MAX_TENANTS {
            assert!(matches!(q.admit(&format!("t{i}"), 0, now), Admitted::Queued));
        }
        match q.admit("one-too-many", 0, now) {
            Admitted::Refused { error, .. } => assert!(error.contains("too many tenants")),
            _ => panic!("tenant table must be bounded"),
        }
    }

    #[test]
    fn requeue_front_runs_before_newer_work() {
        let mut q = queues("t:1", 100);
        let now = Instant::now();
        for i in 0..3u32 {
            assert!(matches!(q.admit("t", i, now), Admitted::Queued));
        }
        let (tenant, job) = q.pop(|_| true).expect("job");
        assert_eq!(job, 0);
        q.requeue_front(&tenant, job);
        assert_eq!(q.pop(|_| true).expect("job").1, 0, "retry precedes newer jobs");
    }
}
