//! E7 — §5 Q1: can we make LLM-generated semantics reliable?
//!
//! Sweep the hallucination rate of the LLM simulator and measure, with
//! and without the test-grounding cross-check:
//!
//! - **precision** of the rule set that reaches enforcement (fraction of
//!   enforced rules that are faithful or merely weakened — i.e. not
//!   wrong),
//! - **recall** of regression detection (fraction of the corpus's
//!   recurrences still blocked by the surviving rules).

use lisa::report::Table;
use lisa::{cross_check, Pipeline};
use lisa_analysis::TargetSpec;
use lisa_corpus::{all_cases, Case};
use lisa_experiments::{exhaustive_pipeline, section};
use lisa_oracle::{infer_rules, NoiseModel, NoisyRule, Perturbation, SemanticRule};

fn call_rules() -> Vec<(Case, SemanticRule)> {
    all_cases()
        .into_iter()
        .filter_map(|case| {
            let rule = infer_rules(case.original_ticket()).ok()?.rules.into_iter().next()?;
            matches!(rule.target, TargetSpec::Call { .. }).then_some((case, rule))
        })
        .collect()
}

fn is_not_wrong(p: &Perturbation) -> bool {
    matches!(p, Perturbation::Faithful | Perturbation::DroppedConjunct)
}

struct Outcome {
    enforced: usize,
    enforced_correct: usize,
    detected: usize,
}

fn evaluate(
    pipeline: &Pipeline,
    pairs: &[(Case, SemanticRule)],
    noisy: &[NoisyRule],
    filter: bool,
) -> Outcome {
    let mut out = Outcome { enforced: 0, enforced_correct: 0, detected: 0 };
    for ((case, _), n) in pairs.iter().zip(noisy.iter()) {
        if matches!(n.perturbation, Perturbation::Lost) {
            continue; // a lost rule never reaches enforcement either way
        }
        if filter && !cross_check(&case.versions.fixed, &n.rule).grounded {
            continue;
        }
        out.enforced += 1;
        if is_not_wrong(&n.perturbation) {
            out.enforced_correct += 1;
        }
        let report = pipeline.check_rule(&case.versions.regressed, &n.rule);
        if report.has_violation() && is_not_wrong(&n.perturbation) {
            out.detected += 1;
        }
    }
    out
}

fn main() {
    let pairs = call_rules();
    let rules: Vec<SemanticRule> = pairs.iter().map(|(_, r)| r.clone()).collect();
    let pipeline = exhaustive_pipeline();
    let total = pairs.len();

    section("E7: hallucination sweep (loss rate 5%, 3 seeds averaged)");
    let mut t = Table::new(&[
        "halluc. rate",
        "precision (raw)",
        "precision (+cross-check)",
        "recall (raw)",
        "recall (+cross-check)",
    ]);
    for rate in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut acc = [0.0f64; 4];
        let seeds = [11u64, 22, 33];
        for &seed in &seeds {
            let noisy = NoiseModel::new(rate, 0.05, seed).apply(&rules);
            let raw = evaluate(&pipeline, &pairs, &noisy, false);
            let filt = evaluate(&pipeline, &pairs, &noisy, true);
            acc[0] += raw.enforced_correct as f64 / raw.enforced.max(1) as f64;
            acc[1] += filt.enforced_correct as f64 / filt.enforced.max(1) as f64;
            acc[2] += raw.detected as f64 / total as f64;
            acc[3] += filt.detected as f64 / total as f64;
        }
        let n = seeds.len() as f64;
        t.row(&[
            format!("{:.0}%", rate * 100.0),
            format!("{:.2}", acc[0] / n),
            format!("{:.2}", acc[1] / n),
            format!("{:.2}", acc[2] / n),
            format!("{:.2}", acc[3] / n),
        ]);
    }
    println!("{}", t.render());
    println!(
        "shape check: without cross-checking, precision degrades with the hallucination \
         rate; with it, every wrong rule is filtered (precision stays 1.00) and nothing \
         useful is lost — recall under noise is bounded by the hallucination rate itself, \
         with or without the filter."
    );
}
