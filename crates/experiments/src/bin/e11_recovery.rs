//! E11 — durability: crash-recovery matrix over the journaled gate.
//!
//! Run a multi-rule durable gate to completion, then simulate a crash at
//! **every journal-record boundary**: truncate the write-ahead journal to
//! that prefix, resume, and assert
//!
//! - the recovered final verdict artifact is **byte-identical** to the
//!   uninterrupted run's,
//! - verdicts already journaled before the crash are **reused**, not
//!   re-executed (`fresh == rules − settled-in-prefix`, and the final
//!   journal holds exactly one check-finished record per rule),
//!
//! and then layer 20 seeded disk-fault plans (torn writes, short reads,
//! ENOSPC, fsync failures at the store's I/O seams) over the kill matrix:
//! faults may cost durability or force re-checks, but the verdict bytes
//! never change and no verdict is ever invented.

use std::path::PathBuf;
use std::sync::Arc;

use lisa::report::Table;
use lisa::{
    gate_durable, DiskFaultInjector, DurableOptions, GateOptions, PipelineConfig, RuleRegistry,
    TestSelection,
};
use lisa_analysis::TargetSpec;
use lisa_concolic::{discover_tests, SystemVersion};
use lisa_experiments::section;
use lisa_lang::Program;
use lisa_oracle::SemanticRule;
use lisa_store::{scan, GateEvent};

fn version() -> SystemVersion {
    let src = "struct Session { id: int, closing: bool }\n\
         global sessions: map<int, Session>;\n\
         fn create_ephemeral(s: Session, path: str) {}\n\
         fn delete_node(s: Session, path: str) {}\n\
         fn archive(s: Session) {}\n\
         fn prep_create(sid: int, path: str) {\n\
             let session: Session = sessions.get(sid);\n\
             if (session == null) { return; }\n\
             create_ephemeral(session, path);\n\
         }\n\
         fn prep_delete(sid: int, path: str) {\n\
             let session: Session = sessions.get(sid);\n\
             if (session == null || session.closing) { return; }\n\
             delete_node(session, path);\n\
         }\n\
         fn test_create() {\n\
             sessions.put(1, new Session { id: 1 });\n\
             prep_create(1, \"/a\");\n\
         }\n\
         fn test_delete() {\n\
             sessions.put(2, new Session { id: 2 });\n\
             prep_delete(2, \"/b\");\n\
         }";
    let p = Program::parse_single("zk", src).expect("fixture parses");
    let tests = discover_tests(&p, "test_");
    SystemVersion::new("zk", p, tests)
}

/// Four rules with distinct fates: violated (missing `closing` guard),
/// verified (fully guarded), not-covered (no test reaches `archive`),
/// verified (the null half of the create guard).
fn registry() -> RuleRegistry {
    let mut reg = RuleRegistry::new();
    for (id, callee, cond) in [
        ("ZK-1208-r0", "create_ephemeral", "s != null && s.closing == false"),
        ("ZK-DEL-r0", "delete_node", "s != null && s.closing == false"),
        ("ZK-ARCH-r0", "archive", "s != null"),
        ("ZK-NULL-r0", "create_ephemeral", "s != null"),
    ] {
        reg.register(
            SemanticRule::new(id, id, TargetSpec::Call { callee: callee.into() }, cond)
                .expect("fixture rule"),
        );
    }
    reg
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lisa-e11-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Resume from a journal truncated to `prefix` bytes, with optional disk
/// faults; return the report.
fn resume(
    tag: &str,
    prefix: &[u8],
    faults: Option<Arc<DiskFaultInjector>>,
) -> (lisa::DurableGateReport, Vec<u8>) {
    let dir = tmpdir(tag);
    std::fs::write(dir.join("wal.log"), prefix).expect("write truncated journal");
    let reg = registry();
    let durable = DurableOptions {
        state_dir: dir.clone(),
        disk_faults: faults.map(|f| f as Arc<dyn lisa_store::IoFaults>),
        ..DurableOptions::default()
    };
    let report = gate_durable(
        &reg,
        &version(),
        &PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() },
        &GateOptions::default(),
        &durable,
    )
    .expect("resume");
    let journal = std::fs::read(dir.join("wal.log")).unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);
    (report, journal)
}

fn finished_count(bytes: &[u8]) -> usize {
    scan(bytes)
        .records
        .iter()
        .filter(|r| {
            matches!(GateEvent::decode(r), Ok(GateEvent::RuleCheckFinished { .. }))
        })
        .count()
}

fn main() {
    section("E11: crash-recovery matrix (kill at every journal-record boundary)");

    // Uninterrupted baseline: the verdict artifact every recovery must
    // reproduce byte for byte.
    let dir0 = tmpdir("baseline");
    let reg = registry();
    let rules = reg.len();
    let baseline = gate_durable(
        &reg,
        &version(),
        &PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() },
        &GateOptions::default(),
        &DurableOptions { state_dir: dir0.clone(), ..DurableOptions::default() },
    )
    .expect("baseline run");
    let v0 = baseline.verdicts_text();
    let journal = std::fs::read(dir0.join("wal.log")).expect("baseline journal");
    let _ = std::fs::remove_dir_all(&dir0);
    assert_eq!(baseline.fresh, rules);
    assert!(baseline.durable, "baseline must journal cleanly");

    let scanned = scan(&journal);
    assert!(scanned.corrupt.is_empty());
    assert_eq!(scanned.torn_bytes, 0);
    let kill_points: Vec<u64> =
        std::iter::once(0u64).chain(scanned.boundaries.iter().copied()).collect();

    let mut t = Table::new(&[
        "kill after",
        "journal bytes",
        "settled in prefix",
        "reused",
        "fresh",
        "verdicts",
    ]);
    for (i, &kp) in kill_points.iter().enumerate() {
        let prefix = &journal[..kp as usize];
        let settled = finished_count(prefix);
        let (report, final_journal) = resume(&format!("kill-{i}"), prefix, None);
        assert_eq!(
            report.verdicts_text(),
            v0,
            "kill point {i} (byte {kp}): recovered verdicts must be byte-identical"
        );
        assert_eq!(report.reused, settled, "kill point {i}: settled verdicts are reused");
        assert_eq!(report.fresh, rules - settled, "kill point {i}: only the rest re-runs");
        assert_eq!(
            finished_count(&final_journal),
            rules,
            "kill point {i}: exactly one settled verdict per rule in the final journal"
        );
        t.row(&[
            format!("record {i}/{}", kill_points.len() - 1),
            format!("{kp}"),
            format!("{settled}"),
            format!("{}", report.reused),
            format!("{}", report.fresh),
            "identical".to_string(),
        ]);
    }
    println!("{}", t.render());

    section("E11b: 20 seeded disk-fault plans layered on the kill matrix");
    let mut fired_plans = 0usize;
    let mut degraded_runs = 0usize;
    let mut forced_rechecks = 0usize;
    for seed in 0..20u64 {
        let kp = kill_points[(seed as usize) % kill_points.len()] as usize;
        let prefix = &journal[..kp];
        let settled = finished_count(prefix);
        let injector = Arc::new(DiskFaultInjector::random(seed));
        let (report, _) = resume(&format!("fault-{seed}"), prefix, Some(injector.clone()));
        assert_eq!(
            report.verdicts_text(),
            v0,
            "fault plan {seed}: disk faults must never change the verdict bytes"
        );
        assert_eq!(report.reused + report.fresh, rules);
        // A short read can only lose journaled verdicts (forcing a
        // re-check); it can never fabricate one.
        assert!(report.reused <= settled, "fault plan {seed}: no invented verdicts");
        if !injector.fired().is_empty() {
            fired_plans += 1;
        }
        if !report.durable {
            degraded_runs += 1;
        }
        forced_rechecks += settled - report.reused;
    }
    let mut t2 = Table::new(&["plans", "plans that fired", "degraded runs", "forced re-checks", "verdict mismatches"]);
    t2.row(&[
        "20".to_string(),
        format!("{fired_plans}"),
        format!("{degraded_runs}"),
        format!("{forced_rechecks}"),
        "0".to_string(),
    ]);
    println!("{}", t2.render());
    assert!(fired_plans > 0, "the sweep must actually exercise disk faults");

    println!(
        "shape check: a gate killed at any journal-record boundary resumes to byte-identical \
         verdicts, re-running only rules whose outcomes were not yet durable; seeded torn \
         writes, short reads, ENOSPC, and fsync failures at the store's I/O seams can cost \
         durability or force re-checks, but never change a verdict byte or invent one."
    );
}
