//! E6 — §4 preliminary results: previously unknown bugs in the latest
//! versions. LISA enforces the rules mined from historical tickets
//! against the current head of each flagship system and reports the
//! unchecked paths no ticket ever described.

use lisa::report::{render_rule_report, Table};
use lisa_corpus::case;
use lisa_experiments::{exhaustive_pipeline, mined_rule, section};

fn main() {
    let pipeline = exhaustive_pipeline();
    let mut summary = Table::new(&["paper bug", "case", "new violation path", "witness"]);

    for (paper_bug, case_id) in [
        ("Bug #1 (HBASE-29296)", "hbase-snapshot-ttl"),
        ("Bug #2 (HDFS-17768)", "hdfs-observer-read"),
        ("(bonus) ZK multi-op", "zk-ephemeral"),
    ] {
        let case = case(case_id).expect("case");
        let rule = mined_rule(&case);
        let report = pipeline.check_rule(&case.versions.latest, &rule);
        section(&format!("E6: {paper_bug} — rule `{}` on {}@latest", rule.id, case_id));
        print!("{}", render_rule_report(&report));
        for chain in report.chains.iter().filter(|c| c.verdict.is_violated()) {
            if let lisa::ChainVerdict::Violated(v) = &chain.verdict {
                summary.row(&[
                    paper_bug.to_string(),
                    case_id.to_string(),
                    chain.rendered.clone(),
                    v.witness.to_string(),
                ]);
            }
        }
    }

    section("E6: summary — previously unknown bugs found in latest versions");
    println!("{}", summary.render());
    println!(
        "paper: 'Even in its current form, LISA uncovered two previously unknown, \
         community-confirmed bugs in the latest releases of HBase and HDFS.'"
    );
}
