//! E10 — robustness: fault-injection sweep over the enforcement gate.
//!
//! Replay the full corpus through the gate while a seeded fault injector
//! disrupts rule checks (panics, transient blips, solver-budget
//! exhaustion, malformed conditions, stalls) at increasing rates, and
//! measure:
//!
//! - **availability** — fraction of gate runs that returned a decision
//!   (the resilience contract says this must be 100% at every rate),
//! - **blocked (violation)** — regressions still caught by a completed
//!   check,
//! - **blocked (engine)** — fail-closed runs where a fault consumed the
//!   check and the gate blocked rather than guessed,
//! - **warned pass (open)** — the same faults under fail-open: the gate
//!   stays available and flags the gap,
//! - **retries** — transient faults absorbed by the bounded retry loop.

use lisa::report::Table;
use lisa::{
    FailMode, FaultInjector, FaultPlan, Gate, GateDecision, GateOptions,
    PipelineConfig, RuleRegistry, TestSelection,
};
use lisa_corpus::all_cases;
use lisa_experiments::{mined_rule, section};

struct Sweep {
    gates: usize,
    decided: usize,
    violation_blocks: usize,
    engine_blocks: usize,
    open_warned_passes: usize,
    retries: u64,
}

fn run_sweep(rate: f64, seeds: &[u64]) -> Sweep {
    let config =
        PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() };
    let mut out = Sweep {
        gates: 0,
        decided: 0,
        violation_blocks: 0,
        engine_blocks: 0,
        open_warned_passes: 0,
        retries: 0,
    };
    for &seed in seeds {
        for (idx, case) in all_cases().into_iter().enumerate() {
            let rule = mined_rule(&case);
            let ids = vec![rule.id.clone()];
            let mut registry = RuleRegistry::new();
            registry.register(rule);
            // Derive a per-case plan seed so each (seed, case) pair rolls
            // its own fault dice.
            let plan_seed = seed.wrapping_mul(1009).wrapping_add(idx as u64);
            for fail_mode in [FailMode::Closed, FailMode::Open] {
                let options = GateOptions {
                    fail_mode,
                    faults: Some(FaultInjector::new(FaultPlan::random(
                        plan_seed, rate, &ids,
                    ))),
                    ..GateOptions::default()
                };
                let report = Gate::new(&registry)
                    .config(config.clone())
                    .workers(2)
                    .options(options)
                    .run(&case.versions.regressed);
                out.gates += 1;
                // The decision is always one of Pass/Block — "decided"
                // counts runs that produced a complete report.
                if report.reports.len() == registry.len() {
                    out.decided += 1;
                }
                out.retries += report.retries;
                let violated = report.reports.iter().any(|r| r.has_violation());
                match fail_mode {
                    FailMode::Closed => {
                        if violated {
                            out.violation_blocks += 1;
                        } else if report.decision == GateDecision::Block
                            && report.engine_errors > 0
                        {
                            out.engine_blocks += 1;
                        }
                    }
                    FailMode::Open => {
                        if report.decision == GateDecision::Pass && report.engine_errors > 0
                        {
                            out.open_warned_passes += 1;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Silence the default panic-hook noise for the *injected* panics (they
/// are caught by the gate; the backtrace spam would drown the tables).
/// Genuine panics — including assertion failures below — still print.
fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with(lisa::faults::FAULT_PANIC_PREFIX) {
            default_hook(info);
        }
    }));
}

fn main() {
    quiet_injected_panics();
    section("E10: fault-injection sweep (3 seeds, fail-closed and fail-open)");
    let seeds = [7u64, 21, 42];
    let mut t = Table::new(&[
        "fault rate",
        "availability",
        "blocked (violation)",
        "blocked (engine, closed)",
        "warned pass (open)",
        "retries",
    ]);
    let mut baseline_violations = None;
    for rate in [0.0, 0.25, 0.5, 1.0] {
        let s = run_sweep(rate, &seeds);
        assert_eq!(
            s.decided, s.gates,
            "resilience contract: every gate run must return a decision"
        );
        if rate == 0.0 {
            assert_eq!(s.engine_blocks, 0, "no faults, no engine errors");
            baseline_violations = Some(s.violation_blocks);
        }
        t.row(&[
            format!("{:.0}%", rate * 100.0),
            format!("{}/{}", s.decided, s.gates),
            format!("{}", s.violation_blocks),
            format!("{}", s.engine_blocks),
            format!("{}", s.open_warned_passes),
            format!("{}", s.retries),
        ]);
        if let Some(base) = baseline_violations {
            assert!(
                s.violation_blocks <= base,
                "faults can only lose detections, never invent them"
            );
        }
    }
    println!("{}", t.render());
    println!(
        "shape check: availability is 100% at every fault rate — no injected panic, \
         exhausted budget, malformed condition, or stall ever aborts the gate. As the \
         rate climbs, completed-check detections decay and fail-closed converts the \
         consumed checks into engine blocks (safe), while fail-open converts them into \
         warned passes (available); transient blips are absorbed by bounded retry."
    );
}
