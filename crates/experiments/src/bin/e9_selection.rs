//! E9 — §3.2 test-selection ablation: RAG top-k over test embeddings vs
//! running everything vs random-k. Measured across the corpus's
//! regressed versions: tests executed (cost), chain coverage, and
//! whether the recurrence is still caught.

use lisa::report::Table;
use lisa::{ChainVerdict, Pipeline, PipelineConfig, TestSelection};
use lisa_corpus::all_cases;
use lisa_experiments::{mined_rule, section};

struct Agg {
    tests: u64,
    covered: u64,
    chains: u64,
    detected: usize,
    steps: u64,
}

fn run(selection: TestSelection) -> Agg {
    let mut agg = Agg { tests: 0, covered: 0, chains: 0, detected: 0, steps: 0 };
    for case in all_cases() {
        let rule = mined_rule(&case);
        let pipeline = Pipeline::new(PipelineConfig {
            selection: selection.clone(),
            ..PipelineConfig::default()
        });
        let report = pipeline.check_rule(&case.versions.regressed, &rule);
        agg.tests += report.stats.tests_executed;
        agg.chains += report.chains.len() as u64;
        agg.covered += report
            .chains
            .iter()
            .filter(|c| !matches!(c.verdict, ChainVerdict::NotCovered))
            .count() as u64;
        agg.detected += usize::from(report.has_violation());
        agg.steps += report.stats.interp_steps;
    }
    agg
}

fn main() {
    section("E9: test selection strategies across 16 regressed versions");
    let mut t = Table::new(&[
        "strategy",
        "tests executed",
        "chain coverage",
        "recurrences caught",
        "interp steps",
    ]);
    for (name, sel) in [
        ("RAG top-1".to_string(), TestSelection::Rag { k: 1 }),
        ("RAG top-2".to_string(), TestSelection::Rag { k: 2 }),
        ("RAG top-3 (LISA)".to_string(), TestSelection::Rag { k: 3 }),
        ("random-1 (seed 7)".to_string(), TestSelection::Random { k: 1, seed: 7 }),
        ("random-1 (seed 8)".to_string(), TestSelection::Random { k: 1, seed: 8 }),
        ("all tests".to_string(), TestSelection::All),
    ] {
        let a = run(sel);
        t.row(&[
            name,
            a.tests.to_string(),
            format!("{}/{}", a.covered, a.chains),
            format!("{}/16", a.detected),
            a.steps.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "shape check: RAG reaches full coverage and 16/16 detection with a fraction of \
         the executions; random selection of the same budget is unreliable."
    );
}
