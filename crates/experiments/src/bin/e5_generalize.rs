//! E5 — Figure 6: low-level semantics should be generalized. The
//! serialization rule at three scopes, evaluated on the recurrence
//! (ZK-3531 analogue) and on the clean latest version.

use lisa::report::Table;
use lisa_corpus::case;
use lisa_experiments::{exhaustive_pipeline, section};
use lisa_oracle::{infer_rules, rescope, Scope};

fn main() {
    let case = case("zk-sync-serialize").expect("case");
    let mined = infer_rules(case.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule");

    section("E5: the mined (specific) rule");
    println!("{} — {}", mined.id, mined.description);
    println!("contract: {}", mined.contract());

    section("E5: Figure 6 — scope vs recurrence detection vs false positives");
    let pipeline = exhaustive_pipeline();
    let mut t = Table::new(&[
        "scope",
        "target",
        "catches ZK-3531 recurrence?",
        "false positives on clean code",
    ]);
    for scope in [Scope::Specific, Scope::Generalized, Scope::NaiveBroad] {
        let rule = rescope(&mined, scope).expect("rescope");
        let on_regressed = pipeline.check_rule(&case.versions.regressed, &rule);
        let on_clean = pipeline.check_rule(&case.versions.latest, &rule);
        t.row(&[
            scope.to_string(),
            rule.target.to_string(),
            if on_regressed.violated_count() > 0 { "yes" } else { "NO" }.to_string(),
            on_clean.violated_count().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "shape check: only the generalized scope ('no blocking I/O within synchronized \
         blocks') both catches the cross-function recurrence and stays silent on clean code."
    );
}
