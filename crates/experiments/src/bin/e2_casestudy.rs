//! E2 — the Figures 2-3 case study, end to end: ZK-1208 is fixed, the
//! rule is mined and registered, and the ZK-1496-class change is blocked
//! at the gate a year later.

use lisa::report::{render_enforcement, render_rule_report};
use lisa::{Gate, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::case;
use lisa_experiments::section;
use lisa_oracle::infer_rules;

fn main() {
    let case = case("zk-ephemeral").expect("corpus case");
    let config =
        PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() };

    section("E2: the failure ticket (Figure 2)");
    let ticket = case.original_ticket();
    println!("{} — {}", ticket.id, ticket.title);
    println!("{}\n", ticket.description);
    println!("developer discussion:");
    for line in &ticket.discussion {
        println!("  - {line}");
    }
    println!("\ncode patch:");
    for (module, diff) in ticket.patch() {
        println!("--- {module}");
        print!("{diff}");
    }

    section("E2: inferred low-level semantics (Figure 3 / §3.1)");
    let inference = infer_rules(ticket).expect("inference");
    println!("high-level: {}", inference.report.high_level_semantics);
    for low in &inference.report.low_level_semantics {
        println!("low-level:  {}", low.description);
        println!("  target:    {}", low.target_statement);
        println!("  condition: {}", low.condition_statement);
    }
    println!("reasoning:  {}", inference.report.reasoning);
    let rule = &inference.rules[0];
    println!("\ncontract:   {}", rule.contract());

    section("E2: grounding against the fixed version (§5 cross-check)");
    let cc = lisa::cross_check(&case.versions.fixed, rule);
    println!("grounded: {} ({})", cc.grounded, cc.reason);

    let mut registry = RuleRegistry::new();
    registry.register(rule.clone());

    section("E2: gate on the fixed version (must pass)");
    let gate = Gate::new(&registry).config(config).workers(2);
    let fixed = gate.run(&case.versions.fixed);
    print!("{}", render_enforcement(&fixed));

    section("E2: gate on the ZK-1496-class change one year later (must block)");
    let regressed = gate.run(&case.versions.regressed);
    print!("{}", render_enforcement(&regressed));

    section("E2: the regression-test blind spot (paper §2.1)");
    let replay = lisa::baselines::regression_test_baseline(
        &case.versions.regressed,
        &ticket.regression_tests,
    );
    println!(
        "replaying {} regression test(s) from the original fix: {}",
        replay.tests_run,
        if replay.detected() { "DETECTED" } else { "all green — regression missed" }
    );

    section("E2: per-chain verdicts");
    print!("{}", render_rule_report(&regressed.reports[0]));
}
