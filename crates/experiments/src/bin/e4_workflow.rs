//! E4 — Figure 5: the system workflow, stage by stage, averaged over the
//! corpus. For every ticket: collect bundle → LLM-sim inference →
//! translation/validation → call-graph + execution tree → test selection
//! → concolic execution → SMT verdicts.

use std::time::Instant;

use lisa::report::Table;
use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_analysis::{execution_tree_filtered, CallGraph, TreeLimits};
use lisa_corpus::all_cases;
use lisa_experiments::{mined_rule, ms, section};
use lisa_oracle::{infer_rules, validate_rule, TestIndex};

fn main() {
    let cases = all_cases();
    let mut stage = [std::time::Duration::ZERO; 6];
    let mut sizes = (0usize, 0usize, 0u64, 0u64); // rules, chains, hits, solver calls

    for case in &cases {
        // Stage 1: inference from the ticket bundle.
        let t = Instant::now();
        let inferred = infer_rules(case.original_ticket());
        stage[0] += t.elapsed();
        let Ok(out) = inferred else { continue };
        sizes.0 += out.rules.len();

        // Stage 2: translation already happened inside inference; static
        // validation against the enforcement version.
        let rule = mined_rule(case);
        let version = &case.versions.regressed;
        let t = Instant::now();
        let _ = validate_rule(&version.program, &rule);
        stage[1] += t.elapsed();

        // Stage 3: call graph + execution tree.
        let t = Instant::now();
        let graph = CallGraph::build(&version.program);
        let tree = execution_tree_filtered(&graph, &rule.target, TreeLimits::default(), &|f| {
            f.starts_with("test_")
        });
        stage[2] += t.elapsed();
        sizes.1 += tree.chains.len();

        // Stage 4: embedding index + selection.
        let t = Instant::now();
        let index = TestIndex::build(&version.test_summaries());
        for chain in &tree.chains {
            let desc = lisa_oracle::describe_path(
                &chain.entry,
                &chain.functions(&graph),
                rule.target.callee(),
                &rule.condition_src,
            );
            let _ = index.query(&desc, 3);
        }
        stage[3] += t.elapsed();

        // Stage 5+6: concolic execution and SMT verdicts (the pipeline
        // measures them together; solver calls are counted separately).
        let pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::Rag { k: 3 },
            ..PipelineConfig::default()
        });
        let t = Instant::now();
        let report = pipeline.check_rule(version, &rule);
        stage[4] += t.elapsed();
        sizes.2 += report.stats.target_hits;
        sizes.3 += report.stats.solver_calls;

        // SMT-only share, re-measured on the recorded hits.
        let t = Instant::now();
        for _ in 0..report.stats.solver_calls {
            let _ = lisa_smt::violates(&rule.condition, &rule.condition);
        }
        stage[5] += t.elapsed();
    }

    section("E4: Figure 5 — workflow stages over 16 tickets");
    let mut t = Table::new(&["stage", "total (ms)", "notes"]);
    let notes = [
        format!("{} rules inferred from 16 tickets", sizes.0),
        "placeholder/field validation against the codebase".to_string(),
        format!("{} execution-tree chains", sizes.1),
        "hashed tf-idf embeddings, top-3 per chain".to_string(),
        format!("{} target hits / {} solver calls", sizes.2, sizes.3),
        "re-measured checker-vs-checker SMT baseline".to_string(),
    ];
    let labels = [
        "1. semantics inference (LLM sim)",
        "2. translation + static validation",
        "3. call graph + execution tree",
        "4. test selection (RAG)",
        "5. concolic assertion + verdicts",
        "6. SMT share (diagnostic)",
    ];
    for i in 0..6 {
        t.row(&[labels[i].to_string(), ms(stage[i]), notes[i].clone()]);
    }
    println!("{}", t.render());
    let total: std::time::Duration = stage[..5].iter().sum();
    println!("end-to-end (stages 1-5): {} ms for the whole corpus", ms(total));
}
