//! Run every experiment binary in sequence (the EXPERIMENTS.md driver).
//!
//! Equivalent to:
//! `for e in e1..e9; do cargo run --release -p lisa-experiments --bin $e; done`

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let bins = [
        "e1_study",
        "e2_casestudy",
        "e3_comparison",
        "e4_workflow",
        "e5_generalize",
        "e6_newbugs",
        "e7_reliability",
        "e8_pruning",
        "e9_selection",
        "e10_faults",
    ];
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e} (build with the same profile first)"));
        assert!(status.success(), "{bin} failed");
    }
}
