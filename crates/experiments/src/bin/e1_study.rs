//! E1 — the §2.1 regression study table.
//!
//! Paper claims regenerated here: "we collect and analyze 16 regression
//! cases … In total we study 34 software bugs"; "68% of the studied
//! failures violate old semantics"; "this feature has been associated
//! with 46 related bugs over the past 14 years" (reported as the
//! per-feature bug-density axis); test-suite volume per system.

use lisa::report::Table;
use lisa_corpus::{all_cases, study_stats};
use lisa_experiments::section;

fn main() {
    let cases = all_cases();
    let stats = study_stats(&cases);

    section("E1: regression-failure study corpus (paper §2.1)");
    let mut t = Table::new(&["system", "cases", "bugs"]);
    for (system, c, b) in &stats.per_system {
        t.row(&[system.clone(), c.to_string(), b.to_string()]);
    }
    t.row(&["TOTAL".into(), stats.cases.to_string(), stats.bugs.to_string()]);
    println!("{}", t.render());

    section("E1: per-case detail");
    let mut t = Table::new(&[
        "case",
        "feature",
        "modelled on",
        "bugs",
        "gap (days)",
        "old semantic?",
    ]);
    for c in &cases {
        t.row(&[
            c.meta.id.clone(),
            c.meta.feature.clone(),
            c.meta.modelled_on.clone(),
            c.bug_count().to_string(),
            c.meta.recurrence_gap_days.to_string(),
            if c.meta.violates_old_semantics { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", t.render());

    section("E1: headline numbers vs paper");
    let mut t = Table::new(&["metric", "paper", "corpus"]);
    t.row(&["regression cases studied".into(), "16".into(), stats.cases.to_string()]);
    t.row(&["software bugs studied".into(), "34".into(), stats.bugs.to_string()]);
    t.row(&[
        "failures violating old semantics".into(),
        "68%".into(),
        format!("{:.0}%", stats.old_semantics_fraction * 100.0),
    ]);
    t.row(&[
        "mean recurrence gap".into(),
        "~1 year".into(),
        format!("{:.0} days", stats.mean_recurrence_gap_days),
    ]);
    t.row(&[
        "tests per system (scale axis)".into(),
        "1,309 files avg".into(),
        format!("{:.1} tests/version (mini scale)", stats.mean_tests_per_version),
    ]);
    t.row(&[
        "source volume".into(),
        "10k-100k LoC".into(),
        format!("{:.0} SIR lines/version (mini scale)", stats.mean_lines_per_version),
    ]);
    println!("{}", t.render());
}
