//! E3 — Figure 4: comparison with alternative approaches across the 16
//! regressed versions.
//!
//! - **regression testing** replays the tests added by the original fix;
//! - **LISA** enforces the mined rule (relevance pruning + RAG inputs);
//! - **LISA (exhaustive)** disables pruning and selection — the
//!   convergence point toward verification-style full coverage;
//! - **verification (cost model)** counts the execution paths a
//!   refinement proof must discharge.
//!
//! The paper's shape to reproduce: testing is cheap but blind to
//! cross-path recurrences; verification covers everything at exploding
//! cost; LISA detects the recurrences at a cost close to testing.

use std::time::Instant;

use lisa::baselines::{regression_test_baseline, verification_cost};
use lisa::report::Table;
use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_concolic::Policy;
use lisa_corpus::all_cases;
use lisa_experiments::{mined_rule, ms, section};

fn main() {
    let cases = all_cases();
    let mut rows = Table::new(&[
        "case",
        "testing",
        "lisa",
        "lisa-exhaustive",
        "verif paths",
        "t_test(ms)",
        "t_lisa(ms)",
        "t_exh(ms)",
    ]);
    let mut detect = [0usize; 3];
    let mut totals = [std::time::Duration::ZERO; 3];
    let mut verif_paths_total: u64 = 0;
    let mut lisa_constraints = 0u64;
    let mut exhaustive_constraints = 0u64;

    for case in &cases {
        let rule = mined_rule(case);
        let version = &case.versions.regressed;

        let t0 = Instant::now();
        let replay =
            regression_test_baseline(version, &case.original_ticket().regression_tests);
        let t_test = t0.elapsed();

        let lisa_pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::Rag { k: 3 },
            policy: Policy::RelevantOnly,
            ..PipelineConfig::default()
        });
        let t0 = Instant::now();
        let lisa_report = lisa_pipeline.check_rule(version, &rule);
        let t_lisa = t0.elapsed();

        let exhaustive_pipeline = Pipeline::new(PipelineConfig {
            selection: TestSelection::All,
            policy: Policy::RecordAll,
            ..PipelineConfig::default()
        });
        let t0 = Instant::now();
        let exhaustive_report = exhaustive_pipeline.check_rule(version, &rule);
        let t_exh = t0.elapsed();

        let vcost = verification_cost(version, &rule.target);
        verif_paths_total = verif_paths_total.saturating_add(vcost);
        lisa_constraints += lisa_report.stats.branches_recorded;
        exhaustive_constraints += exhaustive_report.stats.branches_recorded;

        let mark = |b: bool| if b { "DETECT" } else { "miss" }.to_string();
        detect[0] += usize::from(replay.detected());
        detect[1] += usize::from(lisa_report.has_violation());
        detect[2] += usize::from(exhaustive_report.has_violation());
        totals[0] += t_test;
        totals[1] += t_lisa;
        totals[2] += t_exh;
        rows.row(&[
            case.meta.id.clone(),
            mark(replay.detected()),
            mark(lisa_report.has_violation()),
            mark(exhaustive_report.has_violation()),
            vcost.to_string(),
            ms(t_test),
            ms(t_lisa),
            ms(t_exh),
        ]);
    }

    section("E3: Figure 4 — per-case detection and cost on the regressed versions");
    println!("{}", rows.render());

    section("E3: Figure 4 — summary (who wins, by what factor)");
    let mut t = Table::new(&["approach", "recurrences detected", "total cost"]);
    t.row(&[
        "regression testing".into(),
        format!("{}/16", detect[0]),
        format!("{} ms (replays only the old trace)", ms(totals[0])),
    ]);
    t.row(&[
        "LISA (pruned + RAG)".into(),
        format!("{}/16", detect[1]),
        format!("{} ms, {} recorded constraints", ms(totals[1]), lisa_constraints),
    ]);
    t.row(&[
        "LISA exhaustive".into(),
        format!("{}/16", detect[2]),
        format!("{} ms, {} recorded constraints", ms(totals[2]), exhaustive_constraints),
    ]);
    t.row(&[
        "full verification (cost model)".into(),
        "16/16 by construction".into(),
        format!("{verif_paths_total} proof paths + manual specs/proof maintenance"),
    ]);
    println!("{}", t.render());
    println!(
        "shape check: testing detects {}/16, LISA {}/16; LISA records {:.1}x fewer \
         constraints than the unpruned run.",
        detect[0],
        detect[1],
        exhaustive_constraints as f64 / lisa_constraints.max(1) as f64
    );
}
