//! E8 — §3.2 pruning ablation: "The tree can still be huge, so we prune
//! further: the concolic engine follows only branches whose guards
//! involve variables relevant to the semantic."
//!
//! Two measurements:
//! 1. corpus-wide: recorded constraints and wall time, pruned vs
//!    unpruned, same verdicts;
//! 2. scaling: a synthetic system where the number of irrelevant guards
//!    grows — the unpruned recorder scales with program size, the pruned
//!    one with rule-relevant state only.

use std::time::Instant;

use lisa::report::Table;
use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_analysis::TargetSpec;
use lisa_concolic::Policy;
use lisa_corpus::all_cases;
use lisa_experiments::{mined_rule, ms, section};
use lisa_oracle::SemanticRule;

fn pipeline(policy: Policy) -> Pipeline {
    Pipeline::new(PipelineConfig {
        selection: TestSelection::All,
        policy,
        ..PipelineConfig::default()
    })
}

fn main() {
    section("E8: corpus-wide pruning ablation (regressed versions)");
    let mut recorded = [0u64; 2];
    let mut wall = [std::time::Duration::ZERO; 2];
    let mut verdicts_agree = true;
    for case in all_cases() {
        let rule = mined_rule(&case);
        let version = &case.versions.regressed;
        let t = Instant::now();
        let pruned = pipeline(Policy::RelevantOnly).check_rule(version, &rule);
        wall[0] += t.elapsed();
        let t = Instant::now();
        let full = pipeline(Policy::RecordAll).check_rule(version, &rule);
        wall[1] += t.elapsed();
        recorded[0] += pruned.stats.branches_recorded;
        recorded[1] += full.stats.branches_recorded;
        verdicts_agree &= pruned.has_violation() == full.has_violation();
    }
    let mut t = Table::new(&["policy", "recorded constraints", "wall (ms)"]);
    t.row(&["relevant-only (LISA)".into(), recorded[0].to_string(), ms(wall[0])]);
    t.row(&["record-all (unpruned)".into(), recorded[1].to_string(), ms(wall[1])]);
    println!("{}", t.render());
    println!(
        "verdicts identical under both policies: {verdicts_agree}; pruning drops {:.1}% \
         of constraints.\n",
        100.0 * (1.0 - recorded[0] as f64 / recorded[1].max(1) as f64)
    );

    section("E8: scaling with irrelevant guards (synthetic)");
    let mut t = Table::new(&[
        "irrelevant guards",
        "recorded (pruned)",
        "recorded (unpruned)",
        "ratio",
    ]);
    for n in [4usize, 16, 64, 256] {
        let (version, rule) = synthetic(n);
        let pruned = pipeline(Policy::RelevantOnly).check_rule(&version, &rule);
        let full = pipeline(Policy::RecordAll).check_rule(&version, &rule);
        assert_eq!(pruned.has_violation(), full.has_violation());
        t.row(&[
            n.to_string(),
            pruned.stats.branches_recorded.to_string(),
            full.stats.branches_recorded.to_string(),
            format!(
                "{:.1}x",
                full.stats.branches_recorded as f64
                    / pruned.stats.branches_recorded.max(1) as f64
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "shape check: unpruned recording grows linearly with irrelevant state; the \
         relevance-pruned recorder stays flat (the paper's motivation for pruning)."
    );
}

/// A system whose request path evaluates `n` rule-irrelevant guards
/// before the guarded action.
fn synthetic(n: usize) -> (lisa_concolic::SystemVersion, SemanticRule) {
    let mut sys = String::from(
        "struct Item { id: int, ok: bool }\n\
         global items: map<int, Item>;\n\
         global done: map<str, int>;\n\
         global counters: map<int, int>;\n\n\
         fn act(e: Item, tag: str) { done.put(tag, e.id); }\n\n\
         fn handle(eid: int, tag: str) {\n\
             let e: Item = items.get(eid);\n\
             if (e == null || e.ok == false) { return; }\n",
    );
    for i in 0..n {
        sys.push_str(&format!(
            "    let c{i} = counters.get({i});\n    if (c{i} > 1000) {{ log(\"hot\"); }}\n"
        ));
    }
    sys.push_str("    act(e, tag);\n}\n\n");
    sys.push_str(
        "fn seed(id: int, ok: bool) { items.put(id, new Item { id: id, ok: ok }); }\n",
    );
    let tests = "fn test_handle_healthy() {\n    seed(1, true);\n    handle(1, \"t\");\n    assert(done.contains(\"t\"), \"acted\");\n}\n";
    let program = lisa_lang::Program::parse(&[("sys", sys.as_str()), ("tests", tests)])
        .expect("synthetic parses");
    let errors = lisa_lang::check_program(&program);
    assert!(errors.is_empty(), "{errors:?}");
    let version = lisa_concolic::SystemVersion::new(
        format!("synthetic-{n}"),
        program,
        vec![lisa_concolic::TestCase::new(
            "test_handle_healthy",
            "healthy item goes through handle",
        )],
    );
    let rule = SemanticRule::new(
        "SYN-r0",
        "act only on ok items",
        TargetSpec::Call { callee: "act".into() },
        "e != null && e.ok == true",
    )
    .expect("rule");
    (version, rule)
}
