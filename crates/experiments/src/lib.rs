//! # lisa-experiments
//!
//! Experiment harnesses regenerating every table and figure of the paper
//! (index in DESIGN.md §4; outputs recorded in EXPERIMENTS.md). Each
//! binary prints the rows the paper reports:
//!
//! - `e1_study` — the §2.1 study table (16 cases / 34 bugs, …),
//! - `e2_casestudy` — Figures 2-3 end to end,
//! - `e3_comparison` — Figure 4 (testing vs LISA vs verification),
//! - `e4_workflow` — Figure 5 stage breakdown,
//! - `e5_generalize` — Figure 6 generalization scopes,
//! - `e6_newbugs` — §4 Bug #1 / Bug #2,
//! - `e7_reliability` — §5 Q1 noise sweep,
//! - `e8_pruning` — §3.2 relevance pruning ablation,
//! - `e9_selection` — §3.2 test-selection ablation,
//! - `e10_faults` — fault-injection sweep over the gate,
//! - `repro_all` — everything above in sequence.

#![forbid(unsafe_code)]

use lisa::{Pipeline, PipelineConfig, TestSelection};
use lisa_analysis::TargetSpec;
use lisa_corpus::Case;
use lisa_oracle::{infer_rules, rescope, Scope, SemanticRule};

/// Mine the case's rule from its original ticket, generalizing the
/// builtin family (the same convention the integration tests use).
pub fn mined_rule(case: &Case) -> SemanticRule {
    let out = infer_rules(case.original_ticket())
        .unwrap_or_else(|e| panic!("{}: inference failed: {e}", case.meta.id));
    let rule = out.rules.into_iter().next().expect("at least one rule");
    match &rule.target {
        TargetSpec::Call { .. } => rule,
        _ => rescope(&rule, Scope::Generalized).expect("builtin rules rescope"),
    }
}

/// The standard exhaustive-input pipeline used when an experiment is not
/// about selection.
pub fn exhaustive_pipeline() -> Pipeline {
    Pipeline::new(PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() })
}

/// Paper-style section header.
pub fn section(title: &str) {
    println!("\n==== {title} ====\n");
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}
