//! Property test for journal shipping: a follower that applies the
//! shipped frame stream — any prefix of it, i.e. the leader killed at
//! any frame boundary — and then recovers through the ordinary
//! [`RunStore`] open path lands in exactly the state the leader held
//! when that frame was published.
//!
//! This is the replication analogue of `prop.rs`'s "checkpoint + tail ≡
//! full journal": here the claim is "shipped (snapshot + record tail) ≡
//! leader's in-memory state", over randomized interleavings of appends,
//! checkpoints, and kill points.

use std::path::PathBuf;
use std::time::Duration;

use lisa_store::{
    decode_wire, Applier, BusPoll, ReplBus, RuleOutcome, RunState, RunStore, Wire,
};
use lisa_util::Prng;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lisa-replprop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Drain every frame past `pos` from the bus (retention is sized so the
/// test never gaps).
fn drain(bus: &ReplBus, pos: &mut u64) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        match bus.poll_after(*pos, Duration::from_millis(1)) {
            BusPoll::Frames(frames) => {
                for (seq, payload) in frames {
                    *pos = seq;
                    out.push(payload.as_ref().clone());
                }
            }
            BusPoll::Idle { .. } => return out,
            BusPoll::Gap => panic!("retention too small for the test"),
        }
    }
}

#[test]
fn shipped_prefix_recovers_to_the_leaders_state_at_that_frame() {
    for seed in 0..25u64 {
        let mut rng = Prng::seed_from_u64(seed);
        let root = tmpdir(&format!("leader-{seed}"));
        let bus = ReplBus::with_retention(&root, 100_000);
        let run_key = "prop-key";
        let mut store =
            RunStore::open_replicated(root.join("job"), run_key, None, Some(bus.clone()))
                .expect("leader store");

        // Random op sequence. After every op, record the frames it
        // published and the leader's state once it settled — one shadow
        // entry per frame, because a kill can land between any two
        // frames (including between a checkpoint's snapshot and reset,
        // where the state is unchanged by construction).
        let mut pos = 0u64;
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut shadows: Vec<RunState> = Vec::new();
        for f in drain(&bus, &mut pos) {
            frames.push(f);
            shadows.push(store.state.clone());
        }
        let ops = 4 + rng.gen_index(12);
        for _ in 0..ops {
            match rng.gen_index(4) {
                0 => store.record_started(&format!("R{}", rng.gen_index(5))),
                1 => {
                    let violated = rng.gen_index(2) as u64;
                    store.record_finished(RuleOutcome {
                        rule_id: format!("R{}", rng.gen_index(5)),
                        fingerprint: format!("[verified] a -> b\nviolated={violated}"),
                        verified: 1,
                        violated,
                        not_covered: 0,
                        engine_errors: 0,
                        degraded: false,
                        sanity_ok: true,
                        retries: rng.gen_index(3) as u64,
                    });
                }
                2 => store.record_run_finished(if rng.gen_bool(0.5) { "PASS" } else { "BLOCK" }),
                _ => store.checkpoint().expect("checkpoint"),
            }
            for f in drain(&bus, &mut pos) {
                frames.push(f);
                shadows.push(store.state.clone());
            }
        }
        assert!(!frames.is_empty(), "seed {seed}: the run published nothing");

        // Kill the leader at every frame boundary: apply the first k
        // frames on a fresh follower root, recover through RunStore, and
        // compare against the shadow.
        for k in 0..=frames.len() {
            let froot = tmpdir(&format!("follower-{seed}-{k}"));
            let applier = Applier::new(&froot).expect("applier");
            for payload in &frames[..k] {
                match decode_wire(payload).expect("shipped frame decodes") {
                    Wire::Event { event, .. } => applier.apply(&event).expect("apply"),
                    other => panic!("bus never ships {other:?}"),
                }
            }
            let recovered =
                RunStore::open(froot.join("job"), run_key, None).expect("follower recovery");
            let expected = if k == 0 {
                // Nothing shipped yet: the follower starts the run fresh,
                // exactly as a leader opening an empty directory would.
                RunState { run_key: Some(run_key.to_string()), ..RunState::default() }
            } else {
                shadows[k - 1].clone()
            };
            assert_eq!(
                recovered.state, expected,
                "seed {seed}, kill point {k}: follower recovery diverged from the leader"
            );
            let _ = std::fs::remove_dir_all(&froot);
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
