//! Property tests for the durable store, seeded so failures reproduce.
//!
//! The recovery design rests on three algebraic facts, each checked here
//! over arbitrary generated event sequences and corruptions:
//!
//! 1. **Replay is idempotent** — applying a journal twice yields the
//!    same state as applying it once (so a resumed process that replays
//!    an already-applied prefix cannot drift).
//! 2. **Checkpoint + tail ≡ full journal** — snapshotting at any point
//!    and replaying only the tail reconstructs exactly the state of
//!    replaying everything (so compaction never changes meaning).
//! 3. **Corruption only shrinks, never corrupts** — cutting or flipping
//!    bytes anywhere in the journal file yields, on reopen, a clean
//!    prefix of the original records (possibly with quarantined middles
//!    skipped), never a record that was not written.

use lisa_store::{scan, GateEvent, Journal, RuleOutcome, RunState};
use lisa_util::Prng;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lisa-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Generate an arbitrary (but decodable) gate event.
fn arb_event(rng: &mut Prng) -> GateEvent {
    let rule_pool = ["ZK-1208-r0", "SHOP-1-r0", "SHOP-2-r0", "AUD-1-r0", "X"];
    match rng.gen_index(4) {
        0 => GateEvent::RunStarted { run_key: format!("key-{}", rng.gen_index(3)) },
        1 => GateEvent::RuleCheckStarted {
            rule_id: rule_pool[rng.gen_index(rule_pool.len())].to_string(),
        },
        2 => {
            let id = rule_pool[rng.gen_index(rule_pool.len())];
            GateEvent::RuleCheckFinished {
                outcome: RuleOutcome {
                    rule_id: id.to_string(),
                    fingerprint: format!(
                        "[verified] p{} -> q\n[VIOLATED] r={}\t%",
                        rng.gen_index(100),
                        rng.gen_index(10)
                    ),
                    verified: rng.gen_index(5) as u64,
                    violated: rng.gen_index(3) as u64,
                    not_covered: rng.gen_index(2) as u64,
                    engine_errors: rng.gen_index(2) as u64,
                    degraded: rng.gen_bool(0.2),
                    sanity_ok: rng.gen_bool(0.9),
                    retries: rng.gen_index(4) as u64,
                },
            }
        }
        _ => GateEvent::RunFinished {
            decision: if rng.gen_bool(0.5) { "PASS" } else { "BLOCK" }.to_string(),
        },
    }
}

/// A run sequence that starts with RunStarted under one key (arbitrary
/// events after that), mirroring what the gate actually writes.
fn arb_sequence(rng: &mut Prng, len: usize) -> Vec<GateEvent> {
    let mut events = vec![GateEvent::RunStarted { run_key: "key-0".to_string() }];
    for _ in 0..len {
        events.push(arb_event(rng));
    }
    events
}

fn state_of(events: &[GateEvent]) -> RunState {
    let mut s = RunState::default();
    for e in events {
        s.apply(e);
    }
    s
}

/// Canonical comparable rendering of a RunState.
fn canon(s: &RunState) -> String {
    let mut out = String::new();
    out.push_str(&format!("run_key={:?}\n", s.run_key));
    out.push_str(&format!("started={:?}\n", s.started));
    for o in &s.finished {
        out.push_str(&format!("finished {} {:?} v={} x={} nc={} ee={} d={} s={} r={}\n",
            o.rule_id, o.fingerprint, o.verified, o.violated, o.not_covered,
            o.engine_errors, o.degraded, o.sanity_ok, o.retries));
    }
    out.push_str(&format!("decision={:?}\n", s.decision));
    out
}

#[test]
fn replay_is_idempotent() {
    for seed in 0..50u64 {
        let mut rng = Prng::seed_from_u64(0xD0_0D + seed);
        let len = 1 + rng.gen_index(40);
        let events = arb_sequence(&mut rng, len);
        let once = state_of(&events);
        // Apply the whole history a second time on top of the first.
        let mut twice = state_of(&events);
        for e in &events {
            twice.apply(e);
        }
        assert_eq!(canon(&once), canon(&twice), "seed {seed}: double replay drifted");
    }
}

#[test]
fn checkpoint_plus_tail_equals_full_replay() {
    for seed in 0..50u64 {
        let mut rng = Prng::seed_from_u64(0xC4E0 + seed);
        let len = 1 + rng.gen_index(40);
        let events = arb_sequence(&mut rng, len);
        let full = state_of(&events);
        // Checkpoint at every prefix boundary, not just one arbitrary cut.
        for cut in 0..=events.len() {
            let snapshot = state_of(&events[..cut]).to_snapshot();
            let mut resumed = RunState::from_snapshot(&snapshot);
            for e in &events[cut..] {
                resumed.apply(e);
            }
            assert_eq!(
                canon(&full),
                canon(&resumed),
                "seed {seed}: checkpoint at {cut}/{} diverged",
                events.len()
            );
        }
    }
}

#[test]
fn corruption_only_loses_a_suffix_or_quarantines_never_invents() {
    let dir = tmpdir("corrupt");
    for seed in 0..30u64 {
        let mut rng = Prng::seed_from_u64(0xBAD + seed);
        let len = 1 + rng.gen_index(20);
        let events = arb_sequence(&mut rng, len);
        let path = dir.join(format!("wal-{seed}.log"));
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path, None).expect("open");
            for e in &events {
                j.append(&e.encode()).expect("append");
            }
        }
        let pristine = std::fs::read(&path).expect("read");
        let written: Vec<Vec<u8>> = events.iter().map(|e| e.encode()).collect();

        // Corruption 1: cut the file at an arbitrary byte offset.
        let cut = rng.gen_index(pristine.len() + 1);
        std::fs::write(&path, &pristine[..cut]).expect("truncate");
        let (_, report) = Journal::open(&path, None).expect("reopen after cut");
        assert!(
            report.records.iter().eq(written.iter().take(report.records.len())),
            "seed {seed}: cut at {cut} produced non-prefix records"
        );

        // Corruption 2: flip one byte mid-file; surviving records must
        // each be byte-identical to something that was actually written.
        std::fs::write(&path, &pristine).expect("restore");
        let mut mangled = pristine.clone();
        let at = rng.gen_index(mangled.len());
        mangled[at] ^= 0x41;
        std::fs::write(&path, &mangled).expect("mangle");
        let (_, report) = Journal::open(&path, None).expect("reopen after flip");
        for rec in &report.records {
            assert!(
                written.contains(rec),
                "seed {seed}: flip at {at} fabricated record {rec:?}"
            );
        }
        assert!(
            report.records.len() >= written.len().saturating_sub(2),
            "seed {seed}: one flipped byte lost more than its own frame + tail resync"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_boundaries_are_exact_replay_prefixes() {
    // The E11 kill-matrix depends on this: truncating the journal at
    // boundary k must replay exactly the first k records.
    let mut rng = Prng::seed_from_u64(0xB0B);
    let events = arb_sequence(&mut rng, 25);
    let mut bytes = Vec::new();
    for e in &events {
        bytes.extend_from_slice(&lisa_store::journal::frame(&e.encode()));
    }
    let s = scan(&bytes);
    assert_eq!(s.records.len(), events.len());
    assert_eq!(s.boundaries.len(), events.len(), "one end-offset per record");
    // Kill point 0 (nothing durable yet) plus each record's end offset.
    for (k, b) in std::iter::once(0u64).chain(s.boundaries.iter().copied()).enumerate() {
        let cut = scan(&bytes[..b as usize]);
        assert_eq!(cut.records.len(), k, "boundary {k} is not a {k}-record prefix");
        assert_eq!(cut.torn_bytes, 0);
    }
}
