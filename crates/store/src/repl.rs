//! Leader → follower journal shipping (Passive Redundancy).
//!
//! The store layer is single-node; this module makes its *state*
//! replicable. A leader publishes every durable mutation of its state
//! root — journal record appends, atomic file (snapshot) writes, journal
//! resets — onto a [`ReplBus`]; subscribers (followers) receive those
//! mutations as length-prefixed, CRC'd wire frames and apply them into
//! their own state root with an [`Applier`]. Because the follower's root
//! is maintained as a byte-faithful mirror of the leader's journals, a
//! promoted follower recovers through the *existing* `RunStore` replay
//! path — resuming in-flight runs exactly as `resume` does today.
//!
//! Wire format (one frame, same envelope as the on-disk journal):
//!
//! ```text
//! len: u32 LE | crc: u64 LE (FNV-1a over payload) | payload
//! ```
//!
//! Payload layout (binary, little-endian, versioned by the NDJSON
//! handshake that precedes the stream — `{"v":1,"op":"follow"}`):
//!
//! ```text
//! tag u8 | seq u64 | tag-specific fields
//!   1 FileSnapshot:  path_len u16 | path | data_len u32 | data
//!   2 Append:        path_len u16 | path | rec_len u32 | record payload
//!   3 Reset:         path_len u16 | path
//!   4 Heartbeat:     bytes u64   (leader's cumulative published bytes)
//!   5 SyncDone:      bytes u64
//! ```
//!
//! This codepath is **network-facing**: every length field is
//! bounds-checked against the remaining buffer and a sane maximum before
//! any allocation, a hostile path can never escape the follower's state
//! root, and a frame that fails its checksum is *rejected* — the decoder
//! reports it and the follower re-requests a full sync rather than
//! guessing where the next frame starts.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Component, Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::journal::{fnv1a, frame, write_file_atomic, FRAME_HEADER, MAX_RECORD};

/// Replication protocol version, agreed in the NDJSON handshake before
/// any binary frame flows.
pub const REPL_VERSION: u64 = 1;

/// Upper bound on one wire frame payload: a full record or snapshot plus
/// headroom for the header and a path. A length above this is treated as
/// corruption, never allocated.
pub const MAX_WIRE_FRAME: u32 = MAX_RECORD + 4096;

/// Longest relative path a frame may name.
const MAX_PATH: usize = 512;

// ---------------------------------------------------------------------------
// Events and wire codec
// ---------------------------------------------------------------------------

/// One replicated mutation of the leader's state root. Paths are
/// *relative* to the state root on both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplEvent {
    /// Replace the whole file atomically (initial sync, checkpoints).
    FileSnapshot { path: String, data: Vec<u8> },
    /// Append one journal record (the payload, not the framed bytes).
    Append { path: String, record: Vec<u8> },
    /// Truncate a journal to empty (checkpoint absorbed it).
    Reset { path: String },
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wire {
    /// A state mutation, with the bus sequence number that orders it.
    Event { seq: u64, event: ReplEvent },
    /// Leader liveness + progress: its current sequence number and
    /// cumulative published bytes (the follower's lag denominators).
    Heartbeat { seq: u64, bytes: u64 },
    /// End of the initial full sync: the follower is caught up to `seq`.
    SyncDone { seq: u64, bytes: u64 },
}

fn put_path(out: &mut Vec<u8>, path: &str) {
    out.extend_from_slice(&(path.len().min(u16::MAX as usize) as u16).to_le_bytes());
    out.extend_from_slice(path.as_bytes());
}

/// Encode one wire payload (the part inside the frame envelope).
pub fn encode_wire(wire: &Wire) -> Vec<u8> {
    let mut out = Vec::new();
    match wire {
        Wire::Event { seq, event } => match event {
            ReplEvent::FileSnapshot { path, data } => {
                out.push(1);
                out.extend_from_slice(&seq.to_le_bytes());
                put_path(&mut out, path);
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            ReplEvent::Append { path, record } => {
                out.push(2);
                out.extend_from_slice(&seq.to_le_bytes());
                put_path(&mut out, path);
                out.extend_from_slice(&(record.len() as u32).to_le_bytes());
                out.extend_from_slice(record);
            }
            ReplEvent::Reset { path } => {
                out.push(3);
                out.extend_from_slice(&seq.to_le_bytes());
                put_path(&mut out, path);
            }
        },
        Wire::Heartbeat { seq, bytes } => {
            out.push(4);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        Wire::SyncDone { seq, bytes } => {
            out.push(5);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
    }
    out
}

/// Bounds-checked cursor over a wire payload. Every read states what it
/// needs and fails cleanly when the buffer is short — a hostile length
/// can cost at most one rejected frame, never a panic or a huge
/// allocation.
struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.off < n {
            return Err(format!(
                "payload truncated: need {n} byte(s), have {}",
                self.buf.len() - self.off
            ));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn path(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        if len == 0 || len > MAX_PATH {
            return Err(format!("bad path length {len}"));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| "path is not utf-8".to_string())
    }

    fn blob(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u32()?;
        if len > MAX_WIRE_FRAME {
            return Err(format!("blob length {len} exceeds frame maximum"));
        }
        Ok(self.take(len as usize)?.to_vec())
    }
}

/// Decode one wire payload. Errors mean a malformed or hostile frame;
/// the caller must treat the stream as desynchronized.
pub fn decode_wire(payload: &[u8]) -> Result<Wire, String> {
    let mut c = Cursor { buf: payload, off: 0 };
    let tag = c.u8()?;
    let seq = c.u64()?;
    let wire = match tag {
        1 => Wire::Event {
            seq,
            event: ReplEvent::FileSnapshot { path: c.path()?, data: c.blob()? },
        },
        2 => Wire::Event { seq, event: ReplEvent::Append { path: c.path()?, record: c.blob()? } },
        3 => Wire::Event { seq, event: ReplEvent::Reset { path: c.path()? } },
        4 => Wire::Heartbeat { seq, bytes: c.u64()? },
        5 => Wire::SyncDone { seq, bytes: c.u64()? },
        other => return Err(format!("unknown wire tag {other}")),
    };
    if c.off != payload.len() {
        return Err(format!("{} trailing byte(s) after frame body", payload.len() - c.off));
    }
    Ok(wire)
}

// ---------------------------------------------------------------------------
// Incremental frame decoding (the follower's read path)
// ---------------------------------------------------------------------------

/// Incremental decoder for a stream of wire frames. Feed it raw bytes as
/// they arrive; it yields complete, checksum-verified payloads.
///
/// Unlike the on-disk [`crate::journal::scan`] — which trusts framing
/// enough to *skip* a corrupt record, because the surrounding file still
/// frames correctly — a corrupt frame on a network stream means the
/// declared length itself cannot be trusted, so there is no safe resync
/// point. [`FrameDecoder::next_frame`] therefore returns an error and
/// the caller drops the connection and re-requests a full sync.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Frames rejected for checksum or length-sanity failures.
    pub rejected: u64,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Buffer newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (a partial frame).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete payload, `Ok(None)` if more bytes are
    /// needed, or an error when the stream is corrupt (hostile length or
    /// checksum mismatch) and must be re-established.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, String> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap());
        // The length is attacker-controlled input: check it against the
        // protocol maximum BEFORE any allocation or wait-for-more-bytes
        // decision. A giant length must not make us buffer gigabytes.
        if len > MAX_WIRE_FRAME {
            self.rejected += 1;
            lisa_telemetry::counter_add("repl.frames_rejected", 1);
            return Err(format!("frame length {len} exceeds maximum {MAX_WIRE_FRAME}"));
        }
        let total = FRAME_HEADER + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let crc = u64::from_le_bytes(self.buf[4..12].try_into().unwrap());
        let payload = self.buf[FRAME_HEADER..total].to_vec();
        if fnv1a(&payload) != crc {
            self.rejected += 1;
            lisa_telemetry::counter_add("repl.frames_rejected", 1);
            return Err("frame checksum mismatch".to_string());
        }
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------------
// Stream fault injection seam
// ---------------------------------------------------------------------------

/// A fault to apply to one received chunk of the replication stream.
/// Mirrors [`crate::IoFault`] for the disk seams; `lisa::faults`
/// provides the seeded implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFault {
    /// Deliver only the first `keep` bytes of the chunk, then drop the
    /// connection — a frame torn mid-ship.
    Torn { keep: usize },
    /// Flip one byte of the chunk (checksum-caught corruption).
    Flip { at: usize },
    /// Deliver only the first `keep` bytes and silently lose the rest —
    /// the stream desynchronizes at the next frame.
    Short { keep: usize },
    /// Suppress heartbeat frames decoded from this chunk, as if the
    /// leader's heartbeat stalled in flight.
    DropHeartbeat,
}

/// Injection hooks at the follower's receive seam. The default injects
/// nothing.
pub trait StreamFaults: Send + Sync {
    /// Consulted once per received chunk of `len` bytes.
    fn on_chunk(&self, _len: usize) -> Option<StreamFault> {
        None
    }
}

// ---------------------------------------------------------------------------
// The leader-side publisher bus
// ---------------------------------------------------------------------------

/// Outcome of polling the bus for frames past a position.
#[derive(Debug)]
pub enum BusPoll {
    /// New payloads, each tagged with its sequence number.
    Frames(Vec<(u64, Arc<Vec<u8>>)>),
    /// Nothing new within the timeout; current (seq, bytes) for a
    /// heartbeat.
    Idle { seq: u64, bytes: u64 },
    /// The requested position fell out of retention — the subscriber
    /// must re-request a full sync.
    Gap,
}

struct BusInner {
    seq: u64,
    bytes: u64,
    log: VecDeque<(u64, Arc<Vec<u8>>)>,
    retain: usize,
}

/// The leader's replication publisher: an in-memory, bounded log of
/// encoded wire payloads, fed by the store's mutation seams and drained
/// by one shipper thread per follower. Subscribers that fall behind
/// retention get [`BusPoll::Gap`] and full-resync.
pub struct ReplBus {
    root: PathBuf,
    inner: Mutex<BusInner>,
    changed: Condvar,
}

impl ReplBus {
    pub fn new(root: impl Into<PathBuf>) -> Arc<ReplBus> {
        ReplBus::with_retention(root, 8192)
    }

    pub fn with_retention(root: impl Into<PathBuf>, retain: usize) -> Arc<ReplBus> {
        Arc::new(ReplBus {
            root: root.into(),
            inner: Mutex::new(BusInner {
                seq: 0,
                bytes: 0,
                log: VecDeque::new(),
                retain: retain.max(1),
            }),
            changed: Condvar::new(),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current (sequence, cumulative bytes).
    pub fn position(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        (inner.seq, inner.bytes)
    }

    /// Relativize `path` against the root; mutations outside the root
    /// are not replicated.
    fn rel(&self, path: &Path) -> Option<String> {
        path.strip_prefix(&self.root).ok().and_then(|p| p.to_str()).map(str::to_string)
    }

    /// Publish a journal record append.
    pub fn publish_append(&self, path: &Path, record: &[u8]) {
        if let Some(path) = self.rel(path) {
            self.publish(ReplEvent::Append { path, record: record.to_vec() });
        }
    }

    /// Publish an atomic whole-file write (`data` is the on-disk bytes).
    pub fn publish_file(&self, path: &Path, data: &[u8]) {
        if let Some(path) = self.rel(path) {
            self.publish(ReplEvent::FileSnapshot { path, data: data.to_vec() });
        }
    }

    /// Publish a journal truncation.
    pub fn publish_reset(&self, path: &Path) {
        if let Some(path) = self.rel(path) {
            self.publish(ReplEvent::Reset { path });
        }
    }

    fn publish(&self, event: ReplEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.seq += 1;
        let payload = encode_wire(&Wire::Event { seq: inner.seq, event });
        inner.bytes += (FRAME_HEADER + payload.len()) as u64;
        let entry = (inner.seq, Arc::new(payload));
        inner.log.push_back(entry);
        while inner.log.len() > inner.retain {
            inner.log.pop_front();
        }
        drop(inner);
        self.changed.notify_all();
        if lisa_telemetry::metrics_enabled() {
            lisa_telemetry::counter_add("repl.events_published", 1);
        }
    }

    /// Frames with sequence > `pos`, waiting up to `timeout` for news.
    pub fn poll_after(&self, pos: u64, timeout: Duration) -> BusPoll {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.seq == pos {
            let (guard, _) = self
                .changed
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
        }
        if inner.seq == pos {
            return BusPoll::Idle { seq: inner.seq, bytes: inner.bytes };
        }
        // If the oldest retained entry is already past pos+1, the
        // subscriber missed frames it can never get from the log.
        match inner.log.front() {
            Some(&(oldest, _)) if oldest > pos + 1 => return BusPoll::Gap,
            None if inner.seq > pos => return BusPoll::Gap,
            _ => {}
        }
        BusPoll::Frames(inner.log.iter().filter(|(s, _)| *s > pos).cloned().collect())
    }

    /// Build the initial full sync for a new subscriber: one
    /// `FileSnapshot` payload per file currently under the root, plus a
    /// trailing `SyncDone`, all captured atomically against concurrent
    /// publishes (the walk holds the bus lock). Returns the payloads and
    /// the sequence the subscriber is caught up to.
    ///
    /// Node-local files — `metrics.journal`, sockets, temp files — are
    /// deliberately not shipped.
    pub fn sync_payloads(&self) -> (Vec<Vec<u8>>, u64) {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let (seq, bytes) = (inner.seq, inner.bytes);
        let mut files = Vec::new();
        collect_files(&self.root, &self.root, &mut files);
        files.sort();
        let mut payloads = Vec::with_capacity(files.len() + 1);
        for rel in files {
            let Ok(data) = std::fs::read(self.root.join(&rel)) else { continue };
            if data.len() as u32 > MAX_RECORD {
                continue;
            }
            payloads.push(encode_wire(&Wire::Event {
                seq,
                event: ReplEvent::FileSnapshot { path: rel, data },
            }));
        }
        payloads.push(encode_wire(&Wire::SyncDone { seq, bytes }));
        (payloads, seq)
    }
}

/// True for files that never leave the node they were written on.
fn node_local(name: &str) -> bool {
    name == "metrics.journal"
        || name.ends_with(".tmp")
        || name.ends_with(".sock")
        || name.ends_with(".quarantine")
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let Ok(meta) = entry.metadata() else { continue };
        if meta.is_dir() {
            collect_files(root, &path, out);
        } else if meta.is_file() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if node_local(&name) {
                continue;
            }
            if let Ok(rel) = path.strip_prefix(root) {
                if let Some(rel) = rel.to_str() {
                    out.push(rel.to_string());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The follower-side applier
// ---------------------------------------------------------------------------

/// Applies replicated events into a follower's state root. Append-only
/// and path-confined: a frame can write under the root, never outside
/// it, and a corrupt frame never reaches this layer (the decoder rejects
/// it first).
pub struct Applier {
    root: PathBuf,
}

impl Applier {
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Applier> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Applier { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Resolve a shipped relative path under the root, rejecting
    /// absolute paths and any traversal component.
    fn target(&self, rel: &str) -> io::Result<PathBuf> {
        let rel_path = Path::new(rel);
        let safe = rel_path
            .components()
            .all(|c| matches!(c, Component::Normal(_)));
        if !safe || rel.is_empty() || rel.len() > MAX_PATH {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unsafe replicated path {rel:?}"),
            ));
        }
        let full = self.root.join(rel_path);
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(full)
    }

    /// Apply one replicated event. Idempotent at the state level: the
    /// run-store replay that eventually consumes these files tolerates
    /// duplicate records by construction.
    pub fn apply(&self, event: &ReplEvent) -> io::Result<()> {
        match event {
            ReplEvent::FileSnapshot { path, data } => {
                let target = self.target(path)?;
                write_file_atomic(&target, data)?;
                if lisa_telemetry::metrics_enabled() {
                    lisa_telemetry::counter_add("repl.files_applied", 1);
                    lisa_telemetry::counter_add("repl.bytes_applied", data.len() as u64);
                }
            }
            ReplEvent::Append { path, record } => {
                let target = self.target(path)?;
                let mut f = OpenOptions::new().create(true).append(true).open(&target)?;
                f.write_all(&frame(record))?;
                f.sync_data()?;
                if lisa_telemetry::metrics_enabled() {
                    lisa_telemetry::counter_add("repl.records_applied", 1);
                    lisa_telemetry::counter_add(
                        "repl.bytes_applied",
                        (FRAME_HEADER + record.len()) as u64,
                    );
                }
            }
            ReplEvent::Reset { path } => {
                let target = self.target(path)?;
                let f = OpenOptions::new().create(true).write(true).truncate(true).open(&target)?;
                f.sync_data()?;
                if lisa_telemetry::metrics_enabled() {
                    lisa_telemetry::counter_add("repl.resets_applied", 1);
                }
            }
        }
        if lisa_telemetry::metrics_enabled() {
            lisa_telemetry::counter_add("repl.frames_applied", 1);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lisa-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn wire_roundtrip_every_tag() {
        let wires = [
            Wire::Event {
                seq: 7,
                event: ReplEvent::FileSnapshot {
                    path: "job/state.snap".into(),
                    data: vec![0, 1, 2, 255],
                },
            },
            Wire::Event {
                seq: 8,
                event: ReplEvent::Append { path: "job/wal.log".into(), record: b"rec".to_vec() },
            },
            Wire::Event { seq: 9, event: ReplEvent::Reset { path: "job/wal.log".into() } },
            Wire::Heartbeat { seq: 10, bytes: 12345 },
            Wire::SyncDone { seq: 11, bytes: 99 },
        ];
        for w in &wires {
            assert_eq!(&decode_wire(&encode_wire(w)).expect("decode"), w);
        }
    }

    #[test]
    fn decode_rejects_truncations_and_trailing_garbage() {
        let full = encode_wire(&Wire::Event {
            seq: 1,
            event: ReplEvent::Append { path: "a/wal.log".into(), record: b"payload".to_vec() },
        });
        for cut in 0..full.len() {
            assert!(decode_wire(&full[..cut]).is_err(), "prefix of {cut} bytes must not decode");
        }
        let mut padded = full.clone();
        padded.push(0);
        assert!(decode_wire(&padded).is_err(), "trailing garbage must not decode");
        assert!(decode_wire(&[99]).is_err(), "unknown tag");
    }

    #[test]
    fn hostile_length_prefix_never_allocates_or_panics() {
        let mut dec = FrameDecoder::new();
        // A frame header declaring a 4 GiB payload: rejected immediately,
        // before the decoder would ever try to buffer it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        dec.feed(&bytes);
        assert!(dec.next_frame().is_err());
        assert_eq!(dec.rejected, 1);

        // Just over the cap is equally rejected.
        let mut dec = FrameDecoder::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_WIRE_FRAME + 1).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        dec.feed(&bytes);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_handles_arbitrary_chunking() {
        let payloads: Vec<Vec<u8>> = (0..5)
            .map(|i| {
                encode_wire(&Wire::Event {
                    seq: i,
                    event: ReplEvent::Append {
                        path: "d/wal.log".into(),
                        record: format!("record-{i}").into_bytes(),
                    },
                })
            })
            .collect();
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&frame(p));
        }
        // Feed in awkward 3-byte chunks: every frame still comes out.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(3) {
            dec.feed(chunk);
            while let Some(p) = dec.next_frame().expect("clean stream") {
                out.push(p);
            }
        }
        assert_eq!(out, payloads);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn corrupt_frame_is_rejected_not_applied() {
        let payload = encode_wire(&Wire::Event {
            seq: 1,
            event: ReplEvent::Append { path: "x/wal.log".into(), record: b"good".to_vec() },
        });
        let mut bytes = frame(&payload);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(dec.next_frame().is_err(), "checksum mismatch must error");
        assert_eq!(dec.rejected, 1);
    }

    #[test]
    fn applier_refuses_traversal_and_absolute_paths() {
        let dir = tmpdir("traversal");
        let applier = Applier::new(&dir).expect("applier");
        for bad in ["../escape", "/etc/passwd", "a/../../b", ""] {
            let ev = ReplEvent::FileSnapshot { path: bad.into(), data: vec![1] };
            assert!(applier.apply(&ev).is_err(), "{bad:?} must be refused");
        }
        // A normal nested path is fine.
        let ev = ReplEvent::FileSnapshot { path: "job-1/state.snap".into(), data: vec![7] };
        applier.apply(&ev).expect("safe path applies");
        assert_eq!(std::fs::read(dir.join("job-1/state.snap")).expect("read"), vec![7]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bus_publishes_in_order_and_reports_gaps() {
        let dir = tmpdir("bus");
        let bus = ReplBus::with_retention(&dir, 4);
        for i in 0..3u8 {
            bus.publish_append(&dir.join("wal.log"), &[i]);
        }
        match bus.poll_after(0, Duration::from_millis(1)) {
            BusPoll::Frames(frames) => {
                assert_eq!(frames.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2, 3]);
            }
            other => panic!("expected frames, got {other:?}"),
        }
        // Overflow retention: position 0 now has a gap.
        for i in 0..6u8 {
            bus.publish_append(&dir.join("wal.log"), &[i]);
        }
        assert!(matches!(bus.poll_after(0, Duration::from_millis(1)), BusPoll::Gap));
        // But the most recent frames are still streamable.
        let (seq, _) = bus.position();
        assert!(matches!(
            bus.poll_after(seq, Duration::from_millis(1)),
            BusPoll::Idle { seq: s, .. } if s == seq
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutations_outside_the_root_are_not_replicated() {
        let dir = tmpdir("outside");
        let bus = ReplBus::new(&dir);
        bus.publish_append(Path::new("/somewhere/else/wal.log"), b"x");
        assert_eq!(bus.position().0, 0, "foreign path published nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_sync_ships_files_and_ends_with_sync_done() {
        let dir = tmpdir("sync");
        std::fs::create_dir_all(dir.join("job")).expect("mkdir");
        std::fs::write(dir.join("job/wal.log"), b"journal-bytes").expect("write");
        std::fs::write(dir.join("metrics.journal"), b"node-local").expect("write");
        std::fs::write(dir.join("job/x.tmp"), b"temp").expect("write");
        let bus = ReplBus::new(&dir);
        let (payloads, _) = bus.sync_payloads();
        let wires: Vec<Wire> =
            payloads.iter().map(|p| decode_wire(p).expect("decode")).collect();
        assert_eq!(wires.len(), 2, "one file + SyncDone, node-local files excluded: {wires:?}");
        assert!(matches!(
            &wires[0],
            Wire::Event { event: ReplEvent::FileSnapshot { path, data }, .. }
                if path == "job/wal.log" && data == b"journal-bytes"
        ));
        assert!(matches!(wires[1], Wire::SyncDone { .. }));

        // Applying the sync into a fresh root mirrors the file.
        let froot = tmpdir("sync-f");
        let applier = Applier::new(&froot).expect("applier");
        for w in &wires {
            if let Wire::Event { event, .. } = w {
                applier.apply(event).expect("apply");
            }
        }
        assert_eq!(
            std::fs::read(froot.join("job/wal.log")).expect("read"),
            b"journal-bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&froot);
    }
}
