//! The field codec shared by every journaled record.
//!
//! Records are self-describing sequences of `key=value` fields joined by
//! tabs, with percent-escaping for the three delimiter characters and for
//! `%` itself. Human-inspectable with `xxd`, no parser generator, and —
//! unlike a positional binary layout — old readers skip fields they do
//! not know, which keeps the journal format forward-compatible.

/// Escape a field value: `%`, tab, newline, and `=` become `%xx`.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0a"),
            '=' => out.push_str("%3d"),
            c => out.push(c),
        }
    }
    out
}

/// Reverse [`esc`]. Unknown or truncated escapes are decode errors — a
/// corrupt field must not silently pass through.
pub fn unesc(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next().ok_or("truncated escape")?;
        let lo = chars.next().ok_or("truncated escape")?;
        match (hi, lo) {
            ('2', '5') => out.push('%'),
            ('0', '9') => out.push('\t'),
            ('0', 'a') => out.push('\n'),
            ('3', 'd') => out.push('='),
            _ => return Err(format!("unknown escape %{hi}{lo}")),
        }
    }
    Ok(out)
}

/// Encode a field list as one record payload.
pub fn encode(fields: &[(&str, &str)]) -> Vec<u8> {
    let mut parts = Vec::with_capacity(fields.len());
    for (k, v) in fields {
        parts.push(format!("{}={}", esc(k), esc(v)));
    }
    parts.join("\t").into_bytes()
}

/// Decode a record payload back into fields.
pub fn decode(payload: &[u8]) -> Result<Vec<(String, String)>, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("not utf-8: {e}"))?;
    let mut fields = Vec::new();
    if text.is_empty() {
        return Ok(fields);
    }
    for part in text.split('\t') {
        let (k, v) = part.split_once('=').ok_or_else(|| format!("field without `=`: {part:?}"))?;
        fields.push((unesc(k)?, unesc(v)?));
    }
    Ok(fields)
}

/// Fetch a required field by key.
pub fn field<'a>(fields: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Fetch a required numeric field.
pub fn field_u64(fields: &[(String, String)], key: &str) -> Result<u64, String> {
    field(fields, key)?.parse().map_err(|e| format!("field {key:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_delimiters() {
        for s in ["", "plain", "a=b", "tab\there", "line\nbreak", "100%", "%25", "=\t\n%"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Ok(s), "{s:?}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let fields = [("kind", "finished"), ("rule", "ZK=1208\tr0"), ("fp", "line1\nline2")];
        let payload = encode(&fields);
        let back = decode(&payload).expect("decode");
        assert_eq!(back.len(), 3);
        for ((k, v), (bk, bv)) in fields.iter().zip(back.iter()) {
            assert_eq!(*k, bk);
            assert_eq!(*v, bv);
        }
    }

    #[test]
    fn bad_escapes_are_errors() {
        assert!(unesc("%").is_err());
        assert!(unesc("%9").is_err());
        assert!(unesc("%zz").is_err());
        assert!(decode(b"no-equals-sign").is_err());
        assert!(decode(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn field_lookup() {
        let fields = decode(&encode(&[("a", "1"), ("b", "x")])).expect("decode");
        assert_eq!(field(&fields, "a").as_deref(), Ok("1"));
        assert_eq!(field_u64(&fields, "a"), Ok(1));
        assert!(field(&fields, "c").is_err());
        assert!(field_u64(&fields, "b").is_err());
    }
}
