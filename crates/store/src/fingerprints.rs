//! Persisted per-rule dependency fingerprints for cross-version reuse.
//!
//! A durable gate run journals its verdicts under a `run_key` that
//! fingerprints the *whole* `(version, rule set)` — one changed function
//! anywhere and the journal is stale by design. This file is the finer
//! sieve that lives beside it: for every rule it records the hash of
//! exactly the inputs that rule's verdict depends on (the rule text plus
//! the fingerprints of the functions that can reach its target or be
//! executed by tests) together with the settled [`RuleOutcome`]. When
//! the next version dirties one function, only rules whose dependency
//! hash moved are re-explored; the rest reuse their recorded outcome.
//!
//! The file is a single atomically-replaced snapshot
//! ([`crate::write_atomic`]): checksummed and framed, so a torn or
//! corrupt file simply reads as absent and every rule re-runs — at worst
//! slow, never wrong.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::codec::{decode, encode, field, field_u64};
use crate::event::RuleOutcome;
use crate::journal::{read_atomic, write_atomic};

/// On-disk file name, beside `wal.log` in the run's state directory.
pub const FINGERPRINTS: &str = "fingerprints.log";

/// One rule's recorded dependency hash and settled outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleFingerprint {
    /// FNV-1a over everything the rule's verdict depends on.
    pub dep_hash: u64,
    pub outcome: RuleOutcome,
}

/// The persisted map, rule id → recorded fingerprint.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FingerprintFile {
    pub entries: BTreeMap<String, RuleFingerprint>,
}

impl FingerprintFile {
    fn path(dir: &Path) -> PathBuf {
        dir.join(FINGERPRINTS)
    }

    /// Load the fingerprint file from `dir`. Absent, torn, or corrupt
    /// files all yield the empty map — reuse is an optimization, never a
    /// requirement.
    pub fn load(dir: &Path) -> FingerprintFile {
        let Some(payload) = read_atomic(&Self::path(dir)) else {
            return FingerprintFile::default();
        };
        let text = match std::str::from_utf8(&payload) {
            Ok(t) => t,
            Err(_) => return FingerprintFile::default(),
        };
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let Ok(entry) = decode_entry(line.as_bytes()) else {
                // One undecodable entry poisons nothing else; that rule
                // simply re-runs.
                continue;
            };
            entries.insert(entry.1.outcome.rule_id.clone(), entry.1);
        }
        FingerprintFile { entries }
    }

    /// Atomically replace the fingerprint file in `dir`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut lines = Vec::with_capacity(self.entries.len());
        for fp in self.entries.values() {
            lines.push(String::from_utf8_lossy(&encode_entry(fp)).into_owned());
        }
        write_atomic(&Self::path(dir), lines.join("\n").as_bytes())
    }

    /// The recorded outcome for `rule_id`, but only when its dependency
    /// hash still matches.
    pub fn reusable(&self, rule_id: &str, dep_hash: u64) -> Option<&RuleOutcome> {
        self.entries
            .get(rule_id)
            .filter(|fp| fp.dep_hash == dep_hash)
            .map(|fp| &fp.outcome)
    }

    pub fn insert(&mut self, dep_hash: u64, outcome: RuleOutcome) {
        self.entries
            .insert(outcome.rule_id.clone(), RuleFingerprint { dep_hash, outcome });
    }
}

fn encode_entry(fp: &RuleFingerprint) -> Vec<u8> {
    let o = &fp.outcome;
    encode(&[
        ("dep", &format!("{:016x}", fp.dep_hash)),
        ("rule", &o.rule_id),
        ("fp", &o.fingerprint),
        ("verified", &o.verified.to_string()),
        ("violated", &o.violated.to_string()),
        ("not_covered", &o.not_covered.to_string()),
        ("engine_errors", &o.engine_errors.to_string()),
        ("degraded", if o.degraded { "1" } else { "0" }),
        ("sanity_ok", if o.sanity_ok { "1" } else { "0" }),
        ("retries", &o.retries.to_string()),
    ])
}

fn decode_entry(payload: &[u8]) -> Result<(u64, RuleFingerprint), String> {
    let fields = decode(payload)?;
    let dep = field(&fields, "dep")?;
    let dep_hash =
        u64::from_str_radix(dep, 16).map_err(|_| format!("bad dep hash {dep:?}"))?;
    let outcome = RuleOutcome {
        rule_id: field(&fields, "rule")?.to_string(),
        fingerprint: field(&fields, "fp")?.to_string(),
        verified: field_u64(&fields, "verified")?,
        violated: field_u64(&fields, "violated")?,
        not_covered: field_u64(&fields, "not_covered")?,
        engine_errors: field_u64(&fields, "engine_errors")?,
        degraded: field(&fields, "degraded")? == "1",
        sanity_ok: field(&fields, "sanity_ok")? == "1",
        retries: field_u64(&fields, "retries")?,
    };
    Ok((dep_hash, RuleFingerprint { dep_hash, outcome }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(rule_id: &str) -> RuleOutcome {
        RuleOutcome {
            rule_id: rule_id.to_string(),
            fingerprint: "[verified] a -> b\nverified=1".to_string(),
            verified: 1,
            violated: 0,
            not_covered: 0,
            engine_errors: 0,
            degraded: false,
            sanity_ok: true,
            retries: 0,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("lisa-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut file = FingerprintFile::default();
        file.insert(0xabc, outcome("R1"));
        file.insert(0xdef, outcome("R2"));
        file.save(&dir).unwrap();
        let loaded = FingerprintFile::load(&dir);
        assert_eq!(loaded, file);
        assert!(loaded.reusable("R1", 0xabc).is_some());
        assert!(loaded.reusable("R1", 0xabd).is_none(), "moved dep hash");
        assert!(loaded.reusable("R3", 0xabc).is_none(), "unknown rule");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_or_corrupt_file_reads_empty() {
        let dir = std::env::temp_dir().join(format!("lisa-fp-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(FingerprintFile::load(&dir).entries.is_empty(), "absent");
        std::fs::write(dir.join(FINGERPRINTS), b"garbage not a frame").unwrap();
        assert!(FingerprintFile::load(&dir).entries.is_empty(), "corrupt");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escaped_fields_survive_newlines_in_fingerprints() {
        let dir = std::env::temp_dir().join(format!("lisa-fp-e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut o = outcome("R-multi");
        o.fingerprint = "line one\nline two\ttabbed\neq=sign".to_string();
        let mut file = FingerprintFile::default();
        file.insert(7, o);
        file.save(&dir).unwrap();
        assert_eq!(FingerprintFile::load(&dir), file);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
