//! # lisa-store
//!
//! Durable state for the enforcement gate. The paper's end state is LISA
//! as a *persistent* regression firewall — rules accumulate forever and
//! every change is gated on the full set — which only works if the gate's
//! own state survives crashes, partial writes, and restarts without
//! silently dropping rules or redoing hours of concolic work.
//!
//! - [`journal`] — a checksummed, append-only write-ahead journal with
//!   torn-tail truncation, per-record quarantine of corrupt frames, and
//!   atomic (write-temp + fsync + rename) snapshot checkpoints. I/O
//!   faults are injectable at every seam via [`IoFaults`].
//! - [`event`] — the gate event vocabulary (rule registered, check
//!   started/finished, run verdict) and its self-describing text codec.
//! - [`run`] — per-run recovery: replaying journal + snapshot yields the
//!   set of already-settled rule verdicts, so a killed gate run resumes
//!   without re-checking them.
//! - [`rules`] — the persistent rule store backing `RuleRegistry`:
//!   replace-in-place registration semantics hold across process
//!   restarts.
//! - [`codec`] — the escaped `key=value` field codec all records share.
//! - [`repl`] — leader→follower journal shipping: a publisher bus fed by
//!   the store's mutation seams, a CRC'd wire frame codec (same envelope
//!   as the on-disk journal), and a path-confined applier that mirrors
//!   the leader's state root byte-for-byte onto a warm spare.
//!
//! The crate is deliberately independent of the pipeline: it stores
//! opaque verdict fingerprints, not reports, so corruption in the store
//! can never fabricate a gate decision — at worst a rule is re-checked.

#![forbid(unsafe_code)]

pub mod codec;
pub mod event;
pub mod fingerprints;
pub mod journal;
pub mod repl;
pub mod run;
pub mod rules;

pub use event::{GateEvent, RuleOutcome};
pub use fingerprints::{FingerprintFile, RuleFingerprint};
pub use journal::{
    read_atomic, scan, write_atomic, write_file_atomic, IoFault, IoFaults, Journal, OpenReport,
    Scan,
};
pub use repl::{
    decode_wire, encode_wire, Applier, BusPoll, FrameDecoder, ReplBus, ReplEvent, StreamFault,
    StreamFaults, Wire, MAX_WIRE_FRAME, REPL_VERSION,
};
pub use run::{RunState, RunStore};
pub use rules::RuleStore;

use std::fmt;

/// Errors from the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// A record decoded to something the event vocabulary rejects.
    Codec(String),
    /// The caller's cancellation token fired; the run stopped at a rule
    /// boundary and its partial journal remains valid for resume.
    Cancelled,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::Codec(d) => write!(f, "store codec: {d}"),
            StoreError::Cancelled => write!(f, "run cancelled at a rule boundary"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}
