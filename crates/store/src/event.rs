//! Gate events: what the journal records.
//!
//! The unit of durability is the *settled rule verdict*: once a
//! `RuleCheckFinished` event is on disk, a resumed run reuses the
//! outcome instead of re-running concolic exploration — losing
//! accumulated solver work on a crash is the dominant recovery cost
//! (cf. the symbolic-execution orchestration literature). Outcomes are
//! stored as opaque verdict fingerprints plus fold counts, never as
//! re-interpretable reports: corruption can force a re-check, but it can
//! never fabricate a verdict.

use crate::codec::{decode, encode, field, field_u64};

/// The settled result of one rule check, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleOutcome {
    pub rule_id: String,
    /// Canonical multi-line verdict fingerprint (chain labels + rendered
    /// paths + fold counts) — the byte-comparable artifact the recovery
    /// invariant is stated over.
    pub fingerprint: String,
    pub verified: u64,
    pub violated: u64,
    pub not_covered: u64,
    pub engine_errors: u64,
    pub degraded: bool,
    pub sanity_ok: bool,
    pub retries: u64,
}

impl RuleOutcome {
    pub fn has_violation(&self) -> bool {
        self.violated > 0
    }

    pub fn has_engine_error(&self) -> bool {
        self.engine_errors > 0
    }
}

/// One journaled gate event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateEvent {
    /// A new run began; `run_key` fingerprints (version, rule set) so a
    /// stale journal from a different input can never poison recovery.
    RunStarted { run_key: String },
    /// A rule check began (crash between Started and Finished ⇒ the rule
    /// is re-checked on resume).
    RuleCheckStarted { rule_id: String },
    /// A rule check settled; the outcome is now durable.
    RuleCheckFinished { outcome: RuleOutcome },
    /// The run completed with a final gate decision.
    RunFinished { decision: String },
    /// A rule was registered (rule-store journal).
    RuleRegistered {
        id: String,
        description: String,
        target_kind: String,
        callee: String,
        caller: String,
        condition_src: String,
    },
}

impl GateEvent {
    /// Serialize to a journal record payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            GateEvent::RunStarted { run_key } => {
                encode(&[("kind", "run-started"), ("run_key", run_key)])
            }
            GateEvent::RuleCheckStarted { rule_id } => {
                encode(&[("kind", "check-started"), ("rule", rule_id)])
            }
            GateEvent::RuleCheckFinished { outcome: o } => encode(&[
                ("kind", "check-finished"),
                ("rule", &o.rule_id),
                ("fp", &o.fingerprint),
                ("verified", &o.verified.to_string()),
                ("violated", &o.violated.to_string()),
                ("not_covered", &o.not_covered.to_string()),
                ("engine_errors", &o.engine_errors.to_string()),
                ("degraded", if o.degraded { "1" } else { "0" }),
                ("sanity_ok", if o.sanity_ok { "1" } else { "0" }),
                ("retries", &o.retries.to_string()),
            ]),
            GateEvent::RunFinished { decision } => {
                encode(&[("kind", "run-finished"), ("decision", decision)])
            }
            GateEvent::RuleRegistered { id, description, target_kind, callee, caller, condition_src } => {
                encode(&[
                    ("kind", "rule-registered"),
                    ("id", id),
                    ("description", description),
                    ("target_kind", target_kind),
                    ("callee", callee),
                    ("caller", caller),
                    ("condition", condition_src),
                ])
            }
        }
    }

    /// Parse a journal record payload.
    pub fn decode(payload: &[u8]) -> Result<GateEvent, String> {
        let fields = decode(payload)?;
        let kind = field(&fields, "kind")?;
        match kind {
            "run-started" => Ok(GateEvent::RunStarted { run_key: field(&fields, "run_key")?.to_string() }),
            "check-started" => {
                Ok(GateEvent::RuleCheckStarted { rule_id: field(&fields, "rule")?.to_string() })
            }
            "check-finished" => Ok(GateEvent::RuleCheckFinished {
                outcome: RuleOutcome {
                    rule_id: field(&fields, "rule")?.to_string(),
                    fingerprint: field(&fields, "fp")?.to_string(),
                    verified: field_u64(&fields, "verified")?,
                    violated: field_u64(&fields, "violated")?,
                    not_covered: field_u64(&fields, "not_covered")?,
                    engine_errors: field_u64(&fields, "engine_errors")?,
                    degraded: field(&fields, "degraded")? == "1",
                    sanity_ok: field(&fields, "sanity_ok")? == "1",
                    retries: field_u64(&fields, "retries")?,
                },
            }),
            "run-finished" => {
                Ok(GateEvent::RunFinished { decision: field(&fields, "decision")?.to_string() })
            }
            "rule-registered" => Ok(GateEvent::RuleRegistered {
                id: field(&fields, "id")?.to_string(),
                description: field(&fields, "description")?.to_string(),
                target_kind: field(&fields, "target_kind")?.to_string(),
                callee: field(&fields, "callee")?.to_string(),
                caller: field(&fields, "caller")?.to_string(),
                condition_src: field(&fields, "condition")?.to_string(),
            }),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn sample_outcome(rule_id: &str, violated: u64) -> RuleOutcome {
        RuleOutcome {
            rule_id: rule_id.to_string(),
            fingerprint: format!("[verified] a -> b\n[VIOLATED] c -> d\nviolated={violated}"),
            verified: 1,
            violated,
            not_covered: 0,
            engine_errors: 0,
            degraded: false,
            sanity_ok: true,
            retries: 2,
        }
    }

    #[test]
    fn all_event_kinds_roundtrip() {
        let events = [
            GateEvent::RunStarted { run_key: "v1/abcd=ef\t".to_string() },
            GateEvent::RuleCheckStarted { rule_id: "ZK-1208-r0".to_string() },
            GateEvent::RuleCheckFinished { outcome: sample_outcome("ZK-1208-r0", 1) },
            GateEvent::RunFinished { decision: "BLOCK".to_string() },
            GateEvent::RuleRegistered {
                id: "R1".to_string(),
                description: "desc with\nnewline".to_string(),
                target_kind: "builtin-in-caller".to_string(),
                callee: "blocking_io".to_string(),
                caller: "flush".to_string(),
                condition_src: "$locks.held == 0".to_string(),
            },
        ];
        for e in &events {
            let back = GateEvent::decode(&e.encode()).expect("decode");
            assert_eq!(&back, e);
        }
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let payload = encode(&[("kind", "mystery")]);
        assert!(GateEvent::decode(&payload).is_err());
        assert!(GateEvent::decode(b"garbage").is_err());
    }
}
