//! Checksummed append-only write-ahead journal + atomic snapshots.
//!
//! Frame layout per record: `len: u32 LE | crc: u64 LE | payload`, where
//! `crc` is FNV-1a over the payload. Recovery semantics on open:
//!
//! - a **torn tail** (partial frame at EOF — the classic crash-mid-write
//!   shape) is truncated away;
//! - a **corrupt record** mid-file (checksum mismatch with framing
//!   intact — a bit flip) is quarantined to `<journal>.quarantine` and
//!   skipped; the records around it replay normally;
//! - after any damage the journal is **compacted in place** (good records
//!   rewritten via write-temp + fsync + rename), so a second open sees a
//!   clean file and replay is idempotent.
//!
//! Every I/O seam consults an optional [`IoFaults`] hook, which is how
//! `lisa::faults` injects seeded torn writes, short reads, `ENOSPC`, and
//! fsync failures for the recovery experiments.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame header size: u32 length + u64 checksum.
pub const FRAME_HEADER: usize = 12;

/// Upper bound on one record; a length field above this is corruption,
/// not a real record.
pub const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// FNV-1a over a byte slice — the journal's checksum. Not cryptographic;
/// it detects the torn writes and bit flips the fault model cares about.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A fault to apply at one I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Write only the first `keep` bytes of the frame, then fail — the
    /// crash-mid-write shape that leaves a torn tail.
    Torn { keep: usize },
    /// Fail the write without writing anything (`ENOSPC`).
    Enospc,
    /// On open, observe only the first `keep` bytes of the file.
    ShortRead { keep: usize },
    /// Fail the fsync; the bytes may or may not be durable.
    FsyncFail,
}

/// Injection hooks at the journal's I/O seams. The default implementation
/// injects nothing; `lisa::faults::DiskFaultInjector` provides the seeded
/// implementation used by tests and experiment E11.
pub trait IoFaults: Send + Sync {
    /// Consulted before appending a frame of `len` bytes.
    fn on_append(&self, _len: usize) -> Option<IoFault> {
        None
    }
    /// Consulted before fsyncing appended frames.
    fn on_sync(&self) -> Option<IoFault> {
        None
    }
    /// Consulted after reading `len` journal bytes on open.
    fn on_open_read(&self, _len: usize) -> Option<IoFault> {
        None
    }
}

/// Result of scanning raw journal bytes (pure; no filesystem access).
#[derive(Debug, Default)]
pub struct Scan {
    /// Payloads of intact records, in order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset just past each intact record — the crash boundaries
    /// experiment E11 kills at.
    pub boundaries: Vec<u64>,
    /// Raw frames whose checksum failed (quarantine candidates).
    pub corrupt: Vec<Vec<u8>>,
    /// Trailing bytes that do not form a complete frame.
    pub torn_bytes: usize,
}

impl Scan {
    /// Total bytes of intact + corrupt frames (everything before the torn
    /// tail).
    pub fn framed_len(&self) -> u64 {
        self.boundaries.last().copied().unwrap_or(0)
            + self.corrupt.iter().map(|c| c.len() as u64).sum::<u64>()
    }
}

/// Scan `bytes` as a journal. Corrupt frames are collected (framing is
/// intact, so the scan resynchronizes at the next frame); a partial frame
/// at the tail stops the scan.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut out = Scan::default();
    let mut off = 0usize;
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        if remaining < FRAME_HEADER {
            out.torn_bytes = remaining;
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        if len > MAX_RECORD || (len as usize) > remaining - FRAME_HEADER {
            // Garbage length or frame runs past EOF: treat everything
            // from here as a torn tail.
            out.torn_bytes = remaining;
            break;
        }
        let crc = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
        let payload = &bytes[off + FRAME_HEADER..off + FRAME_HEADER + len as usize];
        let frame_end = off + FRAME_HEADER + len as usize;
        if fnv1a(payload) == crc {
            out.records.push(payload.to_vec());
            // Boundaries are offsets into the *compacted* stream of good
            // records, so they stay meaningful after quarantine rewrites.
            let prev = out.boundaries.last().copied().unwrap_or(0);
            out.boundaries.push(prev + (FRAME_HEADER + len as usize) as u64);
        } else {
            out.corrupt.push(bytes[off..frame_end].to_vec());
        }
        off = frame_end;
    }
    out
}

/// Encode one frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What `Journal::open` found and repaired.
#[derive(Debug, Default)]
pub struct OpenReport {
    /// Replayable record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Records quarantined to the side file on this open.
    pub quarantined: usize,
    /// Torn-tail bytes truncated on this open.
    pub truncated_bytes: usize,
}

/// The append-only journal.
pub struct Journal {
    path: PathBuf,
    file: File,
    /// Logical end of the last fully appended frame; failed appends
    /// attempt to restore the file to this length.
    good_end: u64,
    faults: Option<Arc<dyn IoFaults>>,
}

impl Journal {
    /// Open (creating if absent), replaying and repairing existing
    /// contents: torn tails truncated, corrupt records quarantined, and
    /// the file compacted if any damage was found.
    pub fn open(
        path: impl Into<PathBuf>,
        faults: Option<Arc<dyn IoFaults>>,
    ) -> io::Result<(Journal, OpenReport)> {
        let path = path.into();
        let mut span = lisa_telemetry::span_with(
            "store.recover",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string(),
        );
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if let Some(inj) = &faults {
            if let Some(IoFault::ShortRead { keep }) = inj.on_open_read(bytes.len()) {
                bytes.truncate(keep);
            }
        }
        let scanned = scan(&bytes);
        let damaged = !scanned.corrupt.is_empty() || scanned.torn_bytes > 0;
        let quarantined = scanned.corrupt.len();
        if !scanned.corrupt.is_empty() {
            let mut q = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path.with_extension("quarantine"))?;
            for bad in &scanned.corrupt {
                q.write_all(bad)?;
            }
            q.sync_data()?;
        }
        if damaged {
            // Compact: rewrite only the good records atomically so the
            // next open replays cleanly with no further repair.
            let mut clean = Vec::new();
            for r in &scanned.records {
                clean.extend_from_slice(&frame(r));
            }
            write_file_atomic(&path, &clean)?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let good_end = file.seek(SeekFrom::End(0))?;
        span.arg("records", scanned.records.len() as u64);
        span.arg("quarantined", quarantined as u64);
        span.arg("torn_bytes", scanned.torn_bytes as u64);
        span.arg("compacted", u64::from(damaged));
        if lisa_telemetry::metrics_enabled() {
            lisa_telemetry::counter_add("store.recovered_records", scanned.records.len() as u64);
            lisa_telemetry::counter_add("store.quarantined_records", quarantined as u64);
            lisa_telemetry::counter_add("store.torn_bytes_truncated", scanned.torn_bytes as u64);
            if damaged {
                lisa_telemetry::counter_add("store.compactions", 1);
            }
        }
        let journal = Journal { path, file, good_end, faults };
        Ok((
            journal,
            OpenReport {
                records: scanned.records,
                quarantined,
                truncated_bytes: scanned.torn_bytes,
            },
        ))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record durably (write + fsync). On failure the journal
    /// tries to restore itself to the last good frame boundary; if even
    /// that fails, the torn tail is repaired on the next open.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if !lisa_telemetry::metrics_enabled() {
            return self.append_inner(payload);
        }
        let start = std::time::Instant::now();
        let result = self.append_inner(payload);
        lisa_telemetry::counter_add("store.appends", 1);
        lisa_telemetry::histogram_record("store.append_us", start.elapsed().as_micros() as u64);
        match &result {
            Ok(()) => lisa_telemetry::counter_add(
                "store.bytes_appended",
                (FRAME_HEADER + payload.len()) as u64,
            ),
            Err(_) => lisa_telemetry::counter_add("store.append_failures", 1),
        }
        result
    }

    fn append_inner(&mut self, payload: &[u8]) -> io::Result<()> {
        let frame = frame(payload);
        if let Some(inj) = &self.faults {
            match inj.on_append(frame.len()) {
                Some(IoFault::Torn { keep }) => {
                    let keep = keep.min(frame.len().saturating_sub(1));
                    let _ = self.file.write_all(&frame[..keep]);
                    let _ = self.file.sync_data();
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "torn write (injected)",
                    ));
                }
                Some(IoFault::Enospc) => {
                    return Err(io::Error::new(
                        io::ErrorKind::StorageFull,
                        "no space left on device (injected)",
                    ));
                }
                _ => {}
            }
        }
        if let Err(e) = self.file.write_all(&frame) {
            let _ = self.file.set_len(self.good_end);
            return Err(e);
        }
        if let Some(inj) = &self.faults {
            if inj.on_sync() == Some(IoFault::FsyncFail) {
                // The bytes are written but durability is unknown; count
                // the frame as good in memory — recovery tolerates either
                // outcome after a crash.
                self.good_end += frame.len() as u64;
                return Err(io::Error::other("fsync failed (injected)"));
            }
        }
        if lisa_telemetry::metrics_enabled() {
            let sync_start = std::time::Instant::now();
            self.file.sync_data()?;
            lisa_telemetry::counter_add("store.fsyncs", 1);
            lisa_telemetry::histogram_record(
                "store.fsync_us",
                sync_start.elapsed().as_micros() as u64,
            );
        } else {
            self.file.sync_data()?;
        }
        self.good_end += frame.len() as u64;
        Ok(())
    }

    /// Current journal length in bytes (end of the last good frame).
    pub fn len_bytes(&self) -> u64 {
        self.good_end
    }

    /// Truncate the file back to the last good frame boundary, discarding
    /// any torn bytes a failed [`Journal::append`] left behind. Callers
    /// that keep appending after a failed append must repair first:
    /// records written after a torn frame are unreachable to `scan` (it
    /// stops at the tear), so they would be acknowledged and then
    /// silently lost on the next open.
    pub fn repair_tail(&mut self) -> io::Result<()> {
        self.file.set_len(self.good_end)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Discard all records (used after a checkpoint has absorbed them).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.good_end = 0;
        Ok(())
    }
}

/// Write `payload` to `path` atomically as one checksummed frame:
/// write-temp + fsync + rename, so readers observe either the old
/// snapshot or the new one, never a partial write.
pub fn write_atomic(path: &Path, payload: &[u8]) -> io::Result<()> {
    let mut span = lisa_telemetry::span_with(
        "store.snapshot",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string(),
    );
    span.arg("bytes", payload.len() as u64);
    if lisa_telemetry::metrics_enabled() {
        let start = std::time::Instant::now();
        let result = write_file_atomic(path, &frame(payload));
        lisa_telemetry::counter_add("store.snapshots", 1);
        lisa_telemetry::histogram_record(
            "store.snapshot_us",
            start.elapsed().as_micros() as u64,
        );
        result
    } else {
        write_file_atomic(path, &frame(payload))
    }
}

/// Write raw `bytes` to `path` atomically (write-temp + fsync + rename),
/// with no framing added. Used by compaction and by replication, where
/// the bytes being installed are already a framed journal or snapshot
/// and must land byte-identical to the leader's copy.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // Unique temp name per write: `rules.snap` and `rules.log` live in
    // the same directory, and another process may be checkpointing the
    // same store — a shared `.tmp` name would let one writer clobber the
    // other's half-written frame and rename garbage into place.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("store");
    let tmp = path.with_file_name(format!(
        "{file_name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let written = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if written.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    written?;
    // Make the rename itself durable where the platform allows opening
    // directories; failure to sync the directory is not fatal.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read an atomic snapshot written by [`write_atomic`]. Returns `None`
/// when the file is absent *or* fails its checksum — a corrupt snapshot
/// is ignored, never trusted.
pub fn read_atomic(path: &Path) -> Option<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    let scanned = scan(&bytes);
    if scanned.records.len() == 1 && scanned.corrupt.is_empty() && scanned.torn_bytes == 0 {
        scanned.records.into_iter().next()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lisa-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal");
        {
            let (mut j, report) = Journal::open(&path, None).expect("open");
            assert!(report.records.is_empty());
            for i in 0..10u32 {
                j.append(format!("record-{i}").as_bytes()).expect("append");
            }
        }
        let (_, report) = Journal::open(&path, None).expect("reopen");
        assert_eq!(report.records.len(), 10);
        assert_eq!(report.records[3], b"record-3");
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        {
            let (mut j, _) = Journal::open(&path, None).expect("open");
            j.append(b"alpha").expect("append");
            j.append(b"beta").expect("append");
        }
        // Simulate a crash mid-write: half a frame dangling at the tail.
        let partial = &frame(b"gamma")[..7];
        let mut raw = std::fs::read(&path).expect("read");
        raw.extend_from_slice(partial);
        std::fs::write(&path, &raw).expect("write");

        let (_, report) = Journal::open(&path, None).expect("reopen");
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.truncated_bytes, 7);
        // The repair is persistent: a third open sees a clean file.
        let (_, report) = Journal::open(&path, None).expect("re-reopen");
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_is_quarantined_and_neighbors_survive() {
        let dir = tmpdir("quarantine");
        let path = dir.join("wal");
        {
            let (mut j, _) = Journal::open(&path, None).expect("open");
            for payload in [b"first".as_slice(), b"second", b"third"] {
                j.append(payload).expect("append");
            }
        }
        // Flip a payload byte of the middle record.
        let mut raw = std::fs::read(&path).expect("read");
        let mid = frame(b"first").len() + FRAME_HEADER + 2;
        raw[mid] ^= 0xff;
        std::fs::write(&path, &raw).expect("write");

        let (_, report) = Journal::open(&path, None).expect("reopen");
        assert_eq!(report.records, vec![b"first".to_vec(), b"third".to_vec()]);
        assert_eq!(report.quarantined, 1);
        assert!(path.with_extension("quarantine").exists());
        // Compaction happened: a further open is clean and idempotent.
        let (_, report) = Journal::open(&path, None).expect("re-reopen");
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.quarantined, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_length_prefix_is_a_torn_tail_not_an_allocation() {
        // This codepath is network-facing via replication: a corrupt or
        // hostile u32 length must be rejected before any allocation.
        let mut bytes = frame(b"good");
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"whatever follows the lying header");
        let s = scan(&bytes);
        assert_eq!(s.records, vec![b"good".to_vec()]);
        assert_eq!(s.torn_bytes, bytes.len() - frame(b"good").len());
        assert!(s.corrupt.is_empty());

        // Length just over MAX_RECORD: same treatment, even if the buffer
        // claims to hold it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_RECORD + 1).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let s = scan(&bytes);
        assert!(s.records.is_empty());
        assert_eq!(s.torn_bytes, bytes.len());

        // Length exceeding the remaining buffer (frame runs past EOF).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 10]);
        let s = scan(&bytes);
        assert!(s.records.is_empty());
        assert_eq!(s.torn_bytes, bytes.len());

        // And a Journal::open over such a file repairs it durably.
        let dir = tmpdir("hostile-len");
        let path = dir.join("wal");
        let mut raw = frame(b"kept");
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&[0xAB; 20]);
        std::fs::write(&path, &raw).expect("write");
        let (_, report) = Journal::open(&path, None).expect("open");
        assert_eq!(report.records, vec![b"kept".to_vec()]);
        assert!(report.truncated_bytes > 0);
        let (_, report) = Journal::open(&path, None).expect("reopen");
        assert_eq!(report.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_reports_boundaries() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame(b"a"));
        bytes.extend_from_slice(&frame(b"bb"));
        let s = scan(&bytes);
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.boundaries, vec![13, 27]);
        assert_eq!(s.torn_bytes, 0);
    }

    #[test]
    fn snapshot_roundtrip_and_corruption_rejection() {
        let dir = tmpdir("snap");
        let path = dir.join("state.snap");
        write_atomic(&path, b"snapshot-state").expect("write");
        assert_eq!(read_atomic(&path).as_deref(), Some(b"snapshot-state".as_slice()));
        // Corrupt one byte: the snapshot must be ignored, not trusted.
        let mut raw = std::fs::read(&path).expect("read");
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).expect("write");
        assert_eq!(read_atomic(&path), None);
        assert_eq!(read_atomic(&dir.join("absent.snap")), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    struct AlwaysTorn;
    impl IoFaults for AlwaysTorn {
        fn on_append(&self, len: usize) -> Option<IoFault> {
            Some(IoFault::Torn { keep: len / 2 })
        }
    }

    struct TornOnce(std::sync::atomic::AtomicUsize);
    impl IoFaults for TornOnce {
        fn on_append(&self, len: usize) -> Option<IoFault> {
            if self.0.fetch_add(1, Ordering::Relaxed) == 0 {
                Some(IoFault::Torn { keep: len / 2 })
            } else {
                None
            }
        }
    }

    #[test]
    fn repair_tail_makes_post_failure_appends_reachable() {
        let dir = tmpdir("repair");
        let path = dir.join("wal");
        {
            let (mut j, _) = Journal::open(&path, Some(Arc::new(TornOnce(Default::default()))))
                .expect("open");
            assert!(j.append(b"torn").is_err());
            // Without the repair, this record would sit behind the torn
            // frame and be dropped by the next open's scan.
            j.repair_tail().expect("repair");
            j.append(b"kept").expect("append after repair");
        }
        let (_, report) = Journal::open(&path, None).expect("reopen");
        assert_eq!(report.records, vec![b"kept".to_vec()]);
        assert_eq!(report.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_use_unique_temp_names_and_clean_up() {
        let dir = tmpdir("tmpnames");
        // Same-directory snapshot + journal targets must never share a
        // temp file name (they used to both map to `rules.tmp`).
        write_atomic(&dir.join("rules.snap"), b"snapshot").expect("snap");
        write_atomic(&dir.join("rules.log"), b"compacted").expect("log");
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .expect("read_dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        assert_eq!(read_atomic(&dir.join("rules.snap")).as_deref(), Some(b"snapshot".as_slice()));
        assert_eq!(read_atomic(&dir.join("rules.log")).as_deref(), Some(b"compacted".as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_leaves_recoverable_journal() {
        let dir = tmpdir("fault-torn");
        let path = dir.join("wal");
        {
            let (mut j, _) = Journal::open(&path, None).expect("open");
            j.append(b"durable").expect("append");
        }
        {
            let (mut j, _) =
                Journal::open(&path, Some(Arc::new(AlwaysTorn))).expect("open faulted");
            assert!(j.append(b"lost-to-the-torn-write").is_err());
        }
        let (_, report) = Journal::open(&path, None).expect("recover");
        assert_eq!(report.records, vec![b"durable".to_vec()]);
        assert!(report.truncated_bytes > 0, "the torn half-frame was dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
