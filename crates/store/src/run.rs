//! Per-run recovery state: journal + snapshot → the set of settled
//! verdicts a resumed gate run does not need to recompute.
//!
//! Invariants (DESIGN.md §10):
//!
//! 1. **Prefix durability** — after a crash, the recovered state equals
//!    replaying some prefix of the events the run emitted (torn tails
//!    only ever drop a suffix; quarantine only drops individual records,
//!    which at worst re-checks a rule).
//! 2. **Replay idempotence** — applying a journal twice yields the same
//!    state as once (`RuleCheckFinished` replaces by rule id).
//! 3. **Checkpoint equivalence** — snapshot + tail replay ≡ full-journal
//!    replay (the snapshot *is* an encoded event sequence).
//! 4. **Key isolation** — a journal written under a different
//!    `run_key` (other version or rule set) is archived, never replayed.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::event::{GateEvent, RuleOutcome};
use crate::journal::{read_atomic, scan, write_atomic, IoFaults, Journal};
use crate::repl::ReplBus;
use crate::StoreError;

/// Recovered state of one gate run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunState {
    pub run_key: Option<String>,
    /// Rules whose check began (a Started without a Finished marks work
    /// lost to the crash).
    pub started: Vec<String>,
    /// Settled outcomes in completion order, replace-in-place by rule id.
    pub finished: Vec<RuleOutcome>,
    /// Final decision, if the run completed.
    pub decision: Option<String>,
}

impl RunState {
    /// Apply one event. Idempotent: applying the same event again leaves
    /// the state unchanged.
    pub fn apply(&mut self, event: &GateEvent) {
        match event {
            GateEvent::RunStarted { run_key } => {
                if self.run_key.as_deref() != Some(run_key.as_str()) {
                    // A new run supersedes any previous state.
                    *self = RunState::default();
                    self.run_key = Some(run_key.clone());
                }
            }
            GateEvent::RuleCheckStarted { rule_id } => {
                if !self.started.contains(rule_id) {
                    self.started.push(rule_id.clone());
                }
            }
            GateEvent::RuleCheckFinished { outcome } => {
                match self.finished.iter_mut().find(|o| o.rule_id == outcome.rule_id) {
                    Some(slot) => *slot = outcome.clone(),
                    None => self.finished.push(outcome.clone()),
                }
            }
            GateEvent::RunFinished { decision } => {
                self.decision = Some(decision.clone());
            }
            // Rule registrations belong to the rule store, not a run.
            GateEvent::RuleRegistered { .. } => {}
        }
    }

    /// Replay a sequence of raw record payloads; undecodable records are
    /// skipped (they can only force a re-check, never invent a verdict).
    pub fn replay<'a>(records: impl IntoIterator<Item = &'a [u8]>) -> RunState {
        let mut state = RunState::default();
        for payload in records {
            if let Ok(event) = GateEvent::decode(payload) {
                state.apply(&event);
            }
        }
        state
    }

    /// The settled outcome for `rule_id`, if its verdict was journaled.
    pub fn finished_outcome(&self, rule_id: &str) -> Option<&RuleOutcome> {
        self.finished.iter().find(|o| o.rule_id == rule_id)
    }

    /// Encode the state as a snapshot payload: a framed event sequence,
    /// so snapshot decoding *is* journal replay (invariant 3 by
    /// construction).
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut events = Vec::new();
        if let Some(key) = &self.run_key {
            events.push(GateEvent::RunStarted { run_key: key.clone() });
        }
        for id in &self.started {
            events.push(GateEvent::RuleCheckStarted { rule_id: id.clone() });
        }
        for o in &self.finished {
            events.push(GateEvent::RuleCheckFinished { outcome: o.clone() });
        }
        if let Some(d) = &self.decision {
            events.push(GateEvent::RunFinished { decision: d.clone() });
        }
        let mut bytes = Vec::new();
        for e in &events {
            bytes.extend_from_slice(&crate::journal::frame(&e.encode()));
        }
        bytes
    }

    /// Decode a snapshot payload produced by [`RunState::to_snapshot`].
    pub fn from_snapshot(payload: &[u8]) -> RunState {
        let scanned = scan(payload);
        RunState::replay(scanned.records.iter().map(|r| r.as_slice()))
    }
}

/// Durable store for one gate run: a write-ahead journal plus an atomic
/// snapshot checkpoint, rooted at a directory.
pub struct RunStore {
    dir: PathBuf,
    journal: Journal,
    /// Set false after the first append failure: the run continues in
    /// memory (availability over durability) and the caller is warned.
    journaling: bool,
    /// When attached, every durable mutation is also published for
    /// follower shipping. Publishing mirrors the *in-memory* state, so a
    /// leader degraded to memory-only still keeps its followers current.
    repl: Option<Arc<ReplBus>>,
    pub state: RunState,
    pub warnings: Vec<String>,
    /// Records recovered from disk on open (journal tail only, excluding
    /// the snapshot).
    pub recovered_records: usize,
}

impl RunStore {
    /// Snapshot file name inside a run's state directory.
    pub const SNAPSHOT: &'static str = "state.snap";
    /// Write-ahead journal file name inside a run's state directory.
    pub const JOURNAL: &'static str = "wal.log";

    /// Open the store for `run_key`, replaying snapshot + journal. State
    /// journaled under a *different* key is archived (`*.stale`) and a
    /// fresh run is started.
    pub fn open(
        dir: impl Into<PathBuf>,
        run_key: &str,
        faults: Option<Arc<dyn IoFaults>>,
    ) -> Result<RunStore, StoreError> {
        RunStore::open_replicated(dir, run_key, faults, None)
    }

    /// [`RunStore::open`] with a replication bus attached: every append,
    /// checkpoint, and reset is also published for follower shipping.
    pub fn open_replicated(
        dir: impl Into<PathBuf>,
        run_key: &str,
        faults: Option<Arc<dyn IoFaults>>,
        repl: Option<Arc<ReplBus>>,
    ) -> Result<RunStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let snap_path = dir.join(Self::SNAPSHOT);
        let wal_path = dir.join(Self::JOURNAL);

        let mut state = match read_atomic(&snap_path) {
            Some(payload) => RunState::from_snapshot(&payload),
            None => RunState::default(),
        };
        let (journal, report) = Journal::open(&wal_path, faults.clone())?;
        for record in &report.records {
            if let Ok(event) = GateEvent::decode(record) {
                state.apply(&event);
            }
        }
        let mut store = RunStore {
            dir,
            journal,
            journaling: true,
            repl,
            state,
            warnings: Vec::new(),
            recovered_records: report.records.len(),
        };
        if report.quarantined > 0 {
            store
                .warnings
                .push(format!("journal: {} corrupt record(s) quarantined", report.quarantined));
        }
        if report.truncated_bytes > 0 {
            store
                .warnings
                .push(format!("journal: torn tail of {} byte(s) truncated", report.truncated_bytes));
        }

        if store.state.run_key.as_deref() != Some(run_key) {
            if store.state.run_key.is_some() {
                store.archive_stale()?;
                store.warnings.push(
                    "journal belonged to a different (version, rules) run; archived as .stale"
                        .to_string(),
                );
            }
            store.state = RunState::default();
            store.recovered_records = 0;
            store.append(&GateEvent::RunStarted { run_key: run_key.to_string() });
        }
        Ok(store)
    }

    fn archive_stale(&mut self) -> Result<(), StoreError> {
        let wal = self.dir.join(Self::JOURNAL);
        if let Ok(bytes) = std::fs::read(&wal) {
            if !bytes.is_empty() {
                let _ = std::fs::write(self.dir.join("wal.log.stale"), &bytes);
            }
        }
        self.journal.reset()?;
        let snap = self.dir.join(Self::SNAPSHOT);
        if snap.exists() {
            let _ = std::fs::rename(&snap, self.dir.join("state.snap.stale"));
        }
        if let Some(bus) = &self.repl {
            // Mirror the archival on followers by emptying both files: an
            // empty snapshot reads as absent, an empty journal replays
            // nothing, and the RunStarted that follows starts the fresh
            // run on both sides.
            bus.publish_reset(&self.dir.join(Self::JOURNAL));
            bus.publish_reset(&snap);
        }
        Ok(())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(Self::JOURNAL)
    }

    /// True while appends are still reaching disk.
    pub fn durable(&self) -> bool {
        self.journaling
    }

    /// Apply an event to the in-memory state and journal it. An append
    /// failure downgrades the run to in-memory (warned, never fatal) —
    /// a gate that cannot journal must still return a decision.
    pub fn append(&mut self, event: &GateEvent) {
        self.state.apply(event);
        let encoded = event.encode();
        if self.journaling {
            if let Err(e) = self.journal.append(&encoded) {
                self.journaling = false;
                self.warnings.push(format!(
                    "journal append failed ({e}); continuing without durability"
                ));
            }
        }
        // Published even when the local disk failed: the bus mirrors the
        // in-memory state, and a follower with a healthy disk is exactly
        // the durability the degraded leader lost.
        if let Some(bus) = &self.repl {
            bus.publish_append(&self.dir.join(Self::JOURNAL), &encoded);
        }
    }

    pub fn record_started(&mut self, rule_id: &str) {
        self.append(&GateEvent::RuleCheckStarted { rule_id: rule_id.to_string() });
    }

    pub fn record_finished(&mut self, outcome: RuleOutcome) {
        self.append(&GateEvent::RuleCheckFinished { outcome });
    }

    pub fn record_run_finished(&mut self, decision: &str) {
        self.append(&GateEvent::RunFinished { decision: decision.to_string() });
    }

    /// Checkpoint: write the current state as an atomic snapshot and
    /// truncate the journal it absorbs. Crash-safe at every point — the
    /// rename is atomic and the journal is only reset after the snapshot
    /// is durable.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let payload = self.state.to_snapshot();
        let snap = self.dir.join(Self::SNAPSHOT);
        write_atomic(&snap, &payload)?;
        if let Some(bus) = &self.repl {
            // Ship the on-disk bytes (the framed payload) so the
            // follower's snapshot is byte-identical, then the reset in
            // the same order the leader applied them.
            bus.publish_file(&snap, &crate::journal::frame(&payload));
        }
        self.journal.reset()?;
        if let Some(bus) = &self.repl {
            bus.publish_reset(&self.dir.join(Self::JOURNAL));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lisa-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn outcome(id: &str, violated: u64) -> RuleOutcome {
        RuleOutcome {
            rule_id: id.to_string(),
            fingerprint: format!("[label] chain for {id}\nviolated={violated}"),
            verified: 1,
            violated,
            not_covered: 0,
            engine_errors: 0,
            degraded: false,
            sanity_ok: true,
            retries: 0,
        }
    }

    #[test]
    fn resume_sees_settled_outcomes() {
        let dir = tmpdir("resume");
        {
            let mut store = RunStore::open(&dir, "key-1", None).expect("open");
            store.record_started("A");
            store.record_finished(outcome("A", 1));
            store.record_started("B");
            // Crash here: B started but never finished.
        }
        let store = RunStore::open(&dir, "key-1", None).expect("reopen");
        assert_eq!(store.state.finished_outcome("A"), Some(&outcome("A", 1)));
        assert_eq!(store.state.finished_outcome("B"), None);
        assert!(store.state.started.contains(&"B".to_string()));
        assert!(store.state.decision.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_run_key_archives_stale_state() {
        let dir = tmpdir("stale");
        {
            let mut store = RunStore::open(&dir, "key-old", None).expect("open");
            store.record_finished(outcome("A", 1));
        }
        let store = RunStore::open(&dir, "key-new", None).expect("reopen");
        assert_eq!(store.state.finished.len(), 0, "stale verdicts must not leak");
        assert_eq!(store.state.run_key.as_deref(), Some("key-new"));
        assert!(store.warnings.iter().any(|w| w.contains("different")), "{:?}", store.warnings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_tail_equals_full_history() {
        let dir = tmpdir("ckpt");
        {
            let mut store = RunStore::open(&dir, "k", None).expect("open");
            store.record_finished(outcome("A", 0));
            store.record_finished(outcome("B", 1));
            store.checkpoint().expect("checkpoint");
            // Journal now empty; tail events follow the snapshot.
            store.record_finished(outcome("B", 0)); // replaced in place
            store.record_finished(outcome("C", 2));
            store.record_run_finished("BLOCK");
        }
        let store = RunStore::open(&dir, "k", None).expect("reopen");
        assert_eq!(store.state.finished_outcome("A"), Some(&outcome("A", 0)));
        assert_eq!(store.state.finished_outcome("B"), Some(&outcome("B", 0)));
        assert_eq!(store.state.finished_outcome("C"), Some(&outcome("C", 2)));
        assert_eq!(store.state.decision.as_deref(), Some("BLOCK"));
        let ids: Vec<&str> = store.state.finished.iter().map(|o| o.rule_id.as_str()).collect();
        assert_eq!(ids, vec!["A", "B", "C"], "replace-in-place keeps order");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replicated_store_mirrors_state_onto_a_follower_root() {
        use crate::repl::{decode_wire, Applier, BusPoll, ReplBus, Wire};
        use std::time::Duration;

        let leader_root = tmpdir("repl-leader");
        let follower_root = tmpdir("repl-follower");
        let job_dir = leader_root.join("job-1");
        let bus = ReplBus::new(&leader_root);
        {
            let mut store =
                RunStore::open_replicated(&job_dir, "k", None, Some(bus.clone())).expect("open");
            store.record_started("A");
            store.record_finished(outcome("A", 0));
            store.checkpoint().expect("checkpoint");
            store.record_started("B");
            store.record_finished(outcome("B", 1));
            store.record_run_finished("BLOCK");
        }
        // Drain the bus and apply every event onto the follower root.
        let applier = Applier::new(&follower_root).expect("applier");
        match bus.poll_after(0, Duration::from_millis(1)) {
            BusPoll::Frames(frames) => {
                for (_, payload) in frames {
                    if let Wire::Event { event, .. } = decode_wire(&payload).expect("decode") {
                        applier.apply(&event).expect("apply");
                    }
                }
            }
            other => panic!("expected frames, got {other:?}"),
        }
        // Snapshot bytes must mirror exactly; the journal tails may
        // differ only if the leader compacted (it did not here).
        assert_eq!(
            std::fs::read(job_dir.join("state.snap")).expect("leader snap"),
            std::fs::read(follower_root.join("job-1/state.snap")).expect("follower snap"),
        );
        assert_eq!(
            std::fs::read(job_dir.join("wal.log")).expect("leader wal"),
            std::fs::read(follower_root.join("job-1/wal.log")).expect("follower wal"),
        );
        // Recovery on the follower sees the same settled verdicts.
        let leader = RunStore::open(&job_dir, "k", None).expect("leader reopen");
        let follower =
            RunStore::open(follower_root.join("job-1"), "k", None).expect("follower open");
        assert_eq!(leader.state, follower.state);
        assert_eq!(follower.state.decision.as_deref(), Some("BLOCK"));
        let _ = std::fs::remove_dir_all(&leader_root);
        let _ = std::fs::remove_dir_all(&follower_root);
    }

    #[test]
    fn append_failure_degrades_but_never_aborts() {
        struct NoSpace;
        impl IoFaults for NoSpace {
            fn on_append(&self, _len: usize) -> Option<crate::IoFault> {
                Some(crate::IoFault::Enospc)
            }
        }
        let dir = tmpdir("enospc");
        let mut store =
            RunStore::open(&dir, "k", Some(Arc::new(NoSpace))).expect("open");
        store.record_finished(outcome("A", 1));
        assert!(!store.durable());
        assert!(store.warnings.iter().any(|w| w.contains("without durability")));
        // In-memory state is intact: the gate can still decide.
        assert!(store.state.finished_outcome("A").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
