//! The persistent rule store.
//!
//! The paper's contract store ("every failure, once fixed, automatically
//! becomes an executable contract") must outlive any single process: a
//! rule registered today is enforced on every change, forever. This
//! module journals registrations and checkpoints the registry, with the
//! in-memory replace-in-place semantics of `RuleRegistry::register`
//! reproduced on replay — re-registering an updated rule keeps registry
//! (and report) order stable across restarts, not just within one
//! process.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use lisa_analysis::TargetSpec;
use lisa_oracle::SemanticRule;

use crate::event::GateEvent;
use crate::journal::{read_atomic, scan, write_atomic, IoFaults, Journal};
use crate::StoreError;

/// Encode a rule as a registration event.
fn rule_event(rule: &SemanticRule) -> GateEvent {
    let (target_kind, callee, caller) = match &rule.target {
        TargetSpec::Call { callee } => ("call", callee.clone(), String::new()),
        TargetSpec::Builtin { name } => ("builtin", name.clone(), String::new()),
        TargetSpec::BuiltinInSync { name } => ("builtin-in-sync", name.clone(), String::new()),
        TargetSpec::BuiltinInCaller { name, caller } => {
            ("builtin-in-caller", name.clone(), caller.clone())
        }
    };
    GateEvent::RuleRegistered {
        id: rule.id.clone(),
        description: rule.description.clone(),
        target_kind: target_kind.to_string(),
        callee,
        caller,
        condition_src: rule.condition_src.clone(),
    }
}

/// Rebuild a rule from a registration event.
fn rule_of_event(event: &GateEvent) -> Result<SemanticRule, String> {
    let GateEvent::RuleRegistered { id, description, target_kind, callee, caller, condition_src } =
        event
    else {
        return Err("not a rule-registered event".to_string());
    };
    let target = match target_kind.as_str() {
        "call" => TargetSpec::Call { callee: callee.clone() },
        "builtin" => TargetSpec::Builtin { name: callee.clone() },
        "builtin-in-sync" => TargetSpec::BuiltinInSync { name: callee.clone() },
        "builtin-in-caller" => {
            TargetSpec::BuiltinInCaller { name: callee.clone(), caller: caller.clone() }
        }
        other => return Err(format!("unknown target kind {other:?}")),
    };
    SemanticRule::new(id.clone(), description.clone(), target, condition_src.clone())
        .map_err(|e| format!("rule {id}: stored condition no longer parses: {e}"))
}

/// A durable registry of semantic rules.
pub struct RuleStore {
    dir: PathBuf,
    journal: Journal,
    rules: Vec<SemanticRule>,
    /// Set when a failed append left a torn frame that could not be
    /// truncated away: further registrations are refused rather than
    /// acknowledged and silently lost behind the tear on the next open.
    poisoned: bool,
    pub warnings: Vec<String>,
}

impl RuleStore {
    const SNAPSHOT: &'static str = "rules.snap";
    const JOURNAL: &'static str = "rules.log";

    /// Open (creating if absent) and replay snapshot + journal.
    pub fn open(
        dir: impl Into<PathBuf>,
        faults: Option<Arc<dyn IoFaults>>,
    ) -> Result<RuleStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut warnings = Vec::new();
        let mut rules: Vec<SemanticRule> = Vec::new();
        let mut apply = |payload: &[u8], warnings: &mut Vec<String>| {
            match GateEvent::decode(payload).and_then(|e| rule_of_event(&e)) {
                Ok(rule) => match rules.iter_mut().find(|r| r.id == rule.id) {
                    Some(slot) => *slot = rule,
                    None => rules.push(rule),
                },
                Err(e) => warnings.push(format!("skipped unreadable rule record: {e}")),
            }
        };
        if let Some(snapshot) = read_atomic(&dir.join(Self::SNAPSHOT)) {
            for record in scan(&snapshot).records {
                apply(&record, &mut warnings);
            }
        }
        let (journal, report) = Journal::open(dir.join(Self::JOURNAL), faults)?;
        for record in &report.records {
            apply(record, &mut warnings);
        }
        if report.quarantined > 0 {
            warnings.push(format!("rules journal: {} record(s) quarantined", report.quarantined));
        }
        Ok(RuleStore { dir, journal, rules, poisoned: false, warnings })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Register a rule durably; replaces any rule with the same id *in
    /// place* (same contract as `RuleRegistry::register`, but across
    /// processes).
    ///
    /// A failed append repairs the journal tail before returning, so a
    /// torn frame cannot sit mid-file and swallow every later
    /// registration on the next open. If even the repair fails the store
    /// is poisoned: further `register` calls error out instead of
    /// acknowledging rules that replay would silently discard.
    pub fn register(&mut self, rule: SemanticRule) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Io(std::io::Error::other(
                "rule store poisoned by an unrepaired append failure; reopen to recover",
            )));
        }
        if let Err(e) = self.journal.append(&rule_event(&rule).encode()) {
            if let Err(repair) = self.journal.repair_tail() {
                self.poisoned = true;
                self.warnings.push(format!(
                    "journal tail unrepairable after failed append ({repair}); refusing further registrations"
                ));
            }
            return Err(StoreError::Io(e));
        }
        match self.rules.iter_mut().find(|r| r.id == rule.id) {
            Some(slot) => *slot = rule,
            None => self.rules.push(rule),
        }
        Ok(())
    }

    pub fn rules(&self) -> &[SemanticRule] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Checkpoint the registry into the snapshot and truncate the journal.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        for rule in &self.rules {
            payload.extend_from_slice(&crate::journal::frame(&rule_event(rule).encode()));
        }
        write_atomic(&self.dir.join(Self::SNAPSHOT), &payload)?;
        self.journal.reset()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lisa-rules-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn rule(id: &str, desc: &str, cond: &str) -> SemanticRule {
        SemanticRule::new(id, desc, TargetSpec::Call { callee: "create_ephemeral".into() }, cond)
            .expect("rule")
    }

    #[test]
    fn registry_survives_restart() {
        let dir = tmpdir("restart");
        {
            let mut store = RuleStore::open(&dir, None).expect("open");
            store.register(rule("A", "first", "s != null")).expect("register");
            store.register(rule("B", "second", "s != null && s.closing == false")).expect("register");
        }
        let store = RuleStore::open(&dir, None).expect("reopen");
        assert_eq!(store.len(), 2);
        assert_eq!(store.rules()[0].id, "A");
        assert_eq!(store.rules()[1].condition_src, "s != null && s.closing == false");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replace_in_place_holds_across_processes() {
        let dir = tmpdir("replace");
        {
            let mut store = RuleStore::open(&dir, None).expect("open");
            for id in ["A", "B", "C"] {
                store.register(rule(id, id, "s != null")).expect("register");
            }
        }
        {
            // A second "process" re-registers B with an updated condition.
            let mut store = RuleStore::open(&dir, None).expect("reopen");
            store.register(rule("B", "B updated", "s != null && s.closing == false"))
                .expect("register");
        }
        let store = RuleStore::open(&dir, None).expect("re-reopen");
        let ids: Vec<&str> = store.rules().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["A", "B", "C"], "replacement must not reorder across restarts");
        assert_eq!(store.rules()[1].description, "B updated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_without_losing_rules() {
        let dir = tmpdir("ckpt");
        {
            let mut store = RuleStore::open(&dir, None).expect("open");
            for i in 0..5 {
                store.register(rule(&format!("R{i}"), "r", "s != null")).expect("register");
            }
            // Many replacements bloat the journal; checkpoint absorbs them.
            for _ in 0..10 {
                store.register(rule("R0", "updated", "s != null")).expect("register");
            }
            store.checkpoint().expect("checkpoint");
        }
        let store = RuleStore::open(&dir, None).expect("reopen");
        assert_eq!(store.len(), 5);
        assert_eq!(store.rules()[0].description, "updated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_does_not_swallow_later_registrations() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        use crate::journal::{IoFault, IoFaults};

        // Torn write on the second append only.
        struct TornSecond(AtomicUsize);
        impl IoFaults for TornSecond {
            fn on_append(&self, len: usize) -> Option<IoFault> {
                if self.0.fetch_add(1, Ordering::Relaxed) == 1 {
                    Some(IoFault::Torn { keep: len / 2 })
                } else {
                    None
                }
            }
        }

        let dir = tmpdir("torn-register");
        {
            let mut store = RuleStore::open(&dir, Some(Arc::new(TornSecond(AtomicUsize::new(0)))))
                .expect("open");
            store.register(rule("A", "first", "s != null")).expect("register A");
            assert!(store.register(rule("B", "torn", "s != null")).is_err());
            // The failed append repaired the tail, so this acknowledged
            // registration must survive the next open.
            store.register(rule("C", "third", "s != null")).expect("register C");
        }
        let store = RuleStore::open(&dir, None).expect("reopen");
        let ids: Vec<&str> = store.rules().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["A", "C"], "C was acknowledged and must replay");
        assert!(store.warnings.is_empty(), "{:?}", store.warnings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_target_kinds_roundtrip() {
        let dir = tmpdir("targets");
        let specs = [
            TargetSpec::Call { callee: "f".into() },
            TargetSpec::Builtin { name: "blocking_io".into() },
            TargetSpec::BuiltinInSync { name: "blocking_io".into() },
            TargetSpec::BuiltinInCaller { name: "blocking_io".into(), caller: "flush".into() },
        ];
        {
            let mut store = RuleStore::open(&dir, None).expect("open");
            for (i, spec) in specs.iter().enumerate() {
                let r = SemanticRule::new(format!("T{i}"), "t", spec.clone(), "$locks.held == 0")
                    .expect("rule");
                store.register(r).expect("register");
            }
        }
        let store = RuleStore::open(&dir, None).expect("reopen");
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(&store.rules()[i].target, spec);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
