//! Corpus integrity: structural invariants that every case must keep as
//! the corpus grows — versions parse/typecheck, tickets carry real
//! diffs, recurrence tickets also infer ground-truth-equivalent rules,
//! and every module roundtrips through the pretty-printer.

use lisa_corpus::all_cases;
use lisa_lang::pretty::print_module;
use lisa_lang::{parse_module, Program};
use lisa_oracle::infer_rules;

#[test]
fn every_module_roundtrips_through_the_pretty_printer() {
    for case in all_cases() {
        for v in case.versions.all() {
            for module in &v.program.modules {
                let printed = print_module(module);
                let reparsed = parse_module(&module.name, &printed).unwrap_or_else(|e| {
                    panic!(
                        "{}/{}/{}: printed module does not reparse: {e}\n{printed}",
                        case.meta.id, v.label, module.name
                    )
                });
                assert_eq!(
                    reparsed.functions.len(),
                    module.functions.len(),
                    "{}/{}/{}",
                    case.meta.id,
                    v.label,
                    module.name
                );
                // The printed module must still typecheck in context of
                // the sibling modules.
                let mut modules = v.program.modules.clone();
                for m in &mut modules {
                    if m.name == module.name {
                        *m = reparsed.clone();
                    }
                }
                let p = Program::from_modules(modules).expect("rebuild");
                let errs = lisa_lang::check_program(&p);
                assert!(errs.is_empty(), "{}: {errs:?}", case.meta.id);
            }
        }
    }
}

#[test]
fn every_ticket_has_a_real_patch_and_discussion_or_description() {
    for case in all_cases() {
        for t in &case.tickets {
            assert!(t.patch_size() > 0, "{}: ticket {} has an empty diff", case.meta.id, t.id);
            assert!(
                !t.description.is_empty() || !t.discussion.is_empty(),
                "{}: ticket {} carries no narrative",
                case.meta.id,
                t.id
            );
        }
    }
}

#[test]
fn recurrence_tickets_also_infer_ground_truth_rules() {
    // Not just the original ticket: the second fix teaches the same
    // semantic (often how real corpora accumulate evidence).
    for case in all_cases() {
        for t in case.tickets.iter().skip(1) {
            let out = infer_rules(t)
                .unwrap_or_else(|e| panic!("{}: ticket {}: {e}", case.meta.id, t.id));
            let truth = lisa_smt::parse_cond(&case.ground_truth.condition_src).expect("truth");
            let matched = out.rules.iter().any(|r| {
                // Builtin-family rules mine in caller-specific form and
                // generalize afterwards (Figure 6).
                let r = match &r.target {
                    lisa_analysis::TargetSpec::Call { .. } => r.clone(),
                    _ => lisa_oracle::rescope(r, lisa_oracle::Scope::Generalized)
                        .expect("rescope"),
                };
                r.target == case.ground_truth.target
                    && lisa_smt::equivalent(&r.condition, &truth)
            });
            assert!(
                matched,
                "{}: ticket {} inferred {:?}, expected `{}`",
                case.meta.id,
                t.id,
                out.rules.iter().map(|r| r.condition.to_string()).collect::<Vec<_>>(),
                case.ground_truth.condition_src
            );
        }
    }
}

#[test]
fn buggy_versions_actually_exhibit_the_failure() {
    // On every buggy version, the unsafe state reaches the action on the
    // original path — the incident is reproducible, not hypothetical.
    use lisa_analysis::TargetSpec;
    use lisa_concolic::{ConcolicTracer, Policy};
    use lisa_lang::{Interp, Value};
    for case in all_cases() {
        let TargetSpec::Call { callee } = &case.ground_truth.target else {
            continue; // the blocking-io case is asserted separately
        };
        // Drive the buggy version's own tests; at least one arrival must
        // exist (tests exercise the feature).
        let v = &case.versions.buggy;
        let mut total_hits = 0;
        for t in &v.tests {
            let mut interp = Interp::new(&v.program);
            let mut tracer = ConcolicTracer::new(
                TargetSpec::Call { callee: callee.clone() },
                Default::default(),
                Policy::RecordAll,
            );
            let _ = interp.call(&t.entry, Vec::<Value>::new(), &mut tracer);
            total_hits += tracer.hits.len();
        }
        assert!(
            total_hits > 0,
            "{}: no test reaches `{}` on the buggy version",
            case.meta.id,
            callee
        );
    }
}

#[test]
fn version_labels_are_consistent() {
    for case in all_cases() {
        let labels: Vec<&str> =
            case.versions.all().iter().map(|v| v.label.as_str()).collect();
        assert_eq!(labels, vec!["v1-buggy", "v2-fixed", "v3-regressed", "v4-latest"]);
    }
}

#[test]
fn test_summaries_are_informative() {
    // RAG needs real summaries: non-empty, distinct from bare names.
    for case in all_cases() {
        for v in case.versions.all() {
            for t in &v.tests {
                assert!(!t.summary.is_empty(), "{}: {} has no summary", case.meta.id, t.name);
                assert!(
                    t.summary.split_whitespace().count() >= 3,
                    "{}: summary of {} too thin: {:?}",
                    case.meta.id,
                    t.name,
                    t.summary
                );
            }
        }
    }
}
