//! The full corpus: 16 regression cases / 34 bugs across four mini cloud
//! systems (the §2.1 study set). Four flagship cases are hand-written
//! ([`crate::flagship`]); the remaining twelve are produced by the
//! guarded-action generator with per-case domain vocabulary, conditions,
//! and path structure.

use crate::flagship;
use crate::gen::{AtomSpec, CaseSpec, NULL_ATOM};
use crate::meta::Case;

const fn atom(
    field: &'static str,
    field_ty: &'static str,
    safe: &'static str,
    unsafe_: &'static str,
    healthy: &'static str,
    violating: &'static str,
) -> AtomSpec {
    AtomSpec { field, field_ty, safe, unsafe_, healthy, violating }
}

const WATCH_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom("active", "bool", "{v}.active == true", "{v}.active == false", "true", "false"),
                atom(
                    "session_alive",
                    "bool",
                    "{v}.session_alive == true",
                    "{v}.session_alive == false",
                    "true",
                    "false",
                ),
            ];
const ACL_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom("stale", "bool", "{v}.stale == false", "{v}.stale == true", "false", "true"),
                atom("ref_count", "int", "{v}.ref_count > 0", "{v}.ref_count <= 0", "2", "0"),
            ];
const QUOTA_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom("quota_left", "int", "{v}.quota_left > 0", "{v}.quota_left <= 0", "100", "0"),
                atom(
                    "writable",
                    "bool",
                    "{v}.writable == true",
                    "{v}.writable == false",
                    "true",
                    "false",
                ),
            ];
const REGION_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom(
                    "state",
                    "str",
                    "{v}.state == \"OPEN\"",
                    "{v}.state != \"OPEN\"",
                    "\"OPEN\"",
                    "\"CLOSING\"",
                ),
            ];
const WAL_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom("rolled", "bool", "{v}.rolled == false", "{v}.rolled == true", "false", "true"),
                atom("seq", "int", "{v}.seq >= 1", "{v}.seq < 1", "7", "0"),
            ];
const META_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom("fresh", "bool", "{v}.fresh == true", "{v}.fresh == false", "true", "false"),
                atom("epoch", "int", "{v}.epoch > 0", "{v}.epoch <= 0", "3", "0"),
            ];
const DECOM_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom(
                    "decommissioning",
                    "bool",
                    "{v}.decommissioning == false",
                    "{v}.decommissioning == true",
                    "false",
                    "true",
                ),
                atom("alive", "bool", "{v}.alive == true", "{v}.alive == false", "true", "false"),
            ];
const LEASE_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom(
                    "expired",
                    "bool",
                    "{v}.expired == false",
                    "{v}.expired == true",
                    "false",
                    "true",
                ),
                atom("soft_limit", "int", "{v}.soft_limit > 0", "{v}.soft_limit <= 0", "60", "0"),
            ];
const SAFEMODE_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom(
                    "safemode",
                    "bool",
                    "{v}.safemode == false",
                    "{v}.safemode == true",
                    "false",
                    "true",
                ),
            ];
const TOMBSTONE_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom(
                    "deleted",
                    "bool",
                    "{v}.deleted == false",
                    "{v}.deleted == true",
                    "false",
                    "true",
                ),
                atom("gc_grace", "int", "{v}.gc_grace > 0", "{v}.gc_grace <= 0", "864", "0"),
            ];
const HINT_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom("ttl", "int", "{v}.ttl > 0", "{v}.ttl <= 0", "300", "0"),
                atom(
                    "target_up",
                    "bool",
                    "{v}.target_up == true",
                    "{v}.target_up == false",
                    "true",
                    "false",
                ),
            ];
const REPAIR_ATOMS: &[AtomSpec] = &[
                NULL_ATOM,
                atom("stale", "bool", "{v}.stale == false", "{v}.stale == true", "false", "true"),
            ];

/// The twelve generated case specifications.
pub fn generated_specs() -> Vec<CaseSpec> {
    vec![
        CaseSpec {
            id: "zk-watch-trigger",
            system: "mini-zookeeper",
            feature: "watch delivery",
            title: "Watch fired for a dead session",
            modelled_on: "ZooKeeper watch cluster",
            recurrence_gap_days: 210,
            violates_old_semantics: true,
            entity: "Watcher",
            store: "watchers",
            effect: "fired",
            action: "fire_watch",
            atoms: WATCH_ATOMS,
            paths: &["notify_data_change", "notify_child_change", "notify_expiry"],
            path_vars: &["w", "wt", "we"],
            buggy_missing: 2,
            regressed_missing: 2,
            latest_missing: None,
            ticket_ids: &["ZK-9310", "ZK-9415"],
        },
        CaseSpec {
            id: "zk-acl-cache",
            system: "mini-zookeeper",
            feature: "acl cache",
            title: "Stale ACL cache entry applied to request",
            modelled_on: "ZooKeeper ACL cache cluster",
            recurrence_gap_days: 180,
            violates_old_semantics: false,
            entity: "AclEntry",
            store: "acl_cache",
            effect: "applied",
            action: "apply_acl",
            atoms: ACL_ATOMS,
            paths: &["check_read_acl", "check_write_acl"],
            path_vars: &["entry", "ae"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["ZK-9520", "ZK-9618"],
        },
        CaseSpec {
            id: "zk-quota-check",
            system: "mini-zookeeper",
            feature: "quota enforcement",
            title: "Write accepted past the znode quota",
            modelled_on: "ZooKeeper quota cluster",
            recurrence_gap_days: 420,
            violates_old_semantics: true,
            entity: "Znode",
            store: "znodes",
            effect: "writes",
            action: "write_bytes",
            atoms: QUOTA_ATOMS,
            paths: &["set_data", "multi_set_data", "append_data"],
            path_vars: &["z", "node", "zn"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["ZK-9702", "ZK-9804"],
        },
        CaseSpec {
            id: "hbase-region-close",
            system: "mini-hbase",
            feature: "region lifecycle",
            title: "Put accepted on a closing region",
            modelled_on: "HBase region-close cluster",
            recurrence_gap_days: 260,
            violates_old_semantics: true,
            entity: "Region",
            store: "regions",
            effect: "puts",
            action: "region_put",
            atoms: REGION_ATOMS,
            paths: &["client_put", "bulk_load_put"],
            path_vars: &["r", "region"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["HB-91203", "HB-91677"],
        },
        CaseSpec {
            id: "hbase-wal-roll",
            system: "mini-hbase",
            feature: "wal rolling",
            title: "Append to a rolled WAL segment",
            modelled_on: "HBase WAL cluster",
            recurrence_gap_days: 150,
            violates_old_semantics: false,
            entity: "Wal",
            store: "wals",
            effect: "appends",
            action: "append_wal",
            atoms: WAL_ATOMS,
            paths: &["sync_append", "async_append"],
            path_vars: &["w", "wal"],
            buggy_missing: 1,
            regressed_missing: 2,
            latest_missing: None,
            ticket_ids: &["HB-92411", "HB-92900"],
        },
        CaseSpec {
            id: "hbase-meta-cache",
            system: "mini-hbase",
            feature: "meta cache",
            title: "Request routed through a stale meta entry",
            modelled_on: "HBase meta-cache cluster",
            recurrence_gap_days: 330,
            violates_old_semantics: false,
            entity: "MetaEntry",
            store: "meta_cache",
            effect: "routed",
            action: "route_request",
            atoms: META_ATOMS,
            paths: &["route_get", "route_scan"],
            path_vars: &["m", "entry"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["HB-93150", "HB-93562"],
        },
        CaseSpec {
            id: "hdfs-decommission",
            system: "mini-hdfs",
            feature: "replica placement",
            title: "Replica placed on a decommissioning datanode",
            modelled_on: "HDFS decommission cluster",
            recurrence_gap_days: 270,
            violates_old_semantics: true,
            entity: "Datanode",
            store: "datanodes",
            effect: "placements",
            action: "place_replica",
            atoms: DECOM_ATOMS,
            paths: &["choose_target", "choose_target_for_rebalance", "choose_target_for_recovery"],
            path_vars: &["dn", "node", "dnode"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["HD-94010", "HD-94522"],
        },
        CaseSpec {
            id: "hdfs-lease-renew",
            system: "mini-hdfs",
            feature: "lease management",
            title: "Write continued after lease expiry",
            modelled_on: "HDFS lease cluster",
            recurrence_gap_days: 190,
            violates_old_semantics: true,
            entity: "Lease",
            store: "leases",
            effect: "writes",
            action: "continue_write",
            atoms: LEASE_ATOMS,
            paths: &["append_pipeline", "recover_pipeline"],
            path_vars: &["l", "lease"],
            buggy_missing: 1,
            regressed_missing: 2,
            latest_missing: None,
            ticket_ids: &["HD-95101", "HD-95610"],
        },
        CaseSpec {
            id: "hdfs-safemode",
            system: "mini-hdfs",
            feature: "safemode",
            title: "Namespace mutation allowed in safe mode",
            modelled_on: "HDFS safemode cluster",
            recurrence_gap_days: 120,
            violates_old_semantics: true,
            entity: "Namespace",
            store: "namespaces",
            effect: "mutations",
            action: "mutate_namespace",
            atoms: SAFEMODE_ATOMS,
            paths: &["mkdir_op", "delete_op"],
            path_vars: &["ns", "fsn"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["HD-96005", "HD-96330"],
        },
        CaseSpec {
            id: "cass-tombstone",
            system: "mini-cassandra",
            feature: "tombstone gc",
            title: "Deleted row resurrected after compaction",
            modelled_on: "Cassandra tombstone cluster",
            recurrence_gap_days: 310,
            violates_old_semantics: true,
            entity: "Row",
            store: "rows",
            effect: "emitted",
            action: "emit_row",
            atoms: TOMBSTONE_ATOMS,
            paths: &["read_row", "compact_emit", "range_scan_emit"],
            path_vars: &["row", "cur", "rrow"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["CA-97120", "CA-97543"],
        },
        CaseSpec {
            id: "cass-hint-ttl",
            system: "mini-cassandra",
            feature: "hinted handoff",
            title: "Expired hint replayed to replica",
            modelled_on: "Cassandra hint cluster",
            recurrence_gap_days: 230,
            violates_old_semantics: false,
            entity: "Hint",
            store: "hints",
            effect: "replayed",
            action: "replay_hint",
            atoms: HINT_ATOMS,
            paths: &["deliver_hints", "deliver_hints_on_gossip"],
            path_vars: &["h", "hint"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["CA-98031", "CA-98467"],
        },
        CaseSpec {
            id: "cass-read-repair",
            system: "mini-cassandra",
            feature: "read repair",
            title: "Repair applied from a stale digest",
            modelled_on: "Cassandra read-repair cluster",
            recurrence_gap_days: 0,
            violates_old_semantics: false,
            entity: "Digest",
            store: "digests",
            effect: "repairs",
            action: "apply_repair",
            atoms: REPAIR_ATOMS,
            paths: &["blocking_read_repair", "background_read_repair"],
            path_vars: &["d", "dig"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: None,
            ticket_ids: &["CA-99210", "CA-99210b"],
        },
    ]
}

/// Build every corpus case (4 flagship + 12 generated).
pub fn all_cases() -> Vec<Case> {
    let mut cases = vec![
        flagship::zk_ephemeral(),
        flagship::zk_sync_serialize(),
        flagship::hbase_snapshot(),
        flagship::hdfs_observer(),
    ];
    for spec in generated_specs() {
        let mut case = spec.build();
        // cass-read-repair is the single-bug case of the study: the
        // recurrence exists in the code history (v3) but was caught
        // before a ticket was ever filed.
        if case.meta.id == "cass-read-repair" {
            case.tickets.truncate(1);
        }
        cases.push(case);
    }
    cases
}

/// Look a case up by id.
pub fn case(id: &str) -> Option<Case> {
    all_cases().into_iter().find(|c| c.meta.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cases_thirty_four_bugs() {
        let cases = all_cases();
        assert_eq!(cases.len(), 16);
        let bugs: usize = cases.iter().map(|c| c.bug_count()).sum();
        assert_eq!(bugs, 34, "study size must match the paper");
    }

    #[test]
    fn four_systems_covered() {
        let cases = all_cases();
        let mut systems: Vec<&str> = cases.iter().map(|c| c.meta.system.as_str()).collect();
        systems.sort_unstable();
        systems.dedup();
        assert_eq!(
            systems,
            vec!["mini-cassandra", "mini-hbase", "mini-hdfs", "mini-zookeeper"]
        );
    }

    #[test]
    fn ids_unique_and_lookup_works() {
        let cases = all_cases();
        let mut ids: Vec<&str> = cases.iter().map(|c| c.meta.id.as_str()).collect();
        ids.sort_unstable();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
        assert!(case("zk-ephemeral").is_some());
        assert!(case("no-such-case").is_none());
    }

    #[test]
    fn every_version_typechecks_and_tests_pass() {
        for case in all_cases() {
            for v in case.versions.all() {
                for t in &v.tests {
                    let mut interp = lisa_lang::Interp::new(&v.program);
                    let r = interp.call(&t.entry, vec![], &mut lisa_lang::NullTracer);
                    assert!(
                        r.is_ok(),
                        "{}/{}/{} failed: {:?}",
                        case.meta.id,
                        v.label,
                        t.name,
                        r.err()
                    );
                }
            }
        }
    }

    #[test]
    fn ground_truth_conditions_parse() {
        for case in all_cases() {
            assert!(
                lisa_smt::parse_cond(&case.ground_truth.condition_src).is_ok(),
                "{}",
                case.meta.id
            );
        }
    }

    #[test]
    fn three_flagship_cases_have_latent_bugs() {
        let latent: Vec<String> = all_cases()
            .into_iter()
            .filter(|c| c.ground_truth.latent_bug_in_latest)
            .map(|c| c.meta.id.clone())
            .collect();
        assert_eq!(latent, vec!["zk-ephemeral", "hbase-snapshot-ttl", "hdfs-observer-read"]);
    }
}
