//! Parameterized case generator.
//!
//! Twelve of the sixteen corpus cases share the *guarded action* shape
//! that dominates the paper's study: an entity is looked up from a store
//! and a state-changing action must only run when a conjunction of
//! entity-local predicates holds. Bugs are missing conjuncts on one of
//! several request paths; recurrences are new paths added later without
//! the full guard. The generator assembles, per case: four source
//! versions (buggy / fixed / regressed / latest), ticket bundles with
//! real diffs, per-version test suites with curated summaries, and the
//! ground-truth rule.
//!
//! The four flagship cases (ZK-1208, ZK-2201, HBASE-29296, HDFS-17768
//! analogues) are hand-written in [`crate::flagship`] instead, to follow
//! the paper's figures closely.

use lisa_analysis::TargetSpec;
use lisa_concolic::{SystemVersion, TestCase};
use lisa_lang::Program;
use lisa_oracle::TicketBuilder;

use crate::meta::{Case, CaseMeta, GroundTruth, Versions};

/// One conjunct of the safe condition.
#[derive(Debug, Clone, Copy)]
pub struct AtomSpec {
    /// Entity field involved ("" = the null/existence check).
    pub field: &'static str,
    /// SIR type of the field ("bool" | "int" | "str").
    pub field_ty: &'static str,
    /// Safe form with `{v}` placeholder, e.g. `{v}.closing == false`.
    pub safe: &'static str,
    /// Unsafe form (the early-return guard), e.g. `{v}.closing == true`.
    pub unsafe_: &'static str,
    /// Healthy literal for seeding tests.
    pub healthy: &'static str,
    /// Violating literal for negative tests.
    pub violating: &'static str,
}

/// The standard existence atom, first in every spec.
pub const NULL_ATOM: AtomSpec = AtomSpec {
    field: "",
    field_ty: "",
    safe: "{v} != null",
    unsafe_: "{v} == null",
    healthy: "",
    violating: "",
};

/// Full description of a generated case.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    pub id: &'static str,
    pub system: &'static str,
    pub feature: &'static str,
    pub title: &'static str,
    pub modelled_on: &'static str,
    pub recurrence_gap_days: u32,
    pub violates_old_semantics: bool,
    /// Entity struct name (e.g. `Region`).
    pub entity: &'static str,
    /// Store global (e.g. `regions`).
    pub store: &'static str,
    /// Effect global recording performed actions.
    pub effect: &'static str,
    /// The protected action function (rule target).
    pub action: &'static str,
    /// Safe-condition conjuncts; index 0 must be [`NULL_ATOM`].
    pub atoms: &'static [AtomSpec],
    /// Request-path entry functions (2 or 3). Path 0 exists from v1.
    pub paths: &'static [&'static str],
    /// Local variable name per path (distinct, exercises aliasing).
    pub path_vars: &'static [&'static str],
    /// Atom index missing on path 0 in the buggy version (bug #1).
    pub buggy_missing: usize,
    /// Atom index missing on path 1 in the regressed version (bug #2).
    pub regressed_missing: usize,
    /// Atom index missing on path 2 in the latest version (unknown bug),
    /// if the case has a third path.
    pub latest_missing: Option<usize>,
    /// Ticket ids, original first (e.g. `["ZK-9001", "ZK-9107"]`).
    pub ticket_ids: &'static [&'static str],
}

/// Which guard configuration each path has in one version.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PathGuard {
    /// Path absent in this version.
    Absent,
    /// All atoms present.
    Full,
    /// All atoms except one.
    Missing(usize),
}

impl CaseSpec {
    fn sys_module(&self) -> String {
        format!("{}/{}", self.system, self.feature.replace(' ', "_"))
    }

    fn tests_module(&self) -> String {
        format!("{}/{}_tests", self.system, self.feature.replace(' ', "_"))
    }

    /// Render the system module for a given per-path guard config.
    fn system_source(&self, guards: &[PathGuard]) -> String {
        let mut s = String::new();
        // Struct with id + all atom fields.
        s.push_str(&format!("struct {} {{ id: int", self.entity));
        for a in self.atoms.iter().filter(|a| !a.field.is_empty()) {
            s.push_str(&format!(", {}: {}", a.field, a.field_ty));
        }
        s.push_str(" }\n");
        s.push_str(&format!("global {}: map<int, {}>;\n", self.store, self.entity));
        s.push_str(&format!("global {}: map<str, int>;\n", self.effect));
        s.push_str("global request_count: int;\n\n");
        // The protected action.
        s.push_str(&format!(
            "fn {action}(e: {entity}, tag: str) {{\n    {effect}.put(tag, e.id);\n    log(\"{action}\");\n}}\n\n",
            action = self.action,
            entity = self.entity,
            effect = self.effect,
        ));
        // Request paths.
        for (i, (path, guard)) in self.paths.iter().zip(guards.iter()).enumerate() {
            let v = self.path_vars[i];
            match guard {
                PathGuard::Absent => continue,
                cfg => {
                    let atoms: Vec<&AtomSpec> = self
                        .atoms
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| !matches!(cfg, PathGuard::Missing(m) if m == k))
                        .map(|(_, a)| a)
                        .collect();
                    let cond: Vec<String> =
                        atoms.iter().map(|a| a.unsafe_.replace("{v}", v)).collect();
                    s.push_str(&format!("fn {path}(eid: int, tag: str) {{\n"));
                    s.push_str("    request_count = request_count + 1;\n");
                    s.push_str(&format!(
                        "    let {v}: {} = {}.get(eid);\n",
                        self.entity, self.store
                    ));
                    s.push_str(&format!("    if ({}) {{ return; }}\n", cond.join(" || ")));
                    s.push_str(&format!("    {}({v}, tag);\n}}\n\n", self.action));
                }
            }
        }
        // Rule-irrelevant admin surface: distractor guards that exercise
        // relevance pruning and RAG selection without touching the rule.
        s.push_str(&format!(
            "fn {store}_stats() -> int {{\n    if (request_count > 1000) {{ log(\"hot store\"); }}\n    return {store}.size();\n}}\n\n",
            store = self.store,
        ));
        s.push_str(&format!(
            "fn {store}_gc(limit: int) -> int {{\n    let removed = 0;\n    let ks = {store}.keys();\n    for k in ks {{\n        if (removed >= limit) {{ return removed; }}\n        let cur: {entity} = {store}.get(k);\n        if (cur == null) {{ {store}.remove(k); removed = removed + 1; }}\n    }}\n    return removed;\n}}\n\n",
            store = self.store,
            entity = self.entity,
        ));
        // Seeding helper.
        let params: Vec<String> = self
            .atoms
            .iter()
            .filter(|a| !a.field.is_empty())
            .map(|a| format!(", {}: {}", a.field, a.field_ty))
            .collect();
        let inits: Vec<String> = self
            .atoms
            .iter()
            .filter(|a| !a.field.is_empty())
            .map(|a| format!(", {f}: {f}", f = a.field))
            .collect();
        s.push_str(&format!(
            "fn seed(id: int{params}) {{\n    {store}.put(id, new {entity} {{ id: id{inits} }});\n}}\n",
            params = params.join(""),
            inits = inits.join(""),
            store = self.store,
            entity = self.entity,
        ));
        s
    }

    fn healthy_args(&self) -> String {
        self.atoms
            .iter()
            .filter(|a| !a.field.is_empty())
            .map(|a| format!(", {}", a.healthy))
            .collect()
    }

    /// Args with atom `idx` violating, others healthy.
    fn violating_args(&self, idx: usize) -> String {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.field.is_empty())
            .map(|(k, a)| format!(", {}", if k == idx { a.violating } else { a.healthy }))
            .collect()
    }

    /// Render the test module. `with_regression_test` adds the negative
    /// test introduced by the original fix; `paths_present` mirrors the
    /// system version.
    fn tests_source(&self, guards: &[PathGuard], with_regression_test: bool) -> String {
        let mut s = String::new();
        for (i, (path, guard)) in self.paths.iter().zip(guards.iter()).enumerate() {
            if matches!(guard, PathGuard::Absent) {
                continue;
            }
            s.push_str(&format!(
                "fn test_{path}_healthy() {{\n    seed({id}{args});\n    {path}({id}, \"t{i}\");\n    assert({effect}.contains(\"t{i}\"), \"{action} performed\");\n}}\n\n",
                id = i + 1,
                args = self.healthy_args(),
                effect = self.effect,
                action = self.action,
            ));
        }
        if with_regression_test {
            let atom = &self.atoms[self.buggy_missing];
            s.push_str(&format!(
                "fn test_{feature}_rejected_when_{field}_bad() {{\n    seed(9{args});\n    {path}(9, \"neg\");\n    assert({effect}.contains(\"neg\") == false, \"{action} must be rejected\");\n}}\n\n",
                feature = self.feature.replace(' ', "_"),
                field = atom.field,
                args = self.violating_args(self.buggy_missing),
                path = self.paths[0],
                effect = self.effect,
                action = self.action,
            ));
        }
        // Filler tests: store admin behaviour, unrelated to the rule.
        s.push_str(&format!(
            "fn test_{store}_seed_and_lookup() {{\n    seed(20{args});\n    assert({store}.contains(20), \"seeded\");\n}}\n\n",
            store = self.store,
            args = self.healthy_args(),
        ));
        s.push_str(&format!(
            "fn test_{store}_remove_entry() {{\n    seed(21{args});\n    {store}.remove(21);\n    assert({store}.contains(21) == false, \"removed\");\n}}\n\n",
            store = self.store,
            args = self.healthy_args(),
        ));
        s.push_str(&format!(
            "fn test_{store}_stats_and_gc() {{\n    seed(22{args});\n    let n = {store}_stats();\n    assert(n >= 1, \"stats count\");\n    assert({store}_gc(5) == 0, \"nothing to collect\");\n}}\n",
            store = self.store,
            args = self.healthy_args(),
        ));
        s
    }

    /// Test metadata with curated summaries (for RAG).
    fn test_cases(&self, guards: &[PathGuard], with_regression_test: bool) -> Vec<TestCase> {
        let mut tests = Vec::new();
        for (path, guard) in self.paths.iter().zip(guards.iter()) {
            if matches!(guard, PathGuard::Absent) {
                continue;
            }
            tests.push(TestCase::new(
                format!("test_{path}_healthy"),
                format!(
                    "{feature}: a healthy {entity} goes through {path} and {action} succeeds",
                    feature = self.feature,
                    entity = self.entity,
                    path = path,
                    action = self.action
                ),
            ));
        }
        if with_regression_test {
            let atom = &self.atoms[self.buggy_missing];
            tests.push(TestCase::new(
                format!(
                    "test_{}_rejected_when_{}_bad",
                    self.feature.replace(' ', "_"),
                    atom.field
                ),
                format!(
                    "{feature}: {action} must be rejected when {entity} {field} is invalid",
                    feature = self.feature,
                    action = self.action,
                    entity = self.entity,
                    field = atom.field
                ),
            ));
        }
        tests.push(TestCase::new(
            format!("test_{}_seed_and_lookup", self.store),
            format!("store admin: seeding the {} store and looking entries up", self.store),
        ));
        tests.push(TestCase::new(
            format!("test_{}_remove_entry", self.store),
            format!("store admin: removing entries from the {} store", self.store),
        ));
        tests.push(TestCase::new(
            format!("test_{}_stats_and_gc", self.store),
            format!(
                "store admin: stats counters and garbage collection over the {} store",
                self.store
            ),
        ));
        tests
    }

    fn build_version(
        &self,
        label: &str,
        guards: &[PathGuard],
        with_regression_test: bool,
    ) -> SystemVersion {
        let sys = self.system_source(guards);
        let tests_src = self.tests_source(guards, with_regression_test);
        let program = Program::parse(&[
            (self.sys_module().as_str(), sys.as_str()),
            (self.tests_module().as_str(), tests_src.as_str()),
        ])
        .unwrap_or_else(|e| panic!("corpus case {} ({label}): {e}", self.id));
        let errors = lisa_lang::check_program(&program);
        assert!(errors.is_empty(), "corpus case {} ({label}) type errors: {errors:?}", self.id);
        SystemVersion::new(label, program, self.test_cases(guards, with_regression_test))
    }

    /// Assemble the full case.
    pub fn build(&self) -> Case {
        assert!(self.paths.len() >= 2 && self.paths.len() == self.path_vars.len());
        assert!(self.buggy_missing != 0 && self.regressed_missing != 0);
        let has_third = self.paths.len() >= 3;
        let absent_tail = |n: usize| -> Vec<PathGuard> {
            let mut v = Vec::new();
            for i in 0..self.paths.len() {
                v.push(if i < n { PathGuard::Full } else { PathGuard::Absent });
            }
            v
        };
        // Version guard layouts.
        let mut buggy = absent_tail(1);
        buggy[0] = PathGuard::Missing(self.buggy_missing);
        let fixed = absent_tail(1);
        let mut regressed = absent_tail(2);
        regressed[1] = PathGuard::Missing(self.regressed_missing);
        let regressed_fixed = absent_tail(2);
        let mut latest = absent_tail(if has_third { 3 } else { 2 });
        if let (Some(m), true) = (self.latest_missing, has_third) {
            latest[2] = PathGuard::Missing(m);
        }

        let v_buggy = self.build_version("v1-buggy", &buggy, false);
        let v_fixed = self.build_version("v2-fixed", &fixed, true);
        let v_regressed = self.build_version("v3-regressed", &regressed, true);
        let v_latest = self.build_version("v4-latest", &latest, true);

        // Tickets with real source bundles.
        let regression_test_name = format!(
            "test_{}_rejected_when_{}_bad",
            self.feature.replace(' ', "_"),
            self.atoms[self.buggy_missing].field
        );
        let ticket1 = TicketBuilder::new(self.ticket_ids[0], self.system)
            .title(self.title)
            .description(format!(
                "{} allowed even though the {} {} check fails; stale effect observed by clients",
                self.action, self.entity, self.atoms[self.buggy_missing].field
            ))
            .discuss(format!(
                "missing {} check on the {} path allows the bad state through",
                self.atoms[self.buggy_missing].field, self.paths[0]
            ))
            .buggy(self.sys_module(), self.system_source(&buggy))
            .buggy(self.tests_module(), self.tests_source(&buggy, false))
            .fixed(self.sys_module(), self.system_source(&fixed))
            .fixed(self.tests_module(), self.tests_source(&fixed, true))
            .regression_test(regression_test_name)
            .build();
        let ticket2 = TicketBuilder::new(self.ticket_ids[1], self.system)
            .title(format!("{} (recurrence)", self.title))
            .description(format!(
                "one year later: the new {} path reaches {} without the full guard",
                self.paths[1], self.action
            ))
            .discuss(format!(
                "{} was added without the {} check — same class as {}",
                self.paths[1], self.atoms[self.regressed_missing].field, self.ticket_ids[0]
            ))
            .buggy(self.sys_module(), self.system_source(&regressed))
            .buggy(self.tests_module(), self.tests_source(&regressed, true))
            .fixed(self.sys_module(), self.system_source(&regressed_fixed))
            .fixed(self.tests_module(), self.tests_source(&regressed_fixed, true))
            .regression_test(format!("test_{}_healthy", self.paths[1]))
            .build();

        let condition_src = self
            .atoms
            .iter()
            .map(|a| a.safe.replace("{v}", "e"))
            .collect::<Vec<_>>()
            .join(" && ");
        Case {
            meta: CaseMeta {
                id: self.id.to_string(),
                system: self.system.to_string(),
                feature: self.feature.to_string(),
                title: self.title.to_string(),
                modelled_on: self.modelled_on.to_string(),
                recurrence_gap_days: self.recurrence_gap_days,
                violates_old_semantics: self.violates_old_semantics,
            },
            versions: Versions {
                buggy: v_buggy,
                fixed: v_fixed,
                regressed: v_regressed,
                latest: v_latest,
            },
            tickets: vec![ticket1, ticket2],
            ground_truth: GroundTruth {
                target: TargetSpec::Call { callee: self.action.to_string() },
                condition_src,
                latent_bug_in_latest: has_third && self.latest_missing.is_some(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CaseSpec {
        CaseSpec {
            id: "test-case",
            system: "mini-test",
            feature: "widget gating",
            title: "Widget activated in closed state",
            modelled_on: "SYNTH",
            recurrence_gap_days: 365,
            violates_old_semantics: true,
            entity: "Widget",
            store: "widgets",
            effect: "activations",
            action: "activate_widget",
            atoms: &[
                NULL_ATOM,
                AtomSpec {
                    field: "closed",
                    field_ty: "bool",
                    safe: "{v}.closed == false",
                    unsafe_: "{v}.closed == true",
                    healthy: "false",
                    violating: "true",
                },
                AtomSpec {
                    field: "quota",
                    field_ty: "int",
                    safe: "{v}.quota > 0",
                    unsafe_: "{v}.quota <= 0",
                    healthy: "5",
                    violating: "0",
                },
            ],
            paths: &["direct_activate", "batch_activate", "admin_activate"],
            path_vars: &["w", "cur", "item"],
            buggy_missing: 1,
            regressed_missing: 1,
            latest_missing: Some(2),
            ticket_ids: &["TST-1", "TST-2"],
        }
    }

    #[test]
    fn all_versions_parse_and_typecheck() {
        let case = spec().build();
        for v in case.versions.all() {
            assert!(v.program.function("activate_widget").is_some(), "{}", v.label);
            assert!(!v.tests.is_empty());
        }
    }

    #[test]
    fn version_path_presence() {
        let case = spec().build();
        assert!(case.versions.buggy.program.function("batch_activate").is_none());
        assert!(case.versions.regressed.program.function("batch_activate").is_some());
        assert!(case.versions.regressed.program.function("admin_activate").is_none());
        assert!(case.versions.latest.program.function("admin_activate").is_some());
    }

    #[test]
    fn tests_pass_on_their_own_version() {
        let case = spec().build();
        for v in case.versions.all() {
            for t in &v.tests {
                let mut interp = lisa_lang::Interp::new(&v.program);
                let r = interp.call(&t.entry, vec![], &mut lisa_lang::NullTracer);
                assert!(r.is_ok(), "{} / {}: {:?}", v.label, t.name, r.err());
            }
        }
    }

    #[test]
    fn regression_test_absent_before_fix() {
        let case = spec().build();
        let has_neg = |v: &SystemVersion| {
            v.tests.iter().any(|t| t.name.contains("rejected_when"))
        };
        assert!(!has_neg(&case.versions.buggy));
        assert!(has_neg(&case.versions.fixed));
    }

    #[test]
    fn tickets_diff_shows_the_guard() {
        let case = spec().build();
        let (_, diff) = &case.original_ticket().patch()[0];
        let added: Vec<&str> = diff.added_lines().iter().map(|(_, t)| *t).collect();
        assert!(
            added.iter().any(|l| l.contains("closed == true")),
            "added lines: {added:?}"
        );
    }

    #[test]
    fn ground_truth_is_parsable() {
        let case = spec().build();
        assert!(lisa_smt::parse_cond(&case.ground_truth.condition_src).is_ok());
        assert!(case.ground_truth.latent_bug_in_latest);
        assert_eq!(case.bug_count(), 3, "two tickets plus the latent bug");
    }
}
