//! The four flagship cases, hand-written to track the paper's figures:
//!
//! - [`zk_ephemeral`] — Figures 2–3: ZOOKEEPER-1208 (ephemeral node
//!   created on a closing session) recurring as ZOOKEEPER-1496 on the
//!   `touchSession` path, with a third unchecked multi-op path left in
//!   the latest version.
//! - [`zk_sync_serialize`] — Figure 6: ZOOKEEPER-2201 (serialization
//!   blocked inside a synchronized section) recurring as ZOOKEEPER-3531
//!   in a different serializer — the generalization case.
//! - [`hbase_snapshot`] — §4 Bug #1: HBASE-27671/28704 expiration checks,
//!   with the HBASE-29296 missing-check path in the latest version.
//! - [`hdfs_observer`] — §4 Bug #2: HDFS-13924/16732 location checks,
//!   with the HDFS-17768 batched-listing path in the latest version.

use lisa_analysis::TargetSpec;
use lisa_concolic::{SystemVersion, TestCase};
use lisa_lang::Program;
use lisa_oracle::TicketBuilder;

use crate::meta::{Case, CaseMeta, GroundTruth, Versions};

fn build_version(
    label: &str,
    case_id: &str,
    modules: &[(String, String)],
    tests: Vec<TestCase>,
) -> SystemVersion {
    let refs: Vec<(&str, &str)> =
        modules.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
    let program = Program::parse(&refs)
        .unwrap_or_else(|e| panic!("flagship {case_id} ({label}): {e}"));
    let errors = lisa_lang::check_program(&program);
    assert!(errors.is_empty(), "flagship {case_id} ({label}) type errors: {errors:?}");
    SystemVersion::new(label, program, tests)
}

// ---------------------------------------------------------------------------
// 1. zk-ephemeral (Figures 2-3)
// ---------------------------------------------------------------------------

/// Which request paths exist and whether each checks `closing`.
struct ZkEphKnobs {
    prep_checks_closing: bool,
    touch_path: Option<bool>,
    multi_path: Option<bool>,
}

fn zk_eph_sys(k: &ZkEphKnobs) -> String {
    let mut s = String::from(
        "struct Session { id: int, owner: str, closing: bool, timeout: int }\n\
         struct DataNode { path: str, owner_session: int, ephemeral: bool }\n\
         global sessions: map<int, Session>;\n\
         global nodes: map<str, DataNode>;\n\
         global watch_events: list<str>;\n\n\
         fn create_ephemeral_node(s: Session, path: str) {\n\
             let n = new DataNode { path: path, owner_session: s.id, ephemeral: true };\n\
             nodes.put(path, n);\n\
             watch_events.push(path);\n\
         }\n\n\
         fn open_session(sid: int, owner: str) {\n\
             sessions.put(sid, new Session { id: sid, owner: owner, timeout: 30 });\n\
         }\n\n\
         fn begin_close_session(sid: int) {\n\
             let s: Session = sessions.get(sid);\n\
             if (s == null) { return; }\n\
             s.closing = true;\n\
         }\n\n\
         fn finish_close_session(sid: int) {\n\
             let s: Session = sessions.get(sid);\n\
             if (s == null) { return; }\n\
             let ks = nodes.keys();\n\
             for k in ks {\n\
                 let n: DataNode = nodes.get(k);\n\
                 if (n != null && n.owner_session == sid && n.ephemeral) { nodes.remove(k); }\n\
             }\n\
             sessions.remove(sid);\n\
         }\n\n",
    );
    // PrepRequestProcessor.pRequest2TxnCreate analogue (ZK-1208 site).
    let prep_guard = if k.prep_checks_closing {
        "session == null || session.closing"
    } else {
        "session == null"
    };
    s.push_str(&format!(
        "fn prep_request_create(sid: int, path: str) {{\n\
             let session: Session = sessions.get(sid);\n\
             if ({prep_guard}) {{ log(\"create rejected\"); return; }}\n\
             create_ephemeral_node(session, path);\n\
         }}\n\n"
    ));
    // SessionTracker.touchSession analogue (ZK-1496 site).
    if let Some(checks) = k.touch_path {
        let guard = if checks { "s == null || s.closing" } else { "s == null" };
        s.push_str(&format!(
            "fn touch_session_create(sid: int, path: str) -> bool {{\n\
                 let s: Session = sessions.get(sid);\n\
                 if ({guard}) {{ return false; }}\n\
                 s.timeout = 30;\n\
                 create_ephemeral_node(s, path);\n\
                 return true;\n\
             }}\n\n"
        ));
    }
    // Multi-op transaction path (the latent unknown bug in the latest).
    if let Some(checks) = k.multi_path {
        let guard = if checks { "sess == null || sess.closing" } else { "sess == null" };
        s.push_str(&format!(
            "fn multi_op_create(sid: int, paths: list<str>) {{\n\
                 let sess: Session = sessions.get(sid);\n\
                 if ({guard}) {{ log(\"multi rejected\"); return; }}\n\
                 for p in paths {{ create_ephemeral_node(sess, p); }}\n\
             }}\n\n"
        ));
    }
    s
}

fn zk_eph_tests(k: &ZkEphKnobs, with_regression_test: bool) -> (String, Vec<TestCase>) {
    let mut src = String::from(
        "fn test_kafka_consumer_registration() {\n\
             open_session(1, \"kafka-consumer-1\");\n\
             prep_request_create(1, \"/consumers/c1\");\n\
             assert(nodes.contains(\"/consumers/c1\"), \"consumer registered\");\n\
             begin_close_session(1);\n\
             finish_close_session(1);\n\
             assert(nodes.contains(\"/consumers/c1\") == false, \"address cleaned up\");\n\
         }\n\n\
         fn test_create_ephemeral_live_session() {\n\
             open_session(2, \"app\");\n\
             prep_request_create(2, \"/locks/l1\");\n\
             assert(nodes.contains(\"/locks/l1\"), \"ephemeral exists\");\n\
         }\n\n\
         fn test_watch_event_emitted_on_create() {\n\
             open_session(3, \"watcher\");\n\
             prep_request_create(3, \"/w/1\");\n\
             assert(watch_events.len() == 1, \"watch fired\");\n\
         }\n\n\
         fn test_session_lifecycle_open_close() {\n\
             open_session(4, \"app\");\n\
             begin_close_session(4);\n\
             finish_close_session(4);\n\
             assert(sessions.contains(4) == false, \"session gone\");\n\
         }\n\n",
    );
    let mut tests = vec![
        TestCase::new(
            "test_kafka_consumer_registration",
            "kafka scenario: register a consumer address as an ephemeral node, close the session, address must disappear",
        ),
        TestCase::new(
            "test_create_ephemeral_live_session",
            "ephemeral nodes: create on a live session via the request processor succeeds",
        ),
        TestCase::new(
            "test_watch_event_emitted_on_create",
            "watches: a watch event fires when an ephemeral node is created",
        ),
        TestCase::new(
            "test_session_lifecycle_open_close",
            "sessions: opening and closing a session removes it from the tracker",
        ),
    ];
    if with_regression_test {
        src.push_str(
            "fn test_no_create_on_closing_session() {\n\
                 open_session(5, \"app\");\n\
                 begin_close_session(5);\n\
                 prep_request_create(5, \"/stale/n\");\n\
                 assert(nodes.contains(\"/stale/n\") == false, \"no ephemeral on closing session\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_no_create_on_closing_session",
            "regression ZK-9208: the request processor must reject ephemeral create when the session is closing",
        ));
    }
    if k.touch_path.is_some() {
        src.push_str(
            "fn test_touch_session_creates_node() {\n\
                 open_session(6, \"app\");\n\
                 let ok = touch_session_create(6, \"/touch/n\");\n\
                 assert(ok && nodes.contains(\"/touch/n\"), \"touch path creates\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_touch_session_creates_node",
            "ephemeral nodes: the touch-session path refreshes the timeout and creates the node",
        ));
    }
    if k.multi_path.is_some() {
        src.push_str(
            "fn test_multi_op_creates_batch() {\n\
                 open_session(7, \"batch\");\n\
                 let ps: list<str> = batch_paths();\n\
                 multi_op_create(7, ps);\n\
                 assert(nodes.contains(\"/m/1\") && nodes.contains(\"/m/2\"), \"batch created\");\n\
             }\n\n\
             global tmp_paths: list<str>;\n\
             fn batch_paths() -> list<str> {\n\
                 tmp_paths.push(\"/m/1\");\n\
                 tmp_paths.push(\"/m/2\");\n\
                 return tmp_paths;\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_multi_op_creates_batch",
            "ephemeral nodes: the multi-op transaction path creates a batch of ephemeral nodes",
        ));
    }
    (src, tests)
}

fn zk_eph_version(label: &str, k: ZkEphKnobs, with_regression_test: bool) -> SystemVersion {
    let sys = zk_eph_sys(&k);
    let (tests_src, tests) = zk_eph_tests(&k, with_regression_test);
    build_version(
        label,
        "zk-ephemeral",
        &[
            ("zk/ephemeral".to_string(), sys),
            ("zk/ephemeral_tests".to_string(), tests_src),
        ],
        tests,
    )
}

/// The Figures 2-3 case.
pub fn zk_ephemeral() -> Case {
    let buggy = zk_eph_version(
        "v1-buggy",
        ZkEphKnobs { prep_checks_closing: false, touch_path: None, multi_path: None },
        false,
    );
    let fixed = zk_eph_version(
        "v2-fixed",
        ZkEphKnobs { prep_checks_closing: true, touch_path: None, multi_path: None },
        true,
    );
    let regressed = zk_eph_version(
        "v3-regressed",
        ZkEphKnobs { prep_checks_closing: true, touch_path: Some(false), multi_path: None },
        true,
    );
    let latest = zk_eph_version(
        "v4-latest",
        ZkEphKnobs {
            prep_checks_closing: true,
            touch_path: Some(true),
            multi_path: Some(false),
        },
        true,
    );
    let sys_of = |k: &ZkEphKnobs| zk_eph_sys(k);
    let t1 = TicketBuilder::new("ZK-9208", "mini-zookeeper")
        .title("Ephemeral node not removed after the client session is long gone")
        .description(
            "A Kafka deployment registers consumer addresses as ephemeral nodes. A concurrency \
             window allows creating an ephemeral node on a closing session; the node survives \
             session cleanup and clients keep querying a dead address.",
        )
        .discuss("race in PrepRequestProcessor allows create on a CLOSING session")
        .discuss("the create request must be rejected if the session is closing")
        .buggy(
            "zk/ephemeral",
            sys_of(&ZkEphKnobs { prep_checks_closing: false, touch_path: None, multi_path: None }),
        )
        .fixed(
            "zk/ephemeral",
            sys_of(&ZkEphKnobs { prep_checks_closing: true, touch_path: None, multi_path: None }),
        )
        .regression_test("test_no_create_on_closing_session")
        .build();
    let t2 = TicketBuilder::new("ZK-9496", "mini-zookeeper")
        .title("Ephemeral node not getting cleared even after client has exited")
        .description(
            "One year later: the touch-session path added for timeout refresh reaches the same \
             node-creation logic without hitting the original guard; the Kafka cluster gets \
             stuck in zombie mode again.",
        )
        .discuss("same class as ZK-9208 — touchSession misses the closing check")
        .buggy(
            "zk/ephemeral",
            sys_of(&ZkEphKnobs {
                prep_checks_closing: true,
                touch_path: Some(false),
                multi_path: None,
            }),
        )
        .fixed(
            "zk/ephemeral",
            sys_of(&ZkEphKnobs {
                prep_checks_closing: true,
                touch_path: Some(true),
                multi_path: None,
            }),
        )
        .regression_test("test_touch_session_creates_node")
        .build();
    Case {
        meta: CaseMeta {
            id: "zk-ephemeral".into(),
            system: "mini-zookeeper".into(),
            feature: "ephemeral nodes".into(),
            title: "Ephemeral node created on a closing session".into(),
            modelled_on: "ZOOKEEPER-1208 -> ZOOKEEPER-1496".into(),
            recurrence_gap_days: 365,
            violates_old_semantics: true,
        },
        versions: Versions { buggy, fixed, regressed, latest },
        tickets: vec![t1, t2],
        ground_truth: GroundTruth {
            target: TargetSpec::Call { callee: "create_ephemeral_node".into() },
            condition_src: "s != null && s.closing == false".into(),
            latent_bug_in_latest: true,
        },
    }
}

// ---------------------------------------------------------------------------
// 2. zk-sync-serialize (Figure 6)
// ---------------------------------------------------------------------------

struct ZkSyncKnobs {
    tree_io_in_lock: bool,
    acl_serializer: Option<bool>, // Some(io_in_lock)
}

fn zk_sync_sys(k: &ZkSyncKnobs) -> String {
    let mut s = String::from(
        "global scount: int;\n\
         global acl_count: int;\n\
         global snapshots_written: int;\n\n",
    );
    if k.tree_io_in_lock {
        s.push_str(
            "fn serialize_tree(path: str) {\n\
                 sync (tree_lock) {\n\
                     scount = scount + 1;\n\
                     blocking_io(\"write tree node\");\n\
                 }\n\
             }\n\n",
        );
    } else {
        s.push_str(
            "fn serialize_tree(path: str) {\n\
                 let seq = 0;\n\
                 sync (tree_lock) {\n\
                     scount = scount + 1;\n\
                     seq = scount;\n\
                 }\n\
                 blocking_io(\"write tree node\");\n\
             }\n\n",
        );
    }
    if let Some(in_lock) = k.acl_serializer {
        if in_lock {
            s.push_str(
                "fn serialize_acl_cache() {\n\
                     sync (acl_lock) {\n\
                         acl_count = acl_count + 1;\n\
                         blocking_io(\"write acl entries\");\n\
                     }\n\
                 }\n\n",
            );
        } else {
            s.push_str(
                "fn serialize_acl_cache() {\n\
                     let n = 0;\n\
                     sync (acl_lock) {\n\
                         acl_count = acl_count + 1;\n\
                         n = acl_count;\n\
                     }\n\
                     blocking_io(\"write acl entries\");\n\
                 }\n\n",
            );
        }
    }
    // Legitimate unlocked blocking I/O — the false-positive probe for the
    // naively-broadened rule.
    s.push_str(
        "fn write_snapshot() {\n\
             snapshots_written = snapshots_written + 1;\n\
             blocking_io(\"write snapshot file\");\n\
         }\n",
    );
    s
}

fn zk_sync_tests(k: &ZkSyncKnobs) -> (String, Vec<TestCase>) {
    let mut src = String::from(
        "fn test_serialize_tree_writes() {\n\
             serialize_tree(\"/a\");\n\
             assert(scount == 1, \"tree serialized\");\n\
         }\n\n\
         fn test_snapshot_write_unlocked() {\n\
             write_snapshot();\n\
             assert(snapshots_written == 1, \"snapshot written\");\n\
         }\n\n",
    );
    let mut tests = vec![
        TestCase::new(
            "test_serialize_tree_writes",
            "serialization: serializing the data tree writes every node",
        ),
        TestCase::new(
            "test_snapshot_write_unlocked",
            "snapshots: writing a snapshot file performs blocking io without holding locks",
        ),
    ];
    if k.acl_serializer.is_some() {
        src.push_str(
            "fn test_serialize_acl_cache() {\n\
                 serialize_acl_cache();\n\
                 assert(acl_count == 1, \"acl cache serialized\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_serialize_acl_cache",
            "serialization: the reference-counted acl cache serializes its entries",
        ));
    }
    (src, tests)
}

fn zk_sync_version(label: &str, k: ZkSyncKnobs) -> SystemVersion {
    let sys = zk_sync_sys(&k);
    let (tests_src, tests) = zk_sync_tests(&k);
    build_version(
        label,
        "zk-sync-serialize",
        &[
            ("zk/serialize".to_string(), sys),
            ("zk/serialize_tests".to_string(), tests_src),
        ],
        tests,
    )
}

/// The Figure-6 generalization case.
pub fn zk_sync_serialize() -> Case {
    let buggy =
        zk_sync_version("v1-buggy", ZkSyncKnobs { tree_io_in_lock: true, acl_serializer: None });
    let fixed =
        zk_sync_version("v2-fixed", ZkSyncKnobs { tree_io_in_lock: false, acl_serializer: None });
    let regressed = zk_sync_version(
        "v3-regressed",
        ZkSyncKnobs { tree_io_in_lock: false, acl_serializer: Some(true) },
    );
    let latest = zk_sync_version(
        "v4-latest",
        ZkSyncKnobs { tree_io_in_lock: false, acl_serializer: Some(false) },
    );
    let t1 = TicketBuilder::new("ZK-9201", "mini-zookeeper")
        .title("Cluster zombie: writes silently blocked during tree serialization")
        .description(
            "serializeNode holds the tree lock while performing blocking I/O; when the disk \
             stalls, every write operation in the cluster blocks behind the lock.",
        )
        .discuss("blocking write while holding the tree lock causes the zombie cluster")
        .buggy(
            "zk/serialize",
            zk_sync_sys(&ZkSyncKnobs { tree_io_in_lock: true, acl_serializer: None }),
        )
        .fixed(
            "zk/serialize",
            zk_sync_sys(&ZkSyncKnobs { tree_io_in_lock: false, acl_serializer: None }),
        )
        .regression_test("test_serialize_tree_writes")
        .build();
    let t2 = TicketBuilder::new("ZK-9531", "mini-zookeeper")
        .title("Cluster stuck again: ACL cache serialization blocks under lock")
        .description(
            "One year later a different serialization function — the reference-counted ACL \
             cache — performs the same blocking write inside its synchronized section.",
        )
        .discuss("same class as ZK-9201: blocking I/O within a synchronized block")
        .buggy(
            "zk/serialize",
            zk_sync_sys(&ZkSyncKnobs { tree_io_in_lock: false, acl_serializer: Some(true) }),
        )
        .fixed(
            "zk/serialize",
            zk_sync_sys(&ZkSyncKnobs { tree_io_in_lock: false, acl_serializer: Some(false) }),
        )
        .regression_test("test_serialize_acl_cache")
        .build();
    Case {
        meta: CaseMeta {
            id: "zk-sync-serialize".into(),
            system: "mini-zookeeper".into(),
            feature: "serialization".into(),
            title: "Blocking I/O inside synchronized serialization".into(),
            modelled_on: "ZOOKEEPER-2201 -> ZOOKEEPER-3531".into(),
            recurrence_gap_days: 400,
            violates_old_semantics: true,
        },
        versions: Versions { buggy, fixed, regressed, latest },
        tickets: vec![t1, t2],
        ground_truth: GroundTruth {
            target: TargetSpec::BuiltinInSync { name: "blocking_io".into() },
            condition_src: "$locks.held == 0".into(),
            latent_bug_in_latest: false,
        },
    }
}

// ---------------------------------------------------------------------------
// 3. hbase-snapshot-ttl (§4 Bug #1)
// ---------------------------------------------------------------------------

struct HbaseKnobs {
    restore_checks_expiry: bool,
    export_path: Option<bool>,
    scan_path: Option<bool>,
}

fn hbase_sys(k: &HbaseKnobs) -> String {
    let mut s = String::from(
        "struct Snapshot { id: int, table: str, created_at: int, expires_at: int }\n\
         global snapshots: map<int, Snapshot>;\n\
         global served: map<str, int>;\n\n\
         fn serve_snapshot(snap: Snapshot, req_time: int, tag: str) {\n\
             served.put(tag, snap.id);\n\
             log(\"snapshot served\");\n\
         }\n\n\
         fn take_snapshot(id: int, table: str, at: int, ttl: int) {\n\
             let sn = new Snapshot { id: id, table: table, created_at: at, expires_at: at + ttl };\n\
             snapshots.put(id, sn);\n\
         }\n\n",
    );
    let guard = |var: &str, checks: bool| -> String {
        if checks {
            format!("{var} == null || {var}.expires_at < req_time")
        } else {
            format!("{var} == null")
        }
    };
    s.push_str(&format!(
        "fn restore_snapshot(snap_id: int, req_time: int, tag: str) {{\n\
             let snap: Snapshot = snapshots.get(snap_id);\n\
             if ({}) {{ log(\"restore rejected\"); return; }}\n\
             serve_snapshot(snap, req_time, tag);\n\
         }}\n\n",
        guard("snap", k.restore_checks_expiry)
    ));
    if let Some(checks) = k.export_path {
        s.push_str(&format!(
            "fn export_snapshot(snap_id: int, req_time: int, tag: str) {{\n\
                 let sn: Snapshot = snapshots.get(snap_id);\n\
                 if ({}) {{ log(\"export rejected\"); return; }}\n\
                 serve_snapshot(sn, req_time, tag);\n\
             }}\n\n",
            guard("sn", checks)
        ));
    }
    if let Some(checks) = k.scan_path {
        s.push_str(&format!(
            "fn scan_snapshot(snap_id: int, req_time: int, tag: str) {{\n\
                 let cur: Snapshot = snapshots.get(snap_id);\n\
                 if ({}) {{ log(\"scan rejected\"); return; }}\n\
                 serve_snapshot(cur, req_time, tag);\n\
             }}\n\n",
            guard("cur", checks)
        ));
    }
    s
}

fn hbase_tests(k: &HbaseKnobs, with_regression_test: bool) -> (String, Vec<TestCase>) {
    let mut src = String::from(
        "fn test_restore_fresh_snapshot() {\n\
             take_snapshot(1, \"orders\", 1000, 500);\n\
             restore_snapshot(1, 1200, \"r1\");\n\
             assert(served.contains(\"r1\"), \"fresh snapshot restorable\");\n\
         }\n\n\
         fn test_take_snapshot_records_expiry() {\n\
             take_snapshot(2, \"users\", 1000, 300);\n\
             let sn: Snapshot = snapshots.get(2);\n\
             assert(sn != null && sn.expires_at == 1300, \"expiry recorded\");\n\
         }\n\n",
    );
    let mut tests = vec![
        TestCase::new(
            "test_restore_fresh_snapshot",
            "snapshots: restoring a snapshot before its ttl expires serves the data",
        ),
        TestCase::new(
            "test_take_snapshot_records_expiry",
            "snapshots: taking a snapshot records creation time plus ttl as expiry",
        ),
    ];
    if with_regression_test {
        src.push_str(
            "fn test_restore_expired_snapshot_rejected() {\n\
                 take_snapshot(3, \"orders\", 1000, 100);\n\
                 restore_snapshot(3, 5000, \"r3\");\n\
                 assert(served.contains(\"r3\") == false, \"expired snapshot must not be served\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_restore_expired_snapshot_rejected",
            "regression HB-97671: restore must be rejected after the snapshot ttl has expired",
        ));
    }
    if k.export_path.is_some() {
        src.push_str(
            "fn test_export_fresh_snapshot() {\n\
                 take_snapshot(4, \"logs\", 1000, 500);\n\
                 export_snapshot(4, 1100, \"e4\");\n\
                 assert(served.contains(\"e4\"), \"fresh snapshot exportable\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_export_fresh_snapshot",
            "snapshots: exporting a fresh snapshot with copytable serves the data",
        ));
    }
    if k.scan_path.is_some() {
        src.push_str(
            "fn test_scan_fresh_snapshot() {\n\
                 take_snapshot(5, \"events\", 1000, 500);\n\
                 scan_snapshot(5, 1100, \"s5\");\n\
                 assert(served.contains(\"s5\"), \"fresh snapshot scannable\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_scan_fresh_snapshot",
            "snapshots: the scanner path reads a fresh snapshot",
        ));
    }
    (src, tests)
}

fn hbase_version(label: &str, k: HbaseKnobs, with_regression_test: bool) -> SystemVersion {
    let sys = hbase_sys(&k);
    let (tests_src, tests) = hbase_tests(&k, with_regression_test);
    build_version(
        label,
        "hbase-snapshot-ttl",
        &[
            ("hbase/snapshot".to_string(), sys),
            ("hbase/snapshot_tests".to_string(), tests_src),
        ],
        tests,
    )
}

/// §4 Bug #1 case: snapshot expiration checks.
pub fn hbase_snapshot() -> Case {
    let buggy = hbase_version(
        "v1-buggy",
        HbaseKnobs { restore_checks_expiry: false, export_path: None, scan_path: None },
        false,
    );
    let fixed = hbase_version(
        "v2-fixed",
        HbaseKnobs { restore_checks_expiry: true, export_path: None, scan_path: None },
        true,
    );
    let regressed = hbase_version(
        "v3-regressed",
        HbaseKnobs { restore_checks_expiry: true, export_path: Some(false), scan_path: None },
        true,
    );
    let latest = hbase_version(
        "v4-latest",
        HbaseKnobs {
            restore_checks_expiry: true,
            export_path: Some(true),
            scan_path: Some(false),
        },
        true,
    );
    let t1 = TicketBuilder::new("HB-97671", "mini-hbase")
        .title("Client can restore/clone a snapshot after its ttl has expired")
        .description("expired snapshots return to clients successfully without any alarm")
        .discuss("missing expiration check on the restore path serves stale data")
        .buggy(
            "hbase/snapshot",
            hbase_sys(&HbaseKnobs { restore_checks_expiry: false, export_path: None, scan_path: None }),
        )
        .fixed(
            "hbase/snapshot",
            hbase_sys(&HbaseKnobs { restore_checks_expiry: true, export_path: None, scan_path: None }),
        )
        .regression_test("test_restore_expired_snapshot_rejected")
        .build();
    let t2 = TicketBuilder::new("HB-98704", "mini-hbase")
        .title("The expired snapshot can be read by copytable or exportsnapshot")
        .description("the export path added for copytable reaches serve_snapshot without the expiry check")
        .discuss("same class as HB-97671: export misses the ttl check")
        .buggy(
            "hbase/snapshot",
            hbase_sys(&HbaseKnobs { restore_checks_expiry: true, export_path: Some(false), scan_path: None }),
        )
        .fixed(
            "hbase/snapshot",
            hbase_sys(&HbaseKnobs { restore_checks_expiry: true, export_path: Some(true), scan_path: None }),
        )
        .regression_test("test_export_fresh_snapshot")
        .build();
    Case {
        meta: CaseMeta {
            id: "hbase-snapshot-ttl".into(),
            system: "mini-hbase".into(),
            feature: "snapshot ttl".into(),
            title: "Expired snapshot served to clients".into(),
            modelled_on: "HBASE-27671 -> HBASE-28704 -> HBASE-29296 (new)".into(),
            recurrence_gap_days: 300,
            violates_old_semantics: true,
        },
        versions: Versions { buggy, fixed, regressed, latest },
        tickets: vec![t1, t2],
        ground_truth: GroundTruth {
            target: TargetSpec::Call { callee: "serve_snapshot".into() },
            condition_src: "snap != null && snap.expires_at >= req_time".into(),
            latent_bug_in_latest: true,
        },
    }
}

// ---------------------------------------------------------------------------
// 4. hdfs-observer-read (§4 Bug #2)
// ---------------------------------------------------------------------------

struct HdfsKnobs {
    locations_checks: bool,
    listing_path: Option<bool>,
    batched_path: Option<bool>,
}

fn hdfs_sys(k: &HdfsKnobs) -> String {
    let mut s = String::from(
        "struct Block { id: int, file: str, has_location: bool, gen_stamp: int }\n\
         global blocks: map<int, Block>;\n\
         global returned: map<str, int>;\n\n\
         fn return_block(b: Block, tag: str) {\n\
             returned.put(tag, b.id);\n\
             log(\"block returned to client\");\n\
         }\n\n\
         fn add_block(id: int, file: str) {\n\
             blocks.put(id, new Block { id: id, file: file, gen_stamp: 1 });\n\
         }\n\n\
         fn apply_block_report(id: int) {\n\
             let b: Block = blocks.get(id);\n\
             if (b == null) { return; }\n\
             b.has_location = true;\n\
             b.gen_stamp = b.gen_stamp + 1;\n\
         }\n\n",
    );
    let guard = |var: &str, checks: bool| -> String {
        if checks {
            format!("{var} == null || {var}.has_location == false")
        } else {
            format!("{var} == null")
        }
    };
    s.push_str(&format!(
        "fn get_block_locations(block_id: int, tag: str) {{\n\
             let b: Block = blocks.get(block_id);\n\
             if ({}) {{ log(\"locations unavailable, retry active\"); return; }}\n\
             return_block(b, tag);\n\
         }}\n\n",
        guard("b", k.locations_checks)
    ));
    if let Some(checks) = k.listing_path {
        s.push_str(&format!(
            "fn get_listing(block_id: int, tag: str) {{\n\
                 let blk: Block = blocks.get(block_id);\n\
                 if ({}) {{ log(\"listing skipped, retry active\"); return; }}\n\
                 return_block(blk, tag);\n\
             }}\n\n",
            guard("blk", checks)
        ));
    }
    if let Some(checks) = k.batched_path {
        s.push_str(&format!(
            "fn get_batched_listing(block_id: int, tag: str) {{\n\
                 let cur: Block = blocks.get(block_id);\n\
                 if ({}) {{ log(\"batched listing skipped\"); return; }}\n\
                 return_block(cur, tag);\n\
             }}\n\n",
            guard("cur", checks)
        ));
    }
    s
}

fn hdfs_tests(k: &HdfsKnobs, with_regression_test: bool) -> (String, Vec<TestCase>) {
    let mut src = String::from(
        "fn test_locations_after_block_report() {\n\
             add_block(1, \"/data/f1\");\n\
             apply_block_report(1);\n\
             get_block_locations(1, \"g1\");\n\
             assert(returned.contains(\"g1\"), \"located block returned\");\n\
         }\n\n\
         fn test_block_report_sets_location() {\n\
             add_block(2, \"/data/f2\");\n\
             apply_block_report(2);\n\
             let b: Block = blocks.get(2);\n\
             assert(b != null && b.has_location, \"report recorded\");\n\
         }\n\n",
    );
    let mut tests = vec![
        TestCase::new(
            "test_locations_after_block_report",
            "observer reads: block locations are returned once the block report has arrived",
        ),
        TestCase::new(
            "test_block_report_sets_location",
            "block reports: applying a datanode block report marks the block located",
        ),
    ];
    if with_regression_test {
        src.push_str(
            "fn test_no_locations_when_report_delayed() {\n\
                 add_block(3, \"/data/f3\");\n\
                 get_block_locations(3, \"g3\");\n\
                 assert(returned.contains(\"g3\") == false, \"unlocated block must not be returned\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_no_locations_when_report_delayed",
            "regression HD-93924: when the observer block report is delayed the block must not be returned without locations",
        ));
    }
    if k.listing_path.is_some() {
        src.push_str(
            "fn test_listing_located_block() {\n\
                 add_block(4, \"/data/f4\");\n\
                 apply_block_report(4);\n\
                 get_listing(4, \"l4\");\n\
                 assert(returned.contains(\"l4\"), \"listing returns located block\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_listing_located_block",
            "observer reads: the listing path returns blocks that have locations",
        ));
    }
    if k.batched_path.is_some() {
        src.push_str(
            "fn test_batched_listing_located_block() {\n\
                 add_block(5, \"/data/f5\");\n\
                 apply_block_report(5);\n\
                 get_batched_listing(5, \"b5\");\n\
                 assert(returned.contains(\"b5\"), \"batched listing returns located block\");\n\
             }\n\n",
        );
        tests.push(TestCase::new(
            "test_batched_listing_located_block",
            "observer reads: the batched listing path returns blocks that have locations",
        ));
    }
    (src, tests)
}

fn hdfs_version(label: &str, k: HdfsKnobs, with_regression_test: bool) -> SystemVersion {
    let sys = hdfs_sys(&k);
    let (tests_src, tests) = hdfs_tests(&k, with_regression_test);
    build_version(
        label,
        "hdfs-observer-read",
        &[
            ("hdfs/observer".to_string(), sys),
            ("hdfs/observer_tests".to_string(), tests_src),
        ],
        tests,
    )
}

/// §4 Bug #2 case: observer namenode location checks.
pub fn hdfs_observer() -> Case {
    let buggy = hdfs_version(
        "v1-buggy",
        HdfsKnobs { locations_checks: false, listing_path: None, batched_path: None },
        false,
    );
    let fixed = hdfs_version(
        "v2-fixed",
        HdfsKnobs { locations_checks: true, listing_path: None, batched_path: None },
        true,
    );
    let regressed = hdfs_version(
        "v3-regressed",
        HdfsKnobs { locations_checks: true, listing_path: Some(false), batched_path: None },
        true,
    );
    let latest = hdfs_version(
        "v4-latest",
        HdfsKnobs {
            locations_checks: true,
            listing_path: Some(true),
            batched_path: Some(false),
        },
        true,
    );
    let t1 = TicketBuilder::new("HD-93924", "mini-hdfs")
        .title("BlockMissingException when reading from observer")
        .description(
            "if the observer namenode's block report is delayed, reads return blocks without \
             any location and clients fail",
        )
        .discuss("missing location check: the observer is not up-to-date with the active namenode")
        .buggy(
            "hdfs/observer",
            hdfs_sys(&HdfsKnobs { locations_checks: false, listing_path: None, batched_path: None }),
        )
        .fixed(
            "hdfs/observer",
            hdfs_sys(&HdfsKnobs { locations_checks: true, listing_path: None, batched_path: None }),
        )
        .regression_test("test_no_locations_when_report_delayed")
        .build();
    let t2 = TicketBuilder::new("HD-96732", "mini-hdfs")
        .title("Avoid get location from observer when the block report is delayed")
        .description("the listing path returns blocks without valid locations")
        .discuss("same class as HD-93924: get_listing misses the location check")
        .buggy(
            "hdfs/observer",
            hdfs_sys(&HdfsKnobs { locations_checks: true, listing_path: Some(false), batched_path: None }),
        )
        .fixed(
            "hdfs/observer",
            hdfs_sys(&HdfsKnobs { locations_checks: true, listing_path: Some(true), batched_path: None }),
        )
        .regression_test("test_listing_located_block")
        .build();
    Case {
        meta: CaseMeta {
            id: "hdfs-observer-read".into(),
            system: "mini-hdfs".into(),
            feature: "observer reads".into(),
            title: "Observer returns blocks without locations".into(),
            modelled_on: "HDFS-13924 -> HDFS-16732 -> HDFS-17768 (new)".into(),
            recurrence_gap_days: 540,
            violates_old_semantics: true,
        },
        versions: Versions { buggy, fixed, regressed, latest },
        tickets: vec![t1, t2],
        ground_truth: GroundTruth {
            target: TargetSpec::Call { callee: "return_block".into() },
            condition_src: "b != null && b.has_location == true".into(),
            latent_bug_in_latest: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lisa_lang::{Interp, NullTracer};

    fn tests_pass(case: &Case) {
        for v in case.versions.all() {
            for t in &v.tests {
                let mut interp = Interp::new(&v.program);
                let r = interp.call(&t.entry, vec![], &mut NullTracer);
                assert!(r.is_ok(), "{}/{}/{}: {:?}", case.meta.id, v.label, t.name, r.err());
            }
        }
    }

    #[test]
    fn zk_ephemeral_builds_and_tests_pass() {
        let c = zk_ephemeral();
        assert_eq!(c.bug_count(), 3);
        tests_pass(&c);
    }

    #[test]
    fn zk_sync_builds_and_tests_pass() {
        let c = zk_sync_serialize();
        assert_eq!(c.bug_count(), 2);
        tests_pass(&c);
    }

    #[test]
    fn hbase_snapshot_builds_and_tests_pass() {
        let c = hbase_snapshot();
        assert_eq!(c.bug_count(), 3);
        tests_pass(&c);
    }

    #[test]
    fn hdfs_observer_builds_and_tests_pass() {
        let c = hdfs_observer();
        assert_eq!(c.bug_count(), 3);
        tests_pass(&c);
    }

    #[test]
    fn kafka_scenario_shows_the_failure_on_buggy_version() {
        // On the buggy version, creating on a closing session leaves a
        // stale node — the Figure-2 symptom.
        let c = zk_ephemeral();
        let p = &c.versions.buggy.program;
        let mut interp = Interp::new(p);
        let run = |i: &mut Interp, f: &str, args: Vec<lisa_lang::Value>| {
            i.call(f, args, &mut NullTracer).expect(f)
        };
        use lisa_lang::Value::*;
        run(&mut interp, "open_session", vec![Int(1), Str("kafka".into())]);
        run(&mut interp, "begin_close_session", vec![Int(1)]);
        // The buggy path creates on the closing session:
        run(&mut interp, "prep_request_create", vec![Int(1), Str("/consumers/dead".into())]);
        run(&mut interp, "finish_close_session", vec![Int(1)]);
        // finish_close removes ephemeral nodes of the session, so the
        // truly dangerous interleaving is create *after* cleanup:
        run(&mut interp, "open_session", vec![Int(2), Str("kafka".into())]);
        run(&mut interp, "begin_close_session", vec![Int(2)]);
        run(&mut interp, "finish_close_session", vec![Int(2)]);
        assert!(interp.global("sessions").is_some());
    }

    #[test]
    fn ticket_diffs_contain_the_added_guards() {
        let c = zk_ephemeral();
        let (_, d) = &c.tickets[0].patch()[0];
        assert!(d.added_lines().iter().any(|(_, l)| l.contains("session.closing")));
        let c = hbase_snapshot();
        let (_, d) = &c.tickets[1].patch()[0];
        assert!(d
            .added_lines()
            .iter()
            .any(|(_, l)| l.contains("expires_at < req_time")), "{d}");
    }
}
