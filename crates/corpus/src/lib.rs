//! # lisa-corpus
//!
//! The regression-failure corpus: four mini cloud systems written in SIR
//! (mini-ZooKeeper, mini-HBase, mini-HDFS, mini-Cassandra), organized as
//! **16 regression cases / 34 bugs** mirroring the paper's §2.1 study.
//! Each case ships four source versions (buggy → fixed → regressed →
//! latest), ticket bundles with real diffs and developer discussion,
//! per-version test suites with curated summaries (for RAG selection),
//! and a ground-truth rule used only for scoring.
//!
//! - [`flagship`] — the four hand-written headline cases (Figures 2-3,
//!   Figure 6, §4 Bug #1 and Bug #2),
//! - [`gen`] — the guarded-action generator behind the other twelve,
//! - [`cases`] — corpus assembly and lookup,
//! - [`stats`] — the §2.1 study statistics (experiment E1),
//! - [`meta`] — case containers.

#![forbid(unsafe_code)]

pub mod cases;
pub mod flagship;
pub mod gen;
pub mod meta;
pub mod stats;

pub use cases::{all_cases, case};
pub use meta::{Case, CaseMeta, GroundTruth, Versions};
pub use stats::{study_stats, StudyStats};
