//! Corpus case metadata and containers.
//!
//! A [`Case`] models one regression cluster from the §2.1 study: an
//! original bug plus at least one recurrence of the same violated
//! semantic, with full source versions, ticket bundles, tests, and the
//! ground-truth rule the oracle should recover (used only for scoring,
//! never by inference).

use lisa_analysis::TargetSpec;
use lisa_concolic::SystemVersion;
use lisa_oracle::FailureTicket;

/// Study metadata for one case (drives the E1 table).
#[derive(Debug, Clone)]
pub struct CaseMeta {
    /// Case id, e.g. `zk-ephemeral`.
    pub id: String,
    /// Mini system, e.g. `mini-zookeeper`.
    pub system: String,
    /// Feature under regression, e.g. `ephemeral nodes`.
    pub feature: String,
    pub title: String,
    /// Which real-world ticket cluster the case is modelled on.
    pub modelled_on: String,
    /// Days between the original fix and the first recurrence.
    pub recurrence_gap_days: u32,
    /// Whether the violated semantic predates the first stable release
    /// (the study's "68% violate old semantics" dimension).
    pub violates_old_semantics: bool,
}

/// The four source versions every case ships.
#[derive(Debug, Clone)]
pub struct Versions {
    /// Before the original fix (bug #1 live).
    pub buggy: SystemVersion,
    /// After the original fix (bug #1 dead, regression test added).
    pub fixed: SystemVersion,
    /// After later evolution reintroduced the class (bug #2 live; the
    /// original regression test still passes).
    pub regressed: SystemVersion,
    /// The current head: known bugs fixed, but (for the flagship §4
    /// cases) a previously-unknown unchecked path exists.
    pub latest: SystemVersion,
}

impl Versions {
    pub fn all(&self) -> [&SystemVersion; 4] {
        [&self.buggy, &self.fixed, &self.regressed, &self.latest]
    }
}

/// The rule a perfect inference should produce (scoring only).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    pub target: TargetSpec,
    pub condition_src: String,
    /// Whether the `latest` version intentionally contains an unchecked
    /// path (a "previously unknown bug" in the §4 sense).
    pub latent_bug_in_latest: bool,
}

/// A full corpus case.
#[derive(Debug, Clone)]
pub struct Case {
    pub meta: CaseMeta,
    pub versions: Versions,
    /// One ticket per bug in the cluster (original first).
    pub tickets: Vec<FailureTicket>,
    pub ground_truth: GroundTruth,
}

impl Case {
    /// Number of bugs in the cluster: filed tickets plus the latent
    /// unknown bug (for the flagship §4 cases, the one LISA finds).
    pub fn bug_count(&self) -> usize {
        self.tickets.len() + usize::from(self.ground_truth.latent_bug_in_latest)
    }

    /// The ticket of the original bug.
    pub fn original_ticket(&self) -> &FailureTicket {
        &self.tickets[0]
    }
}
