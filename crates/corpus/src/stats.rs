//! Corpus statistics — the §2.1 study table (experiment E1).

use std::collections::BTreeMap;

use crate::meta::Case;

/// Aggregate study statistics.
#[derive(Debug, Clone)]
pub struct StudyStats {
    pub cases: usize,
    pub bugs: usize,
    /// (system, cases, bugs) rows.
    pub per_system: Vec<(String, usize, usize)>,
    /// Fraction of cases whose violated semantic predates the first
    /// stable release.
    pub old_semantics_fraction: f64,
    /// Mean days between original fix and first recurrence (cases with a
    /// recurrence).
    pub mean_recurrence_gap_days: f64,
    /// Mean number of tests per system version (the paper's "1,309 test
    /// files" axis, scaled to the mini systems).
    pub mean_tests_per_version: f64,
    /// Mean SIR source lines per version.
    pub mean_lines_per_version: f64,
}

/// Compute study statistics over a case set.
pub fn study_stats(cases: &[Case]) -> StudyStats {
    let mut per_system: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut old_sem = 0usize;
    let mut gaps: Vec<f64> = Vec::new();
    let mut test_counts: Vec<f64> = Vec::new();
    let mut line_counts: Vec<f64> = Vec::new();
    for c in cases {
        let e = per_system.entry(c.meta.system.clone()).or_insert((0, 0));
        e.0 += 1;
        e.1 += c.bug_count();
        if c.meta.violates_old_semantics {
            old_sem += 1;
        }
        if c.meta.recurrence_gap_days > 0 {
            gaps.push(c.meta.recurrence_gap_days as f64);
        }
        for v in c.versions.all() {
            test_counts.push(v.tests.len() as f64);
            line_counts.push(v.program.line_count() as f64);
        }
    }
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    StudyStats {
        cases: cases.len(),
        bugs: cases.iter().map(|c| c.bug_count()).sum(),
        per_system: per_system.into_iter().map(|(s, (c, b))| (s, c, b)).collect(),
        old_semantics_fraction: if cases.is_empty() {
            0.0
        } else {
            old_sem as f64 / cases.len() as f64
        },
        mean_recurrence_gap_days: mean(&gaps),
        mean_tests_per_version: mean(&test_counts),
        mean_lines_per_version: mean(&line_counts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::all_cases;

    #[test]
    fn headline_numbers_match_the_paper_shape() {
        let stats = study_stats(&all_cases());
        assert_eq!(stats.cases, 16);
        assert_eq!(stats.bugs, 34);
        // Paper: 68% of studied failures violate old semantics; the
        // corpus encodes 11/16 ≈ 0.69.
        assert!(
            (stats.old_semantics_fraction - 0.68).abs() < 0.03,
            "old-semantics fraction {} should be ≈0.68",
            stats.old_semantics_fraction
        );
        assert!(stats.mean_recurrence_gap_days > 100.0);
        assert!(stats.mean_tests_per_version >= 4.0);
        assert!(stats.mean_lines_per_version > 20.0);
    }

    #[test]
    fn per_system_rows_sum_up() {
        let stats = study_stats(&all_cases());
        let cases: usize = stats.per_system.iter().map(|(_, c, _)| c).sum();
        let bugs: usize = stats.per_system.iter().map(|(_, _, b)| b).sum();
        assert_eq!(cases, stats.cases);
        assert_eq!(bugs, stats.bugs);
        assert_eq!(stats.per_system.len(), 4);
    }
}
