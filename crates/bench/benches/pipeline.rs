//! End-to-end pipeline benchmarks over corpus cases: inference, rule
//! checking per selection strategy, and the parallel enforcement gate —
//! the wall-clock side of experiments E3/E4/E9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lisa::{enforce, Pipeline, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::{all_cases, case};
use lisa_oracle::infer_rules;

fn zk_rule() -> lisa_oracle::SemanticRule {
    let c = case("zk-ephemeral").expect("case");
    infer_rules(c.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule")
}

fn bench_inference(c: &mut Criterion) {
    let zk = case("zk-ephemeral").expect("case");
    c.bench_function("pipeline/inference_zk_ticket", |b| {
        b.iter(|| std::hint::black_box(infer_rules(zk.original_ticket()).expect("ok")))
    });
}

fn bench_check_rule(c: &mut Criterion) {
    let zk = case("zk-ephemeral").expect("case");
    let rule = zk_rule();
    let mut g = c.benchmark_group("pipeline/check_rule_regressed");
    for (name, sel) in [
        ("rag3", TestSelection::Rag { k: 3 }),
        ("all", TestSelection::All),
    ] {
        let pipeline =
            Pipeline::new(PipelineConfig { selection: sel, ..PipelineConfig::default() });
        g.bench_with_input(BenchmarkId::from_parameter(name), &pipeline, |b, p| {
            b.iter(|| {
                let r = p.check_rule(&zk.versions.regressed, &rule);
                assert!(r.has_violation());
                std::hint::black_box(r)
            })
        });
    }
    g.finish();
}

fn bench_gate(c: &mut Criterion) {
    // Register one mined rule per corpus case; gate the ZooKeeper
    // regressed version against the full registry.
    let zk = case("zk-ephemeral").expect("case");
    let mut registry = RuleRegistry::new();
    for case in all_cases() {
        if let Ok(out) = infer_rules(case.original_ticket()) {
            for r in out.rules {
                registry.register(r);
            }
        }
    }
    let config =
        PipelineConfig { selection: TestSelection::Rag { k: 3 }, ..PipelineConfig::default() };
    let mut g = c.benchmark_group("pipeline/gate_full_registry");
    for workers in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = enforce(&registry, &zk.versions.regressed, &config, workers);
                    std::hint::black_box(report.decision)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_inference, bench_check_rule, bench_gate
}
criterion_main!(benches);
