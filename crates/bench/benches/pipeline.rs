//! End-to-end pipeline benchmarks over corpus cases: inference, rule
//! checking per selection strategy, and the parallel enforcement gate —
//! the wall-clock side of experiments E3/E4/E9.

use lisa_bench::harness::{bench, group};

use lisa::{Gate, Pipeline, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::{all_cases, case};
use lisa_oracle::infer_rules;

fn zk_rule() -> lisa_oracle::SemanticRule {
    let c = case("zk-ephemeral").expect("case");
    infer_rules(c.original_ticket())
        .expect("inference")
        .rules
        .into_iter()
        .next()
        .expect("rule")
}

fn bench_inference() {
    group("pipeline/inference");
    let zk = case("zk-ephemeral").expect("case");
    bench("pipeline/inference_zk_ticket", || {
        infer_rules(zk.original_ticket()).expect("ok")
    });
}

fn bench_check_rule() {
    group("pipeline/check_rule_regressed");
    let zk = case("zk-ephemeral").expect("case");
    let rule = zk_rule();
    for (name, sel) in [
        ("rag3", TestSelection::Rag { k: 3 }),
        ("all", TestSelection::All),
    ] {
        let pipeline =
            Pipeline::new(PipelineConfig { selection: sel, ..PipelineConfig::default() });
        bench(&format!("pipeline/check_rule_regressed/{name}"), || {
            let r = pipeline.check_rule(&zk.versions.regressed, &rule);
            assert!(r.has_violation());
            r
        });
    }
}

fn bench_gate() {
    // Register one mined rule per corpus case; gate the ZooKeeper
    // regressed version against the full registry.
    group("pipeline/gate_full_registry");
    let zk = case("zk-ephemeral").expect("case");
    let mut registry = RuleRegistry::new();
    for case in all_cases() {
        if let Ok(out) = infer_rules(case.original_ticket()) {
            for r in out.rules {
                registry.register(r);
            }
        }
    }
    let config =
        PipelineConfig { selection: TestSelection::Rag { k: 3 }, ..PipelineConfig::default() };
    for workers in [1usize, 4] {
        let gate = Gate::new(&registry).config(config.clone()).workers(workers);
        bench(&format!("pipeline/gate_full_registry/{workers}"), || {
            gate.run(&zk.versions.regressed).decision
        });
    }
}

fn main() {
    bench_inference();
    bench_check_rule();
    bench_gate();
}
