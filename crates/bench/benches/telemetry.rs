//! Per-stage latency breakdown from the telemetry histograms: gate every
//! corpus case with metrics collection on, then write
//! `BENCH_telemetry.json` (per-stage count / mean / p50 / p95, in µs)
//! at the workspace root next to the human-readable lines this prints.
//!
//! Unlike the wall-clock benches, this measures *where* pipeline time
//! goes rather than how fast one closure spins — the numbers come from
//! the same `stage.*` histograms `lisa gate --metrics-out` exports.

use std::fmt::Write as _;

use lisa::{Gate, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::all_cases;
use lisa_oracle::infer_rules;

/// Stages reported, in pipeline order.
const STAGES: [&str; 9] = [
    "stage.callgraph_us",
    "stage.tree_us",
    "stage.aliases_us",
    "stage.select_us",
    "stage.concolic_us",
    "stage.judge_us",
    "pipeline.rule_us",
    "smt.query_us",
    "concolic.test_us",
];

fn main() {
    lisa_telemetry::init(lisa_telemetry::TelemetryConfig::MetricsOnly);

    // Populate the stage histograms: mine each corpus case's rules and
    // gate its regressed version, the same work the pipeline bench times.
    let config = PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() };
    let mut gated = 0usize;
    for case in all_cases() {
        let Ok(out) = infer_rules(case.original_ticket()) else { continue };
        let mut registry = RuleRegistry::new();
        for r in out.rules {
            registry.register(r);
        }
        let _ = Gate::new(&registry).config(config.clone()).workers(2).run(&case.versions.regressed);
        gated += 1;
    }

    let hists = lisa_telemetry::histograms_snapshot();
    println!("\n== telemetry/stage_breakdown ({gated} corpus cases gated) ==");
    let mut json = String::from("{\"stages\":{");
    let mut first = true;
    for name in STAGES {
        let Some(h) = hists.get(name) else { continue };
        let mean = h.sum.checked_div(h.count).unwrap_or(0);
        let (p50, p95) = (h.percentile(0.50), h.percentile(0.95));
        println!(
            "{name:<24} count {:>6}  mean {:>8} µs  p50 {:>8} µs  p95 {:>8} µs",
            h.count, mean, p50, p95,
        );
        if !first {
            json.push(',');
        }
        first = false;
        let _ = write!(
            json,
            "\"{name}\":{{\"count\":{},\"mean_us\":{mean},\"p50_us\":{p50},\"p95_us\":{p95}}}",
            h.count,
        );
    }
    json.push_str("}}");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(out, &json).expect("write BENCH_telemetry.json");
    println!("\nwrote {out}");
}
