//! Work-stealing gate scaling: the full corpus rule set gated cold at
//! widths 1/2/4/8, plus a stall-overlap workload whose per-rule injected
//! stalls can only be hidden by running rules concurrently. Writes
//! `BENCH_parallel.json` (per-width wall clock, speedups, scheduler and
//! cache-lock counters) at the workspace root.
//!
//! Two scaling gates:
//!
//! - the stall-overlap workload asserts >= 2x at width 4 and >= 3x at
//!   width 8 *unconditionally* — stalls are `thread::sleep`, so they
//!   overlap even on a single hardware thread, making this a pure
//!   scheduler-correctness check that is machine-independent;
//! - the cold corpus workload asserts the same thresholds only when the
//!   machine actually has that many hardware threads, since compute-bound
//!   speedup is physically capped by the core count.
//!
//! Both workloads also re-assert the determinism contract: every width
//! must render byte-identical enforcement reports.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lisa::report::render_enforcement;
use lisa::{
    FaultInjector, FaultKind, FaultPlan, Gate, GateCache, GateOptions, PipelineConfig,
    RuleRegistry, TestSelection,
};
use lisa_corpus::{all_cases, case};
use lisa_oracle::infer_rules;

/// Timed repetitions per width; the minimum is reported.
const SAMPLES: usize = 3;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Injected stall per rule in the overlap workload. Large enough to
/// dwarf the actual check cost of the tiny fixture registry.
const STALL: Duration = Duration::from_millis(40);

fn corpus_registry() -> RuleRegistry {
    let mut registry = RuleRegistry::new();
    for case in all_cases() {
        if let Ok(out) = infer_rules(case.original_ticket()) {
            for r in out.rules {
                registry.register(r);
            }
        }
    }
    registry
}

fn config() -> PipelineConfig {
    PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() }
}

/// Min-of-samples cold gate wall clock at `workers`, plus the rendered
/// report of the last run (for the cross-width byte-identity assert).
fn time_cold(registry: &RuleRegistry, version: &lisa_concolic::SystemVersion, workers: usize)
-> (f64, String) {
    let mut best_ms = f64::INFINITY;
    let mut render = String::new();
    for _ in 0..SAMPLES {
        // A fresh cache per run: this is the cold path, where the
        // concolic and solver leaves dominate and parallelism pays.
        let cache = Arc::new(GateCache::new());
        let gate = Gate::new(registry).config(config()).workers(workers).cache(&cache);
        let t0 = Instant::now();
        let report = gate.run(version);
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        render = render_enforcement(&report);
    }
    (best_ms, render)
}

/// Min-of-samples gate wall clock with a `STALL` injected on every rule:
/// rules spend their time in `thread::sleep`, so the speedup at width N
/// measures pure rule-level overlap, independent of core count.
fn time_stalled(registry: &RuleRegistry, version: &lisa_concolic::SystemVersion, workers: usize)
-> (f64, String) {
    let mut plan = FaultPlan::new();
    for rule in registry.rules() {
        plan = plan.inject(rule.id.clone(), FaultKind::Stall);
    }
    let mut best_ms = f64::INFINITY;
    let mut render = String::new();
    for _ in 0..SAMPLES {
        let mut faults = FaultInjector::new(plan.clone());
        faults.stall = STALL;
        let options = GateOptions { faults: Some(faults), ..GateOptions::default() };
        let gate = Gate::new(registry).config(config()).workers(workers).options(options);
        let t0 = Instant::now();
        let report = gate.run(version);
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        render = render_enforcement(&report);
    }
    (best_ms, render)
}

fn main() {
    lisa_telemetry::init(lisa_telemetry::TelemetryConfig::MetricsOnly);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let registry = corpus_registry();
    let zk = case("zk-ephemeral").expect("case");
    let version = &zk.versions.regressed;
    println!("\n== parallel/gate_scaling ({} rules, {cores} core(s)) ==", registry.len());

    // Cold corpus workload.
    let mut cold_ms = Vec::new();
    let mut cold_render = Vec::new();
    for &w in &WIDTHS {
        let (ms, render) = time_cold(&registry, version, w);
        println!("parallel/cold/workers_{w}    min {ms:>9.2} ms/run  ({SAMPLES} samples)");
        cold_ms.push(ms);
        cold_render.push(render);
    }
    for (i, render) in cold_render.iter().enumerate() {
        assert_eq!(
            *render, cold_render[0],
            "width {} report drifted from width 1",
            WIDTHS[i]
        );
    }

    // Stall-overlap workload.
    let mut stall_ms = Vec::new();
    let mut stall_render = Vec::new();
    for &w in &WIDTHS {
        let (ms, render) = time_stalled(&registry, version, w);
        println!("parallel/stall/workers_{w}   min {ms:>9.2} ms/run  ({SAMPLES} samples)");
        stall_ms.push(ms);
        stall_render.push(render);
    }
    for (i, render) in stall_render.iter().enumerate() {
        assert_eq!(
            *render, stall_render[0],
            "stalled width {} report drifted from width 1",
            WIDTHS[i]
        );
    }

    let speedup = |ms: &[f64], w: usize| ms[0] / ms[WIDTHS.iter().position(|&x| x == w).unwrap()];
    let (cold4, cold8) = (speedup(&cold_ms, 4), speedup(&cold_ms, 8));
    let (stall4, stall8) = (speedup(&stall_ms, 4), speedup(&stall_ms, 8));
    println!("parallel/cold/speedup_4w  {cold4:>9.2} x   speedup_8w {cold8:>9.2} x");
    println!("parallel/stall/speedup_4w {stall4:>9.2} x   speedup_8w {stall8:>9.2} x");

    // Scheduler-overlap gate: machine-independent, always enforced.
    assert!(
        stall4 >= 2.0,
        "4 workers must overlap stalled rules at least 2x (got {stall4:.2}x)"
    );
    assert!(
        stall8 >= 3.0,
        "8 workers must overlap stalled rules at least 3x (got {stall8:.2}x)"
    );
    // Compute-bound gate: only meaningful when the cores exist.
    if cores >= 4 {
        assert!(
            cold4 >= 2.0,
            "4 workers on {cores} cores must run the cold corpus at least 2x faster \
             (got {cold4:.2}x)"
        );
    } else {
        println!("parallel/cold: {cores} core(s) < 4 — cold speedup threshold skipped");
    }
    if cores >= 8 {
        assert!(
            cold8 >= 3.0,
            "8 workers on {cores} cores must run the cold corpus at least 3x faster \
             (got {cold8:.2}x)"
        );
    }

    // One instrumented 8-wide cold run for the scheduler/lock counters.
    let spawned0 = lisa_telemetry::counter_value("sched.tasks_spawned");
    let stolen0 = lisa_telemetry::counter_value("sched.tasks_stolen");
    let cache = Arc::new(GateCache::new());
    let report = Gate::new(&registry).config(config()).workers(8).cache(&cache).run(version);
    assert_eq!(render_enforcement(&report), cold_render[0]);
    let spawned = lisa_telemetry::counter_value("sched.tasks_spawned") - spawned0;
    let stolen = lisa_telemetry::counter_value("sched.tasks_stolen") - stolen0;
    let tiers = cache.tier_stats();
    let lock_acquires: u64 = tiers.iter().map(|(_, s)| s.lock_acquires).sum();
    let lock_contended: u64 = tiers.iter().map(|(_, s)| s.lock_contended).sum();
    println!(
        "parallel/sched: {spawned} tasks spawned, {stolen} stolen; \
         {lock_acquires} cache lock acquires, {lock_contended} contended"
    );

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"parallel_gate_scaling\",\"samples\":{SAMPLES},\"cores\":{cores},\
         \"rules\":{},\"cold_ms\":[",
        registry.len()
    );
    for (i, ms) in cold_ms.iter().enumerate() {
        let _ = write!(json, "{}{ms:.3}", if i > 0 { "," } else { "" });
    }
    json.push_str("],\"stall_ms\":[");
    for (i, ms) in stall_ms.iter().enumerate() {
        let _ = write!(json, "{}{ms:.3}", if i > 0 { "," } else { "" });
    }
    let _ = write!(
        json,
        "],\"widths\":[1,2,4,8],\
         \"cold_speedup_4w\":{cold4:.2},\"cold_speedup_8w\":{cold8:.2},\
         \"stall_speedup_4w\":{stall4:.2},\"stall_speedup_8w\":{stall8:.2},\
         \"sched_tasks_spawned\":{spawned},\"sched_tasks_stolen\":{stolen},\
         \"cache_lock_acquires\":{lock_acquires},\"cache_lock_contended\":{lock_contended}"
    );
    json.push('}');
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(out, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {out}");
}
