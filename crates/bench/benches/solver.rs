//! SMT solver benchmarks: the Z3-substitute's cost profile on the
//! formula shapes LISA produces (rule checkers, path conditions, the
//! complement violation query), plus adversarial SAT structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lisa_smt::term::{CmpOp, Term};
use lisa_smt::{is_sat, parse_cond, violates};

/// A rule-shaped conjunction over `n` distinct guarded entities.
fn rule_chain(n: usize) -> Term {
    Term::and((0..n).flat_map(|i| {
        [
            Term::not_null(format!("e{i}")),
            Term::bool_var(format!("e{i}.closing")).not(),
            Term::int_cmp_c(format!("e{i}.ttl"), CmpOp::Gt, 0),
        ]
    }))
}

/// Difference-logic chain x0 < x1 < ... < x_n with a closing bound.
fn diff_chain(n: usize, sat: bool) -> Term {
    let mut parts: Vec<Term> =
        (0..n).map(|i| Term::int_cmp_v(format!("x{i}"), CmpOp::Lt, format!("x{}", i + 1))).collect();
    parts.push(Term::int_cmp_c("x0", CmpOp::Ge, 0));
    parts.push(Term::int_cmp_c(
        format!("x{n}"),
        CmpOp::Le,
        if sat { n as i64 + 1 } else { n as i64 - 1 },
    ));
    Term::and(parts)
}

fn bench_violation_query(c: &mut Criterion) {
    let checker =
        parse_cond("s != null && s.isClosing == false && s.ttl > 0").expect("checker");
    let pi_missing = parse_cond("s != null && s.isClosing == false").expect("pi");
    let pi_full = checker.clone();
    c.bench_function("violates/missing_check", |b| {
        b.iter(|| std::hint::black_box(violates(&pi_missing, &checker).is_some()))
    });
    c.bench_function("violates/verified_path", |b| {
        b.iter(|| std::hint::black_box(violates(&pi_full, &checker).is_none()))
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/rule_chain");
    for n in [1usize, 4, 16, 64] {
        let t = rule_chain(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| std::hint::black_box(is_sat(t)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("solver/diff_logic");
    for n in [8usize, 32, 128] {
        let sat = diff_chain(n, true);
        let unsat = diff_chain(n, false);
        g.bench_with_input(BenchmarkId::new("sat", n), &sat, |b, t| {
            b.iter(|| std::hint::black_box(is_sat(t)))
        });
        g.bench_with_input(BenchmarkId::new("unsat", n), &unsat, |b, t| {
            b.iter(|| std::hint::black_box(is_sat(t)))
        });
    }
    g.finish();
}

fn bench_condition_parsing(c: &mut Criterion) {
    let src = "s != null && s.isClosing == false && s.ttl > 0 && snap.expires_at >= req_time \
               && state == \"OPEN\" && ($locks.held == 0 || admin == true)";
    c.bench_function("parse_cond/complex", |b| {
        b.iter(|| std::hint::black_box(parse_cond(src).expect("parse")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_violation_query, bench_scaling, bench_condition_parsing
}
criterion_main!(benches);
