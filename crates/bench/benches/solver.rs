//! SMT solver benchmarks: the Z3-substitute's cost profile on the
//! formula shapes LISA produces (rule checkers, path conditions, the
//! complement violation query), plus adversarial SAT structure.

use lisa_bench::harness::{bench, group};

use lisa_smt::term::{CmpOp, Term};
use lisa_smt::{is_sat, parse_cond, violates};

/// A rule-shaped conjunction over `n` distinct guarded entities.
fn rule_chain(n: usize) -> Term {
    Term::and((0..n).flat_map(|i| {
        [
            Term::not_null(format!("e{i}")),
            Term::bool_var(format!("e{i}.closing")).not(),
            Term::int_cmp_c(format!("e{i}.ttl"), CmpOp::Gt, 0),
        ]
    }))
}

/// Difference-logic chain x0 < x1 < ... < x_n with a closing bound.
fn diff_chain(n: usize, sat: bool) -> Term {
    let mut parts: Vec<Term> =
        (0..n).map(|i| Term::int_cmp_v(format!("x{i}"), CmpOp::Lt, format!("x{}", i + 1))).collect();
    parts.push(Term::int_cmp_c("x0", CmpOp::Ge, 0));
    parts.push(Term::int_cmp_c(
        format!("x{n}"),
        CmpOp::Le,
        if sat { n as i64 + 1 } else { n as i64 - 1 },
    ));
    Term::and(parts)
}

fn bench_violation_query() {
    group("violation query");
    let checker =
        parse_cond("s != null && s.isClosing == false && s.ttl > 0").expect("checker");
    let pi_missing = parse_cond("s != null && s.isClosing == false").expect("pi");
    let pi_full = checker.clone();
    bench("violates/missing_check", || violates(&pi_missing, &checker).is_some());
    bench("violates/verified_path", || violates(&pi_full, &checker).is_none());
}

fn bench_scaling() {
    group("solver/rule_chain");
    for n in [1usize, 4, 16, 64] {
        let t = rule_chain(n);
        bench(&format!("solver/rule_chain/{n}"), || is_sat(&t));
    }

    group("solver/diff_logic");
    for n in [8usize, 32, 128] {
        let sat = diff_chain(n, true);
        let unsat = diff_chain(n, false);
        bench(&format!("solver/diff_logic/sat/{n}"), || is_sat(&sat));
        bench(&format!("solver/diff_logic/unsat/{n}"), || is_sat(&unsat));
    }
}

fn bench_condition_parsing() {
    group("condition parsing");
    let src = "s != null && s.isClosing == false && s.ttl > 0 && snap.expires_at >= req_time \
               && state == \"OPEN\" && ($locks.held == 0 || admin == true)";
    bench("parse_cond/complex", || parse_cond(src).expect("parse"));
}

fn main() {
    bench_violation_query();
    bench_scaling();
    bench_condition_parsing();
}
