//! Repeated-version gating with the version-scoped cache: run the full
//! gate twice against the same `SystemVersion`, once with a cold
//! `GateCache` and once re-using the warm one, and write
//! `BENCH_cache.json` (cold / warm wall-clock, speedup, hit counters)
//! at the workspace root.
//!
//! This is the CI-loop scenario the cache exists for — the same version
//! gated repeatedly — so the bench asserts the warm run is at least 2x
//! faster and that its report renders byte-identically to the cold one.
//!
//! A second section measures solver-session clause reuse on the
//! multi-check-per-rule workload (one checker, many distinct path
//! conditions — the shape the `QueryCache` cannot help with, since no
//! query repeats) and asserts the session is at least 1.5x faster than
//! fresh per-query solving.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use lisa::report::render_enforcement;
use lisa::{Gate, GateCache, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::{all_cases, case};
use lisa_oracle::infer_rules;
use lisa_smt::{CmpOp, SolverSession, Term, ViolationOutcome};

/// Timed repetitions per variant; the minimum is reported, matching the
/// harness's use of min as the noise-resistant statistic.
const SAMPLES: usize = 5;

fn main() {
    // One mined rule set per corpus case, gating the ZooKeeper regressed
    // version — the same workload as the pipeline gate bench, but with
    // `TestSelection::All` so the concolic stage dominates and the
    // repeated-version speedup reflects real re-execution cost.
    let zk = case("zk-ephemeral").expect("case");
    let mut registry = RuleRegistry::new();
    for case in all_cases() {
        if let Ok(out) = infer_rules(case.original_ticket()) {
            for r in out.rules {
                registry.register(r);
            }
        }
    }
    let config = PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() };
    let version = &zk.versions.regressed;

    println!("\n== cache/repeated_version_gate ==");

    // Cold: a fresh cache every run, so each run pays full analysis,
    // concolic, and solver cost (plus cache population overhead).
    let mut cold_ms = f64::INFINITY;
    let mut cold_render = String::new();
    for _ in 0..SAMPLES {
        let cache = Arc::new(GateCache::new());
        let gate = Gate::new(&registry).config(config.clone()).workers(1).cache(&cache);
        let t0 = Instant::now();
        let report = gate.run(version);
        cold_ms = cold_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        cold_render = render_enforcement(&report);
    }

    // Warm: one shared cache, populated by a first untimed run, then the
    // same gate repeated — the second-run-of-an-unchanged-version case.
    let cache = Arc::new(GateCache::new());
    let gate = Gate::new(&registry).config(config).workers(1).cache(&cache);
    let _ = gate.run(version);
    let (seed_hits, seed_misses) = (cache.hits(), cache.misses());
    let mut warm_ms = f64::INFINITY;
    let mut warm_render = String::new();
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let report = gate.run(version);
        warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        warm_render = render_enforcement(&report);
    }
    let (hits, misses) = (cache.hits() - seed_hits, cache.misses() - seed_misses);

    assert_eq!(cold_render, warm_render, "cached report must render byte-identical");
    let speedup = cold_ms / warm_ms;
    println!("cache/repeated_version_gate/cold    min {cold_ms:>9.2} ms/run  ({SAMPLES} samples)");
    println!("cache/repeated_version_gate/warm    min {warm_ms:>9.2} ms/run  ({SAMPLES} samples)");
    println!(
        "cache/repeated_version_gate/speedup {speedup:>9.2} x  \
         ({hits} hits, {misses} misses across warm samples)"
    );
    assert!(
        speedup >= 2.0,
        "warm repeat of an unchanged version must be at least 2x faster \
         (cold {cold_ms:.2} ms, warm {warm_ms:.2} ms)"
    );

    let session = bench_session_reuse();

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"repeated_version_gate\",\"samples\":{SAMPLES},\
         \"cold_ms\":{cold_ms:.3},\"warm_ms\":{warm_ms:.3},\"speedup\":{speedup:.2},\
         \"warm_hits\":{hits},\"warm_misses\":{misses},\
         \"session_fresh_ms\":{:.3},\"session_ms\":{:.3},\"session_speedup\":{:.2},\
         \"session_queries\":{},\"session_incremental\":{},\
         \"session_learned_retained\":{},\"session_learned_reused\":{}",
        session.fresh_ms,
        session.session_ms,
        session.speedup,
        session.stats.queries,
        session.stats.incremental,
        session.stats.learned_retained,
        session.stats.learned_reused,
    );
    json.push('}');
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    std::fs::write(out, &json).expect("write BENCH_cache.json");
    println!("\nwrote {out}");
}

struct SessionBench {
    fresh_ms: f64,
    session_ms: f64,
    speedup: f64,
    stats: lisa_smt::SessionStats,
}

/// The multi-check-per-rule workload: one rule condition, many distinct
/// path conditions. Every query is `π ∧ ¬checker` with a π seen exactly
/// once, so exact-repeat memoization never fires; what a session reuses
/// is the *refutation* — the clauses learned proving `¬checker` unsat on
/// the first query carry to every later one.
fn bench_session_reuse() -> SessionBench {
    println!("\n== cache/solver_session_reuse ==");

    // A valid checker whose negation needs genuine search: four ints
    // pairwise distinct in [0,2] is unsatisfiable, but only after the
    // Eq/Ne splitting explores the assignment space.
    let in_range = |v: &str| {
        Term::and([Term::int_cmp_c(v, CmpOp::Ge, 0), Term::int_cmp_c(v, CmpOp::Le, 2)])
    };
    let vars = ["c0", "c1", "c2", "c3"];
    let mut parts: Vec<Term> = vars.iter().map(|v| in_range(v)).collect();
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            parts.push(Term::int_cmp_v(vars[i], CmpOp::Ne, vars[j]));
        }
    }
    let checker = Term::and(parts).not();
    let pis: Vec<Term> =
        (0..32).map(|i| Term::int_cmp_c(format!("a{i}"), CmpOp::Gt, 0)).collect();

    // Fresh-per-query: the pre-session dispatch, re-refuting ¬checker
    // for every π.
    let mut fresh_ms = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for pi in &pis {
            let outcome = lisa_smt::violates_budgeted(pi, &checker, None);
            assert!(matches!(outcome, ViolationOutcome::Verified), "{outcome:?}");
        }
        fresh_ms = fresh_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    // One session for the whole batch, as the pipeline dispatches it.
    let mut session_ms = f64::INFINITY;
    let mut stats = lisa_smt::SessionStats::default();
    for _ in 0..SAMPLES {
        let session = SolverSession::new(&checker);
        let t0 = Instant::now();
        for pi in &pis {
            let outcome = session.violates_budgeted(pi, None);
            assert!(matches!(outcome, ViolationOutcome::Verified), "{outcome:?}");
        }
        session_ms = session_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        stats = session.stats();
    }

    let speedup = fresh_ms / session_ms;
    println!("cache/solver_session_reuse/fresh    min {fresh_ms:>9.2} ms/batch  ({SAMPLES} samples)");
    println!("cache/solver_session_reuse/session  min {session_ms:>9.2} ms/batch  ({SAMPLES} samples)");
    println!(
        "cache/solver_session_reuse/speedup {speedup:>9.2} x  \
         ({} queries, {} incremental, {} learned retained, {} learned reused)",
        stats.queries, stats.incremental, stats.learned_retained, stats.learned_reused
    );
    assert_eq!(stats.incremental, stats.queries, "every query must reuse the session core");
    assert!(stats.learned_reused > 0, "later queries must start from retained clauses");
    assert!(
        speedup >= 1.5,
        "session must amortize the refutation across the batch \
         (fresh {fresh_ms:.2} ms, session {session_ms:.2} ms)"
    );
    SessionBench { fresh_ms, session_ms, speedup, stats }
}
