//! Repeated-version gating with the version-scoped cache: run the full
//! gate twice against the same `SystemVersion`, once with a cold
//! `GateCache` and once re-using the warm one, and write
//! `BENCH_cache.json` (cold / warm wall-clock, speedup, hit counters)
//! at the workspace root.
//!
//! This is the CI-loop scenario the cache exists for — the same version
//! gated repeatedly — so the bench asserts the warm run is at least 2x
//! faster and that its report renders byte-identically to the cold one.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use lisa::report::render_enforcement;
use lisa::{Gate, GateCache, PipelineConfig, RuleRegistry, TestSelection};
use lisa_corpus::{all_cases, case};
use lisa_oracle::infer_rules;

/// Timed repetitions per variant; the minimum is reported, matching the
/// harness's use of min as the noise-resistant statistic.
const SAMPLES: usize = 5;

fn main() {
    // One mined rule set per corpus case, gating the ZooKeeper regressed
    // version — the same workload as the pipeline gate bench, but with
    // `TestSelection::All` so the concolic stage dominates and the
    // repeated-version speedup reflects real re-execution cost.
    let zk = case("zk-ephemeral").expect("case");
    let mut registry = RuleRegistry::new();
    for case in all_cases() {
        if let Ok(out) = infer_rules(case.original_ticket()) {
            for r in out.rules {
                registry.register(r);
            }
        }
    }
    let config = PipelineConfig { selection: TestSelection::All, ..PipelineConfig::default() };
    let version = &zk.versions.regressed;

    println!("\n== cache/repeated_version_gate ==");

    // Cold: a fresh cache every run, so each run pays full analysis,
    // concolic, and solver cost (plus cache population overhead).
    let mut cold_ms = f64::INFINITY;
    let mut cold_render = String::new();
    for _ in 0..SAMPLES {
        let cache = Arc::new(GateCache::new());
        let gate = Gate::new(&registry).config(config.clone()).workers(1).cache(&cache);
        let t0 = Instant::now();
        let report = gate.run(version);
        cold_ms = cold_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        cold_render = render_enforcement(&report);
    }

    // Warm: one shared cache, populated by a first untimed run, then the
    // same gate repeated — the second-run-of-an-unchanged-version case.
    let cache = Arc::new(GateCache::new());
    let gate = Gate::new(&registry).config(config).workers(1).cache(&cache);
    let _ = gate.run(version);
    let (seed_hits, seed_misses) = (cache.hits(), cache.misses());
    let mut warm_ms = f64::INFINITY;
    let mut warm_render = String::new();
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let report = gate.run(version);
        warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        warm_render = render_enforcement(&report);
    }
    let (hits, misses) = (cache.hits() - seed_hits, cache.misses() - seed_misses);

    assert_eq!(cold_render, warm_render, "cached report must render byte-identical");
    let speedup = cold_ms / warm_ms;
    println!("cache/repeated_version_gate/cold    min {cold_ms:>9.2} ms/run  ({SAMPLES} samples)");
    println!("cache/repeated_version_gate/warm    min {warm_ms:>9.2} ms/run  ({SAMPLES} samples)");
    println!(
        "cache/repeated_version_gate/speedup {speedup:>9.2} x  \
         ({hits} hits, {misses} misses across warm samples)"
    );
    assert!(
        speedup >= 2.0,
        "warm repeat of an unchanged version must be at least 2x faster \
         (cold {cold_ms:.2} ms, warm {warm_ms:.2} ms)"
    );

    let mut json = String::from("{");
    let _ = write!(
        json,
        "\"bench\":\"repeated_version_gate\",\"samples\":{SAMPLES},\
         \"cold_ms\":{cold_ms:.3},\"warm_ms\":{warm_ms:.3},\"speedup\":{speedup:.2},\
         \"warm_hits\":{hits},\"warm_misses\":{misses}"
    );
    json.push('}');
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    std::fs::write(out, &json).expect("write BENCH_cache.json");
    println!("\nwrote {out}");
}
