//! SIR front-end benchmarks: lexing/parsing/type-checking and static
//! analysis (call graph, execution tree) — the Soot-substitute costs.

use lisa_bench::harness::{bench, group};

use lisa_analysis::{execution_tree, CallGraph, TargetSpec, TreeLimits};
use lisa_lang::{check_program, parse_module, Program};

/// Generate a module with `n` request-path functions over one store.
fn module_src(n: usize) -> String {
    let mut s = String::from(
        "struct Entity { id: int, ok: bool, ttl: int }\n\
         global store: map<int, Entity>;\n\
         global effects: map<str, int>;\n\
         fn act(e: Entity, tag: str) { effects.put(tag, e.id); }\n",
    );
    for i in 0..n {
        s.push_str(&format!(
            "fn path_{i}(eid: int, tag: str) {{\n\
                 let e: Entity = store.get(eid);\n\
                 if (e == null || e.ok == false || e.ttl <= {i}) {{ return; }}\n\
                 act(e, tag);\n\
             }}\n"
        ));
    }
    s
}

fn bench_parse_and_check() {
    group("frontend/parse");
    for n in [8usize, 64, 256] {
        let src = module_src(n);
        bench(&format!("frontend/parse/{n}"), || parse_module("m", &src).expect("parse"));
    }

    group("frontend/typecheck");
    for n in [8usize, 64, 256] {
        let src = module_src(n);
        let p = Program::parse_single("m", &src).expect("parse");
        bench(&format!("frontend/typecheck/{n}"), || {
            let errs = check_program(&p);
            assert!(errs.is_empty());
        });
    }
}

fn bench_analysis() {
    group("analysis/callgraph_and_tree");
    for n in [8usize, 64, 256] {
        let src = module_src(n);
        let p = Program::parse_single("m", &src).expect("parse");
        bench(&format!("analysis/callgraph_and_tree/{n}"), || {
            let graph = CallGraph::build(&p);
            let tree = execution_tree(
                &graph,
                &TargetSpec::Call { callee: "act".into() },
                TreeLimits::default(),
            );
            assert_eq!(tree.chains.len(), n);
            tree
        });
    }
}

fn bench_corpus_load() {
    group("corpus");
    bench("corpus/build_all_16_cases", || lisa_corpus::all_cases().len());
}

fn main() {
    bench_parse_and_check();
    bench_analysis();
    bench_corpus_load();
}
