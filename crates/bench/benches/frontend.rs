//! SIR front-end benchmarks: lexing/parsing/type-checking and static
//! analysis (call graph, execution tree) — the Soot-substitute costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lisa_analysis::{execution_tree, CallGraph, TargetSpec, TreeLimits};
use lisa_lang::{check_program, parse_module, Program};

/// Generate a module with `n` request-path functions over one store.
fn module_src(n: usize) -> String {
    let mut s = String::from(
        "struct Entity { id: int, ok: bool, ttl: int }\n\
         global store: map<int, Entity>;\n\
         global effects: map<str, int>;\n\
         fn act(e: Entity, tag: str) { effects.put(tag, e.id); }\n",
    );
    for i in 0..n {
        s.push_str(&format!(
            "fn path_{i}(eid: int, tag: str) {{\n\
                 let e: Entity = store.get(eid);\n\
                 if (e == null || e.ok == false || e.ttl <= {i}) {{ return; }}\n\
                 act(e, tag);\n\
             }}\n"
        ));
    }
    s
}

fn bench_parse_and_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend/parse");
    for n in [8usize, 64, 256] {
        let src = module_src(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            b.iter(|| std::hint::black_box(parse_module("m", src).expect("parse")))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("frontend/typecheck");
    for n in [8usize, 64, 256] {
        let src = module_src(n);
        let p = Program::parse_single("m", &src).expect("parse");
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| {
                let errs = check_program(p);
                assert!(errs.is_empty());
            })
        });
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis/callgraph_and_tree");
    for n in [8usize, 64, 256] {
        let src = module_src(n);
        let p = Program::parse_single("m", &src).expect("parse");
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| {
                let graph = CallGraph::build(p);
                let tree = execution_tree(
                    &graph,
                    &TargetSpec::Call { callee: "act".into() },
                    TreeLimits::default(),
                );
                assert_eq!(tree.chains.len(), n);
                std::hint::black_box(tree)
            })
        });
    }
    g.finish();
}

fn bench_corpus_load(c: &mut Criterion) {
    c.bench_function("corpus/build_all_16_cases", |b| {
        b.iter(|| std::hint::black_box(lisa_corpus::all_cases().len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_parse_and_check, bench_analysis, bench_corpus_load
}
criterion_main!(benches);
