//! Concolic engine benchmarks: interpreter throughput, tracer overhead,
//! and the pruning policy's effect (the quantitative side of experiment
//! E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lisa_analysis::{AliasMap, TargetSpec};
use lisa_concolic::{ConcolicTracer, Policy};
use lisa_lang::{Interp, NullTracer, Program, Value};

fn hot_loop_program() -> Program {
    Program::parse_single(
        "bench",
        "fn spin(n: int) -> int {\n\
             let acc = 0;\n\
             let i = 0;\n\
             while (i < n) {\n\
                 if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; }\n\
                 i = i + 1;\n\
             }\n\
             return acc;\n\
         }",
    )
    .expect("program")
}

fn guarded_program(guards: usize) -> Program {
    let mut src = String::from(
        "struct E { id: int, ok: bool }\n\
         global store: map<int, E>;\n\
         global out: map<str, int>;\n\
         global knobs: map<int, int>;\n\
         fn act(e: E, tag: str) { out.put(tag, e.id); }\n\
         fn drive(eid: int, tag: str) {\n\
             let e: E = store.get(eid);\n\
             if (e == null || e.ok == false) { return; }\n",
    );
    for i in 0..guards {
        src.push_str(&format!(
            "    let k{i} = knobs.get({i});\n    if (k{i} > 10) {{ log(\"hot\"); }}\n"
        ));
    }
    src.push_str(
        "    act(e, tag);\n}\n\
         fn seed() { store.put(1, new E { id: 1, ok: true }); }\n",
    );
    Program::parse_single("bench", &src).expect("program")
}

fn bench_interp(c: &mut Criterion) {
    let p = hot_loop_program();
    let mut g = c.benchmark_group("interp/spin_loop");
    for n in [100i64, 1_000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut interp = Interp::new(&p);
                interp
                    .call("spin", vec![Value::Int(n)], &mut NullTracer)
                    .expect("run")
            })
        });
    }
    g.finish();
}

fn bench_tracer_overhead(c: &mut Criterion) {
    let p = guarded_program(64);
    let target = TargetSpec::Call { callee: "act".into() };
    let mut aliases = AliasMap::default();
    aliases.insert("drive", "e", "e");
    aliases.insert("act", "e", "e");

    let mut g = c.benchmark_group("concolic/policy_overhead");
    g.bench_function("null_tracer", |b| {
        b.iter(|| {
            let mut interp = Interp::new(&p);
            interp.call("seed", vec![], &mut NullTracer).expect("seed");
            interp
                .call("drive", vec![Value::Int(1), Value::Str("t".into())], &mut NullTracer)
                .expect("drive")
        })
    });
    g.bench_function("relevant_only", |b| {
        b.iter(|| {
            let mut interp = Interp::new(&p);
            let mut tr =
                ConcolicTracer::new(target.clone(), aliases.clone(), Policy::RelevantOnly);
            interp.call("seed", vec![], &mut tr).expect("seed");
            interp
                .call("drive", vec![Value::Int(1), Value::Str("t".into())], &mut tr)
                .expect("drive");
            assert_eq!(tr.hits.len(), 1);
        })
    });
    g.bench_function("record_all", |b| {
        b.iter(|| {
            let mut interp = Interp::new(&p);
            let mut tr = ConcolicTracer::new(target.clone(), aliases.clone(), Policy::RecordAll);
            interp.call("seed", vec![], &mut tr).expect("seed");
            interp
                .call("drive", vec![Value::Int(1), Value::Str("t".into())], &mut tr)
                .expect("drive");
            assert_eq!(tr.hits.len(), 1);
        })
    });
    g.finish();
}

fn bench_pruning_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("concolic/pruning_scaling");
    for guards in [16usize, 64, 256] {
        let p = guarded_program(guards);
        let target = TargetSpec::Call { callee: "act".into() };
        let mut aliases = AliasMap::default();
        aliases.insert("drive", "e", "e");
        for (name, policy) in
            [("pruned", Policy::RelevantOnly), ("unpruned", Policy::RecordAll)]
        {
            g.bench_with_input(
                BenchmarkId::new(name, guards),
                &(p.clone(), policy),
                |b, (p, policy)| {
                    b.iter(|| {
                        let mut interp = Interp::new(p);
                        let mut tr = ConcolicTracer::new(
                            target.clone(),
                            aliases.clone(),
                            policy.clone(),
                        );
                        interp.call("seed", vec![], &mut tr).expect("seed");
                        interp
                            .call(
                                "drive",
                                vec![Value::Int(1), Value::Str("t".into())],
                                &mut tr,
                            )
                            .expect("drive");
                        std::hint::black_box(tr.hits.len())
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_interp, bench_tracer_overhead, bench_pruning_scaling
}
criterion_main!(benches);
