//! Concolic engine benchmarks: interpreter throughput, tracer overhead,
//! and the pruning policy's effect (the quantitative side of experiment
//! E8).

use lisa_bench::harness::{bench, group};

use lisa_analysis::{AliasMap, TargetSpec};
use lisa_concolic::{ConcolicTracer, Policy};
use lisa_lang::{Interp, NullTracer, Program, Value};

fn hot_loop_program() -> Program {
    Program::parse_single(
        "bench",
        "fn spin(n: int) -> int {\n\
             let acc = 0;\n\
             let i = 0;\n\
             while (i < n) {\n\
                 if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; }\n\
                 i = i + 1;\n\
             }\n\
             return acc;\n\
         }",
    )
    .expect("program")
}

fn guarded_program(guards: usize) -> Program {
    let mut src = String::from(
        "struct E { id: int, ok: bool }\n\
         global store: map<int, E>;\n\
         global out: map<str, int>;\n\
         global knobs: map<int, int>;\n\
         fn act(e: E, tag: str) { out.put(tag, e.id); }\n\
         fn drive(eid: int, tag: str) {\n\
             let e: E = store.get(eid);\n\
             if (e == null || e.ok == false) { return; }\n",
    );
    for i in 0..guards {
        src.push_str(&format!(
            "    let k{i} = knobs.get({i});\n    if (k{i} > 10) {{ log(\"hot\"); }}\n"
        ));
    }
    src.push_str(
        "    act(e, tag);\n}\n\
         fn seed() { store.put(1, new E { id: 1, ok: true }); }\n",
    );
    Program::parse_single("bench", &src).expect("program")
}

fn bench_interp() {
    let p = hot_loop_program();
    group("interp/spin_loop");
    for n in [100i64, 1_000, 10_000] {
        bench(&format!("interp/spin_loop/{n}"), || {
            let mut interp = Interp::new(&p);
            interp
                .call("spin", vec![Value::Int(n)], &mut NullTracer)
                .expect("run")
        });
    }
}

fn bench_tracer_overhead() {
    let p = guarded_program(64);
    let target = TargetSpec::Call { callee: "act".into() };
    let mut aliases = AliasMap::default();
    aliases.insert("drive", "e", "e");
    aliases.insert("act", "e", "e");

    group("concolic/policy_overhead");
    bench("concolic/policy_overhead/null_tracer", || {
        let mut interp = Interp::new(&p);
        interp.call("seed", vec![], &mut NullTracer).expect("seed");
        interp
            .call("drive", vec![Value::Int(1), Value::Str("t".into())], &mut NullTracer)
            .expect("drive")
    });
    bench("concolic/policy_overhead/relevant_only", || {
        let mut interp = Interp::new(&p);
        let mut tr = ConcolicTracer::new(target.clone(), aliases.clone(), Policy::RelevantOnly);
        interp.call("seed", vec![], &mut tr).expect("seed");
        interp
            .call("drive", vec![Value::Int(1), Value::Str("t".into())], &mut tr)
            .expect("drive");
        assert_eq!(tr.hits.len(), 1);
    });
    bench("concolic/policy_overhead/record_all", || {
        let mut interp = Interp::new(&p);
        let mut tr = ConcolicTracer::new(target.clone(), aliases.clone(), Policy::RecordAll);
        interp.call("seed", vec![], &mut tr).expect("seed");
        interp
            .call("drive", vec![Value::Int(1), Value::Str("t".into())], &mut tr)
            .expect("drive");
        assert_eq!(tr.hits.len(), 1);
    });
}

fn bench_pruning_scaling() {
    group("concolic/pruning_scaling");
    for guards in [16usize, 64, 256] {
        let p = guarded_program(guards);
        let target = TargetSpec::Call { callee: "act".into() };
        let mut aliases = AliasMap::default();
        aliases.insert("drive", "e", "e");
        for (name, policy) in
            [("pruned", Policy::RelevantOnly), ("unpruned", Policy::RecordAll)]
        {
            bench(&format!("concolic/pruning_scaling/{name}/{guards}"), || {
                let mut interp = Interp::new(&p);
                let mut tr =
                    ConcolicTracer::new(target.clone(), aliases.clone(), policy.clone());
                interp.call("seed", vec![], &mut tr).expect("seed");
                interp
                    .call("drive", vec![Value::Int(1), Value::Str("t".into())], &mut tr)
                    .expect("drive");
                tr.hits.len()
            });
        }
    }
}

fn main() {
    bench_interp();
    bench_tracer_overhead();
    bench_pruning_scaling();
}
