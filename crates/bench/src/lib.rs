//! # lisa-bench
//!
//! Benchmarks for LISA's substrates and pipeline, on a small in-tree
//! timing harness (the build environment is offline, so no criterion).
//! All content lives under `benches/`:
//!
//! - `solver` — SMT costs on rule/path-condition shapes (the Z3 stand-in),
//! - `frontend` — SIR parsing/typechecking + call-graph/tree analysis,
//! - `concolic` — interpreter throughput, tracer overhead, pruning scaling,
//! - `pipeline` — inference, rule checking per selection strategy, and the
//!   parallel CI gate.
//!
//! Run with `cargo bench --workspace`.

pub mod harness;
