//! Minimal wall-clock benchmark harness.
//!
//! Replaces criterion with the 5% of it these benches use: warm the
//! closure up for a fixed window, then time batches until a measurement
//! window elapses, and print mean / min per-iteration times. Run under
//! `cargo bench` (harness = false) so there is no test scaffolding in
//! the way.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Warm-up window before measurement starts.
const WARM_UP: Duration = Duration::from_millis(300);
/// Measurement window.
const MEASURE: Duration = Duration::from_millis(900);

/// Time `f` and print one result line, criterion-style:
/// `name  mean 12.34 µs/iter  (min 11.90 µs, 73 samples)`.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm-up: run untimed, let caches/allocator settle.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < WARM_UP {
        black_box(f());
        warm_iters += 1;
    }
    // Pick a batch size so each sample costs roughly 1/50 of the window.
    let per_iter = WARM_UP.as_nanos() as u64 / warm_iters.max(1);
    let batch = (MEASURE.as_nanos() as u64 / 50 / per_iter.max(1)).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < MEASURE {
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<48} mean {:>12}/iter  (min {}, {} samples x {batch} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        samples.len(),
    );
}

/// Section header, to group related benches in the output.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}
