//! Load generator for the multi-tenant `lisa serve --listen` TCP gate.
//!
//! Two modes:
//!
//! - **Bench (default, no args)**: boots two in-process daemons and
//!   drives them hard — phase A measures throughput and tail latency
//!   with >=1000 concurrent clients across 4 skew-weighted tenants on a
//!   generously provisioned daemon; phase B points ~300 clients at a
//!   deliberately starved daemon (1 worker, tiny queues) and checks
//!   that overload is answered with *structured* sheds, not silence.
//!   Every connection must receive exactly one well-formed reply: the
//!   run aborts on any lost or malformed response. Results land in
//!   `BENCH_serve.json`.
//! - **Smoke (`--addr <host:port>`)**: drives a short burst at an
//!   externally started daemon (used by `scripts/ci.sh`), prints one
//!   summary line plus the daemon's `stats` reply, and optionally sends
//!   a `shutdown` op (`--shutdown`) so the harness can assert a clean
//!   drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use lisa::{serve, Json, ServeConfig, TenantSpec};

/// Tenant roster with a skewed arrival mix: alpha takes 60% of the
/// offered load at weight 4, delta trickles 5% at weight 1.
const TENANTS: [(&str, u32, usize); 4] =
    [("alpha", 4, 60), ("beta", 2, 25), ("gamma", 1, 10), ("delta", 1, 5)];

/// Tiny but real gate fixture: one rule, one test, passes. Keeps each
/// job cheap so the bench measures the service fabric, not the solver.
const SYSTEM: &str = "struct Session { id: int, closing: bool }\n\
     global sessions: map<int, Session>;\n\
     fn create_ephemeral(s: Session, path: str) {}\n\
     fn prep_create(sid: int, path: str) {\n\
         let session: Session = sessions.get(sid);\n\
         if (session == null) { return; }\n\
         create_ephemeral(session, path);\n\
     }\n\
     fn test_create() {\n\
         sessions.put(1, new Session { id: 1 });\n\
         prep_create(1, \"/a\");\n\
     }";

const RULES: &str = "when calling create_ephemeral, require s != null\n";

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("lisa-serve-load-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sys")).expect("mkdir fixture");
        std::fs::write(dir.join("sys/session.sir"), SYSTEM).expect("write system");
        std::fs::write(dir.join("rules.txt"), RULES).expect("write rules");
        Fixture { dir }
    }

    fn system(&self) -> String {
        self.dir.join("sys").to_string_lossy().into_owned()
    }

    fn rules(&self) -> String {
        self.dir.join("rules.txt").to_string_lossy().into_owned()
    }

    fn state_root(&self) -> std::path::PathBuf {
        self.dir.join("state")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// What one connection observed. Exactly one of these per client; a
/// client that cannot produce a `Done`/`Shed` records why.
enum Outcome {
    /// `status:"done"` reply; round-trip latency in microseconds.
    Done(u64),
    /// `status:"shed"` reply carrying a positive `retry_after_ms`
    /// (validated at parse time; a shed without a hint is malformed).
    Shed,
    /// Connect/write/read failed or the connection closed replyless.
    Lost,
    /// A reply arrived but was not valid protocol JSON.
    Malformed,
}

/// Deterministic per-client jitter (no RNG dependency): a Weyl-ish hash
/// of the client index spread over `window_ms`.
fn jitter_ms(idx: usize, window_ms: u64) -> u64 {
    if window_ms == 0 {
        return 0;
    }
    (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) % window_ms
}

fn tenant_of(idx: usize) -> &'static str {
    // A stride coprime with 100 visits every slot, so the 60/25/10/5
    // mix holds (approximately) even for bursts far smaller than 100.
    let slot = (idx * 37) % 100;
    let mut edge = 0;
    for (name, _, share) in TENANTS {
        edge += share;
        if slot < edge {
            return name;
        }
    }
    TENANTS[0].0
}

/// One NDJSON request/reply exchange on a fresh connection.
fn roundtrip(addr: &str, line: &str, read_timeout: Duration) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(read_timeout)).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok()?;
    let mut w = &stream;
    w.write_all(line.as_bytes()).ok()?;
    w.write_all(b"\n").ok()?;
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply).ok()?;
    if reply.is_empty() {
        return None;
    }
    Some(reply)
}

fn gate_request(job_id: &str, tenant: &str, system: &str, rules: &str) -> String {
    format!(
        "{{\"v\":1,\"op\":\"gate\",\"job_id\":\"{}\",\"tenant\":\"{}\",\"system\":\"{}\",\
         \"rules\":\"{}\",\"fail_mode\":\"open\"}}",
        lisa::json::escape(job_id),
        lisa::json::escape(tenant),
        lisa::json::escape(system),
        lisa::json::escape(rules),
    )
}

fn run_client(addr: &str, idx: usize, tag: &str, fx_system: &str, fx_rules: &str) -> Outcome {
    let tenant = tenant_of(idx);
    let line = gate_request(&format!("{tag}-{idx}"), tenant, fx_system, fx_rules);
    let start = Instant::now();
    let Some(reply) = roundtrip(addr, &line, Duration::from_secs(120)) else {
        return Outcome::Lost;
    };
    let elapsed_us = start.elapsed().as_micros() as u64;
    let Ok(json) = Json::parse(reply.trim()) else {
        return Outcome::Malformed;
    };
    match json.str_of("status") {
        Some("done") => Outcome::Done(elapsed_us),
        Some("shed") => match json.u64_of("retry_after_ms") {
            Some(ms) if ms > 0 => Outcome::Shed,
            // A shed without a usable retry hint breaks the admission
            // contract: count it as malformed so the bench fails loudly.
            _ => Outcome::Malformed,
        },
        _ => Outcome::Malformed,
    }
}

struct Tally {
    clients: usize,
    done: usize,
    shed: usize,
    lost: usize,
    malformed: usize,
    elapsed: Duration,
    /// Sorted `done` latencies, microseconds.
    latencies_us: Vec<u64>,
}

impl Tally {
    fn pct(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((q * self.latencies_us.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_us.len());
        self.latencies_us[rank - 1]
    }

    fn throughput_rps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        (self.done + self.shed) as f64 / self.elapsed.as_secs_f64()
    }

    fn json(&self, label: &str) -> String {
        format!(
            "{{\"phase\":\"{label}\",\"clients\":{},\"tenants\":{},\"done\":{},\"shed\":{},\
             \"lost\":{},\"malformed\":{},\"elapsed_ms\":{},\"throughput_rps\":{:.1},\
             \"shed_rate\":{:.4},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            self.clients,
            TENANTS.len(),
            self.done,
            self.shed,
            self.lost,
            self.malformed,
            self.elapsed.as_millis(),
            self.throughput_rps(),
            self.shed as f64 / self.clients.max(1) as f64,
            self.pct(0.50),
            self.pct(0.95),
            self.pct(0.99),
        )
    }
}

/// Fan `clients` threads at `addr`, each sending one gate request after
/// its arrival jitter inside `window_ms`. Blocks until every client has
/// an outcome.
fn drive(addr: &str, clients: usize, window_ms: u64, tag: &str, fx: &Fixture) -> Tally {
    let (tx, rx) = mpsc::channel::<Outcome>();
    let start = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for idx in 0..clients {
        let tx = tx.clone();
        let addr = addr.to_string();
        let tag = tag.to_string();
        let system = fx.system();
        let rules = fx.rules();
        let handle = std::thread::Builder::new()
            .stack_size(128 * 1024)
            .spawn(move || {
                std::thread::sleep(Duration::from_millis(jitter_ms(idx, window_ms)));
                let _ = tx.send(run_client(&addr, idx, &tag, &system, &rules));
            })
            .expect("spawn client thread");
        handles.push(handle);
    }
    drop(tx);
    let mut tally = Tally {
        clients,
        done: 0,
        shed: 0,
        lost: 0,
        malformed: 0,
        elapsed: Duration::ZERO,
        latencies_us: Vec::new(),
    };
    for outcome in rx {
        match outcome {
            Outcome::Done(us) => {
                tally.done += 1;
                tally.latencies_us.push(us);
            }
            Outcome::Shed => tally.shed += 1,
            Outcome::Lost => tally.lost += 1,
            Outcome::Malformed => tally.malformed += 1,
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    tally.elapsed = start.elapsed();
    tally.latencies_us.sort_unstable();
    tally
}

/// Grab a free TCP port by binding :0 and dropping the listener. The
/// tiny bind race is acceptable for a bench on localhost.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe port")
        .local_addr()
        .expect("probe addr")
        .port()
}

struct DaemonHandle {
    addr: String,
    thread: std::thread::JoinHandle<Result<lisa::ServeStats, String>>,
}

impl DaemonHandle {
    /// Boot an in-process daemon on a fresh port and wait for the TCP
    /// gate to answer `ping`.
    fn boot(fx: &Fixture, tag: &str, workers: usize, queue_cap: usize, tenant_cap: usize) -> DaemonHandle {
        let addr = format!("127.0.0.1:{}", free_port());
        let config = ServeConfig {
            socket: fx.dir.join(format!("{tag}.sock")),
            state_root: fx.state_root().join(tag),
            workers,
            queue_cap,
            tenant_cap,
            listen: Some(addr.clone()),
            max_conns: 2048,
            tenants: TENANTS
                .iter()
                .map(|(name, weight, _)| TenantSpec {
                    name: name.to_string(),
                    weight: u64::from(*weight),
                    job_timeout: None,
                })
                .collect(),
            ..ServeConfig::default()
        };
        let thread = std::thread::spawn(move || serve(&config));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(reply) = roundtrip(&addr, "{\"v\":1,\"op\":\"ping\"}", Duration::from_secs(2)) {
                assert!(reply.contains("\"ok\""), "ping reply: {reply}");
                break;
            }
            assert!(Instant::now() < deadline, "daemon on {addr} never became reachable");
            std::thread::sleep(Duration::from_millis(20));
        }
        DaemonHandle { addr, thread }
    }

    fn stats(&self) -> String {
        roundtrip(&self.addr, "{\"v\":1,\"op\":\"stats\"}", Duration::from_secs(5))
            .expect("stats reply")
    }

    fn shutdown(self) -> lisa::ServeStats {
        let reply = roundtrip(&self.addr, "{\"v\":1,\"op\":\"shutdown\"}", Duration::from_secs(5))
            .expect("shutdown reply");
        assert!(reply.contains("draining"), "shutdown reply: {reply}");
        self.thread.join().expect("daemon thread").expect("daemon exit")
    }
}

fn bench() {
    lisa_telemetry::init(lisa_telemetry::TelemetryConfig::MetricsOnly);
    let fx = Fixture::new("bench");

    // Phase A: throughput. Provisioned daemon, >=1000 clients, skewed
    // arrival mix over a 1.5s window. Everything must complete.
    let daemon = DaemonHandle::boot(&fx, "phase-a", 8, 4096, 0);
    let a = drive(&daemon.addr, 1100, 1500, "a", &fx);
    println!("phase A: {}", a.json("throughput"));
    assert!(a.clients >= 1000, "bench must drive >=1000 clients");
    assert_eq!(a.lost, 0, "phase A lost {} replies", a.lost);
    assert_eq!(a.malformed, 0, "phase A saw {} malformed replies", a.malformed);
    assert_eq!(a.done + a.shed, a.clients, "every client gets exactly one reply");
    assert!(a.done > 0, "a provisioned daemon must finish work");
    let stats = daemon.stats();
    let stats_json = Json::parse(stats.trim()).expect("stats parses");
    for (name, ..) in TENANTS {
        assert!(
            stats.contains(&format!("\"{name}\":")),
            "stats must carry per-tenant section for {name}: {stats}"
        );
    }
    assert!(stats.contains("\"p99_us\""), "stats must expose tail latency: {stats}");
    assert!(stats_json.get("tenants").is_some(), "stats must have a tenants object");
    let a_stats = daemon.shutdown();
    assert_eq!(a_stats.dead_letters, 0, "phase A dead-lettered jobs");

    // Phase B: saturation. One worker, starved queues, a fast burst.
    // The daemon must answer overload with structured sheds — every
    // connection still gets exactly one well-formed reply.
    let daemon = DaemonHandle::boot(&fx, "phase-b", 1, 8, 2);
    let b = drive(&daemon.addr, 300, 100, "b", &fx);
    println!("phase B: {}", b.json("saturation"));
    assert_eq!(b.lost, 0, "phase B lost {} replies", b.lost);
    assert_eq!(b.malformed, 0, "phase B saw {} malformed replies", b.malformed);
    assert_eq!(b.done + b.shed, b.clients, "every client gets exactly one reply");
    assert!(b.shed > 0, "a starved daemon must shed structurally, got 0 sheds");
    let _ = daemon.shutdown();

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"throughput\": {},\n  \"saturation\": {}\n}}\n",
        a.json("throughput"),
        b.json("saturation")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}

fn smoke(addr: &str, clients: usize, window_ms: u64, send_shutdown: bool) {
    let fx = Fixture::new("smoke");
    let tally = drive(addr, clients, window_ms, "smoke", &fx);
    println!("smoke: {}", tally.json("smoke"));
    let stats = roundtrip(addr, "{\"v\":1,\"op\":\"stats\"}", Duration::from_secs(5))
        .expect("stats reply");
    println!("stats: {}", stats.trim());
    assert_eq!(tally.lost, 0, "smoke lost {} replies", tally.lost);
    assert_eq!(tally.malformed, 0, "smoke saw {} malformed replies", tally.malformed);
    assert_eq!(tally.done + tally.shed, tally.clients);
    if send_shutdown {
        let reply = roundtrip(addr, "{\"v\":1,\"op\":\"shutdown\"}", Duration::from_secs(5))
            .expect("shutdown reply");
        assert!(reply.contains("draining"), "shutdown reply: {reply}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut clients = 64usize;
    let mut window_ms = 200u64;
    let mut send_shutdown = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = Some(args.get(i + 1).expect("--addr needs a host:port").clone());
                i += 2;
            }
            "--clients" => {
                clients = args.get(i + 1).expect("--clients needs N").parse().expect("N");
                i += 2;
            }
            "--window-ms" => {
                window_ms = args.get(i + 1).expect("--window-ms needs N").parse().expect("N");
                i += 2;
            }
            "--shutdown" => {
                send_shutdown = true;
                i += 1;
            }
            other => panic!("unknown flag {other}; usage: serve_load [--addr host:port [--clients N] [--window-ms N] [--shutdown]]"),
        }
    }
    match addr {
        Some(addr) => smoke(&addr, clients, window_ms, send_shutdown),
        None => bench(),
    }
}
