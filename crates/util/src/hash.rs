//! Content hashing for cache keys and fingerprints.
//!
//! One algorithm for the whole workspace: 64-bit FNV-1a. Fingerprints
//! computed by different layers (function bodies in `lisa-lang`, SMT
//! query keys in `lisa-smt`, journal checksums in `lisa-store`) must
//! stay comparable across processes and releases, so the definition
//! lives here rather than being re-derived per crate.

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Incremental FNV-1a hasher for composite keys: feed parts separated by
/// an explicit delimiter so `("ab","c")` and `("a","bc")` never collide.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a { state: 0xcbf29ce484222325 }
    }
}

impl Fnv1a {
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x100000001b3);
        }
        self
    }

    /// Feed one delimited part (the part's bytes, then a `0x1f` unit
    /// separator that cannot appear in printable cache-key material).
    pub fn part(&mut self, bytes: &[u8]) -> &mut Self {
        self.update(bytes);
        self.update(&[0x1f]);
        self
    }

    pub fn part_u64(&mut self, v: u64) -> &mut Self {
        self.part(&v.to_le_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parts_are_delimited() {
        let mut a = Fnv1a::new();
        a.part(b"ab").part(b"c");
        let mut b = Fnv1a::new();
        b.part(b"a").part(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }
}
