//! # lisa-util
//!
//! Small dependency-free utilities shared across the workspace. The
//! container this repo builds in has no crates.io access, so anything
//! the system needs from the usual ecosystem crates (seeded randomness,
//! retry/backoff) lives here instead.

#![forbid(unsafe_code)]

pub mod hash;
pub mod prng;
pub mod retry;
pub mod sharded;
pub mod stats;

pub use hash::{fnv1a, Fnv1a};
pub use prng::Prng;
pub use retry::{retry_with_backoff, RetryPolicy};
pub use sharded::{lock_counted, LockStats, ShardedMap};
pub use stats::CacheStats;
