//! A seeded, deterministic pseudo-random number generator.
//!
//! SplitMix64 at the core: 64 bits of state, one multiply-xorshift
//! avalanche per draw. Not cryptographic — it exists so noise models,
//! fault plans, and randomized property tests are *reproducible from a
//! seed*, which is the only property the workspace needs.

/// Deterministic PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    pub fn seed_from_u64(seed: u64) -> Prng {
        Prng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0)");
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // < 2^-32 for every bound the workspace uses.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let draw = (self.next_u64() as u128 * span) >> 64;
        (lo as i128 + draw as i128) as i64
    }

    /// Uniform usize in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Uniform f64 in [0, 1).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
            let i = rng.gen_index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn range_hits_both_endpoints() {
        let mut rng = Prng::seed_from_u64(9);
        let draws: Vec<i64> = (0..500).map(|_| rng.gen_range_i64(0, 3)).collect();
        for want in 0..=3 {
            assert!(draws.contains(&want), "endpoint {want} never drawn");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Prng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn bernoulli_rate_is_approximate() {
        let mut rng = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count() as f64;
        assert!((hits / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }
}
