//! The one cache-introspection snapshot every cache tier shares.
//!
//! The gate's caches (analysis, trace, SMT query) each grew their own
//! copy-pasted accessor sprawl — `hits()`, `misses()`, `evictions()`,
//! `lock_acquires()`, … — which meant three slightly different
//! vocabularies for the same questions and three hand-maintained counter
//! lists in the telemetry publisher. [`CacheStats`] collapses that: a
//! cache answers `stats()` once with a plain value, tiers with multiple
//! internal maps [`merge`](CacheStats::merge) their parts, and the
//! publisher iterates [`counters`](CacheStats::counters) uniformly for
//! every tier.

/// A point-in-time snapshot of one cache's counters. Plain data: cheap to
/// copy, compare, and diff against an earlier snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (including single-flight waiters
    /// that shared an in-flight build).
    pub hits: u64,
    /// Lookups that ran the underlying computation.
    pub misses: u64,
    /// Subset of `hits` that waited on another worker's in-flight build
    /// instead of duplicating it.
    pub coalesced: u64,
    /// Entries dropped to make room under a capacity bound.
    pub evictions: u64,
    /// Requests the cache refused to store (e.g. fault-injected builds).
    pub uncacheable: u64,
    /// Shard-lock acquisitions.
    pub lock_acquires: u64,
    /// Shard-lock acquisitions that had to block on another worker.
    pub lock_contended: u64,
    /// Cumulative nanoseconds spent blocked on shard locks.
    pub lock_wait_ns: u64,
    /// Lock stripes backing the cache.
    pub shards: u64,
    /// Live entries at snapshot time.
    pub entries: u64,
}

impl CacheStats {
    /// Combine two snapshots field-wise — how a tier built from several
    /// internal maps reports itself as one cache.
    #[must_use]
    pub fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            coalesced: self.coalesced + other.coalesced,
            evictions: self.evictions + other.evictions,
            uncacheable: self.uncacheable + other.uncacheable,
            lock_acquires: self.lock_acquires + other.lock_acquires,
            lock_contended: self.lock_contended + other.lock_contended,
            lock_wait_ns: self.lock_wait_ns + other.lock_wait_ns,
            shards: self.shards + other.shards,
            entries: self.entries + other.entries,
        }
    }

    /// The snapshot as uniform `(suffix, value)` counter pairs, ready to
    /// be prefixed with a tier name (`cache.<tier>.<suffix>`) and
    /// published. Wait time is reported in microseconds — nanosecond
    /// totals overflow dashboards long before they overflow u64, and
    /// sub-microsecond waits are noise.
    pub fn counters(&self) -> [(&'static str, u64); 8] {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("coalesced", self.coalesced),
            ("evictions", self.evictions),
            ("uncacheable", self.uncacheable),
            ("lock_acquires", self.lock_acquires),
            ("lock_contended", self.lock_contended),
            ("lock_wait_us", self.lock_wait_ns / 1_000),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let a = CacheStats { hits: 1, misses: 2, shards: 4, entries: 3, ..Default::default() };
        let b = CacheStats { hits: 10, lock_wait_ns: 5_000, shards: 1, ..Default::default() };
        let m = a.merge(b);
        assert_eq!(m.hits, 11);
        assert_eq!(m.misses, 2);
        assert_eq!(m.shards, 5);
        assert_eq!(m.entries, 3);
        assert_eq!(m.lock_wait_ns, 5_000);
    }

    #[test]
    fn counters_report_wait_in_micros() {
        let s = CacheStats { lock_wait_ns: 7_900, ..Default::default() };
        let pairs = s.counters();
        assert!(pairs.contains(&("lock_wait_us", 7)));
        assert_eq!(pairs.len(), 8);
    }
}
