//! Lock-striped, single-flight memoization maps.
//!
//! The gate's caches started life as one `Mutex<HashMap>` each. That is
//! correct but serializes every lookup once the enforcement engine fans
//! rule *and* leaf tasks across workers: N threads all hashing into one
//! lock turn the cache from an accelerator into a convoy. [`ShardedMap`]
//! stripes the map across independently locked shards (keyed by the
//! entry hash), so concurrent lookups of different keys proceed in
//! parallel.
//!
//! Two properties the callers rely on:
//!
//! - **Single-flight builds.** When two workers miss the same key at the
//!   same time, exactly one runs the builder; the other waits and gets
//!   the same `Arc` (and counts a hit — it paid a wait, not a build).
//!   Without this, parallel rules sharing a target would duplicate the
//!   most expensive work in the system and make hit counters racy.
//! - **Contention observability.** Every shard lock acquisition is
//!   counted, and blocked acquisitions record their wait time, so
//!   `cache.*` telemetry can report time lost to cache serialization.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::time::Instant;

/// Counters for one family of mutexes: total acquisitions, how many had
/// to block, and the cumulative nanoseconds spent blocked.
#[derive(Debug, Default)]
pub struct LockStats {
    acquires: AtomicU64,
    contended: AtomicU64,
    wait_ns: AtomicU64,
}

impl LockStats {
    pub fn new() -> LockStats {
        LockStats::default()
    }

    pub fn acquires(&self) -> u64 {
        self.acquires.load(Ordering::Relaxed)
    }

    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    pub fn wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// Fold another family's counters into a combined view.
    pub fn add_from(&self, other: &LockStats) {
        self.acquires.fetch_add(other.acquires(), Ordering::Relaxed);
        self.contended.fetch_add(other.contended(), Ordering::Relaxed);
        self.wait_ns.fetch_add(other.wait_ns(), Ordering::Relaxed);
    }
}

/// Lock `m`, recording the acquisition in `stats`. The fast path is one
/// `try_lock`; only a blocked acquisition pays for a clock read.
pub fn lock_counted<'a, T>(m: &'a Mutex<T>, stats: &LockStats) -> MutexGuard<'a, T> {
    stats.acquires.fetch_add(1, Ordering::Relaxed);
    match m.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(TryLockError::WouldBlock) => {
            stats.contended.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let guard = m.lock().unwrap_or_else(|p| p.into_inner());
            stats.wait_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            guard
        }
    }
}

/// State of one in-flight build, shared between the builder and any
/// coalesced waiters.
#[derive(Debug)]
enum BuildState<V> {
    Pending,
    Done(Arc<V>),
    /// The builder panicked (or its entry was evicted mid-build): waiters
    /// retry from scratch instead of hanging forever.
    Abandoned,
}

#[derive(Debug)]
struct InFlight<V> {
    state: Mutex<BuildState<V>>,
    cv: Condvar,
}

#[derive(Debug)]
enum Slot<V> {
    Ready(Arc<V>),
    Building(Arc<InFlight<V>>),
}

type Shard<K, V> = Mutex<HashMap<K, Slot<V>>>;

/// A lock-striped, single-flight `HashMap<K, Arc<V>>`.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[Shard<K, V>]>,
    locks: LockStats,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> ShardedMap<K, V> {
    /// A map striped across `shards` locks (clamped to at least 1).
    pub fn new(shards: usize) -> ShardedMap<K, V> {
        let shards = shards.max(1);
        ShardedMap {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            locks: LockStats::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Slot<V>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The value for `key`, building it with `build` on first use. At
    /// most one builder runs per key at a time; concurrent requesters of
    /// a key being built wait for it (counted as hits — they share the
    /// build instead of duplicating it). The builder runs outside every
    /// shard lock, and a panicking builder wakes its waiters to retry
    /// rather than stranding them.
    pub fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        loop {
            let inflight = {
                let mut shard = lock_counted(self.shard(&key), &self.locks);
                match shard.get(&key) {
                    Some(Slot::Ready(v)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(v);
                    }
                    Some(Slot::Building(b)) => Arc::clone(b),
                    None => {
                        let b = Arc::new(InFlight {
                            state: Mutex::new(BuildState::Pending),
                            cv: Condvar::new(),
                        });
                        shard.insert(key.clone(), Slot::Building(Arc::clone(&b)));
                        drop(shard);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let guard = AbandonOnUnwind { map: self, key: &key, inflight: &b };
                        let value = Arc::new(build());
                        guard.complete(Arc::clone(&value));
                        return value;
                    }
                }
            };
            // Another worker is already building this key: wait for it.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut state = inflight.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                match &*state {
                    BuildState::Done(v) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(v);
                    }
                    BuildState::Abandoned => break,
                    BuildState::Pending => {
                        state = inflight
                            .cv
                            .wait(state)
                            .unwrap_or_else(|p| p.into_inner());
                    }
                }
            }
            // Builder died: retry the whole lookup (possibly becoming the
            // builder ourselves).
        }
    }

    /// Keep only entries whose key satisfies `f`. In-flight builds are
    /// left alone; a build whose entry was removed still completes for
    /// its requesters but is not re-inserted.
    pub fn retain(&self, mut f: impl FnMut(&K) -> bool) {
        for shard in self.shards.iter() {
            let mut shard = lock_counted(shard, &self.locks);
            shard.retain(|k, slot| matches!(slot, Slot::Building(_)) || f(k));
        }
    }

    /// Live entries across all shards (ready + in-flight).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_counted(s, &self.locks).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that waited for another worker's in-flight build instead
    /// of duplicating it (a subset of `hits`).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    pub fn lock_stats(&self) -> &LockStats {
        &self.locks
    }

    /// The map's counters as one uniform [`CacheStats`] snapshot. Note
    /// `entries` takes every shard lock, so this is an introspection
    /// call, not a hot-path one.
    pub fn stats(&self) -> crate::CacheStats {
        crate::CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            coalesced: self.coalesced(),
            lock_acquires: self.locks.acquires(),
            lock_contended: self.locks.contended(),
            lock_wait_ns: self.locks.wait_ns(),
            shards: self.shards.len() as u64,
            entries: self.len() as u64,
            ..Default::default()
        }
    }
}

/// Resolves an in-flight build on the way out: `complete` publishes the
/// value; dropping without completing (builder panicked) marks the build
/// abandoned and removes its placeholder so waiters retry.
struct AbandonOnUnwind<'a, K: Hash + Eq + Clone, V> {
    map: &'a ShardedMap<K, V>,
    key: &'a K,
    inflight: &'a Arc<InFlight<V>>,
}

impl<K: Hash + Eq + Clone, V> AbandonOnUnwind<'_, K, V> {
    fn complete(self, value: Arc<V>) {
        {
            let mut state =
                self.inflight.state.lock().unwrap_or_else(|p| p.into_inner());
            *state = BuildState::Done(Arc::clone(&value));
            self.inflight.cv.notify_all();
        }
        let mut shard = lock_counted(self.map.shard(self.key), &self.map.locks);
        // Only replace our own placeholder: a concurrent `retain` may
        // have dropped it, in which case the value stays uncached.
        if let Some(slot) = shard.get_mut(self.key) {
            if matches!(slot, Slot::Building(b) if Arc::ptr_eq(b, self.inflight)) {
                *slot = Slot::Ready(value);
            }
        }
        std::mem::forget(self);
    }
}

impl<K: Hash + Eq + Clone, V> Drop for AbandonOnUnwind<'_, K, V> {
    fn drop(&mut self) {
        {
            let mut state =
                self.inflight.state.lock().unwrap_or_else(|p| p.into_inner());
            *state = BuildState::Abandoned;
            self.inflight.cv.notify_all();
        }
        let mut shard = lock_counted(self.map.shard(self.key), &self.map.locks);
        if let Some(slot) = shard.get(self.key) {
            if matches!(slot, Slot::Building(b) if Arc::ptr_eq(b, self.inflight)) {
                shard.remove(self.key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn builds_once_then_hits() {
        let map: ShardedMap<u64, String> = ShardedMap::new(8);
        let builds = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = map.get_or_build(7, || {
                builds.fetch_add(1, Ordering::Relaxed);
                "value".to_string()
            });
            assert_eq!(*v, "value");
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!((map.hits(), map.misses()), (2, 1));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn concurrent_same_key_single_flights() {
        let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(8));
        let builds = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let map = Arc::clone(&map);
                let builds = Arc::clone(&builds);
                scope.spawn(move || {
                    let v = map.get_or_build(1, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        // Give siblings time to coalesce on the build.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        42
                    });
                    assert_eq!(*v, 42);
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        assert_eq!(map.misses(), 1);
        assert_eq!(map.hits(), 7);
    }

    #[test]
    fn panicking_builder_does_not_strand_waiters() {
        let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(1));
        let first = {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    map.get_or_build(1, || panic!("injected"));
                }));
            })
        };
        first.join().expect("panic was caught");
        // The failed build left no entry; a retry builds cleanly.
        let v = map.get_or_build(1, || 9);
        assert_eq!(*v, 9);
    }

    #[test]
    fn retain_drops_unmatched_keys() {
        let map: ShardedMap<u64, u64> = ShardedMap::new(4);
        for k in 0..10 {
            map.get_or_build(k, || k);
        }
        map.retain(|k| *k % 2 == 0);
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn lock_stats_count_acquisitions() {
        let map: ShardedMap<u64, u64> = ShardedMap::new(2);
        map.get_or_build(1, || 1);
        assert!(map.lock_stats().acquires() >= 1);
        assert_eq!(map.lock_stats().contended(), 0, "uncontended single thread");
    }
}
