//! Bounded retry with exponential backoff.
//!
//! The enforcement gate treats some injected/observed faults as
//! *transient* (paper framing: a tool-stage failure is a recoverable
//! outcome, not a fatal one). This helper centralizes the retry loop so
//! the policy — attempt cap, backoff growth, sleep ceiling — is uniform
//! and testable.

use std::time::Duration;

/// Retry policy: how many attempts, and how the pause between them grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retry).
    pub max_attempts: u32,
    /// Pause before the first retry.
    pub initial_backoff: Duration,
    /// Ceiling on any single pause.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The pause before retry number `retry` (1-based), doubling each
    /// time and capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << (retry.saturating_sub(1)).min(16);
        self.initial_backoff.saturating_mul(factor).min(self.max_backoff)
    }
}

/// Run `op` until it succeeds or attempts are exhausted; returns the last
/// error alongside the number of retries performed. `should_retry`
/// decides per-error whether another attempt is worthwhile (transient
/// faults yes, deterministic failures no).
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> Result<T, E>,
    mut should_retry: impl FnMut(&E) -> bool,
) -> (Result<T, E>, u32) {
    let mut retries = 0;
    loop {
        match op(retries) {
            Ok(v) => return (Ok(v), retries),
            Err(e) => {
                if retries + 1 >= policy.max_attempts.max(1) || !should_retry(&e) {
                    return (Err(e), retries);
                }
                retries += 1;
                std::thread::sleep(policy.backoff(retries));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_first_try_no_retries() {
        let (r, retries) =
            retry_with_backoff(&RetryPolicy::default(), |_| Ok::<_, ()>(7), |_| true);
        assert_eq!(r, Ok(7));
        assert_eq!(retries, 0);
    }

    #[test]
    fn transient_error_retried_until_success() {
        let policy = RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        let (r, retries) =
            retry_with_backoff(&policy, |attempt| if attempt < 2 { Err("flaky") } else { Ok(()) }, |_| true);
        assert_eq!(r, Ok(()));
        assert_eq!(retries, 2);
    }

    #[test]
    fn permanent_error_not_retried() {
        let mut calls = 0;
        let (r, retries) = retry_with_backoff(
            &RetryPolicy::default(),
            |_| -> Result<(), &str> {
                calls += 1;
                Err("permanent")
            },
            |_| false,
        );
        assert!(r.is_err());
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn attempts_are_bounded() {
        let policy = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        };
        let mut calls = 0;
        let (r, retries) = retry_with_backoff(
            &policy,
            |_| -> Result<(), &str> {
                calls += 1;
                Err("always")
            },
            |_| true,
        );
        assert!(r.is_err());
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35));
        assert_eq!(p.backoff(9), Duration::from_millis(35));
    }
}
