//! Named counters and log-bucketed latency histograms.
//!
//! Keys are plain strings so that persisted snapshots (e.g. the serve
//! daemon's journaled metrics) can be restored without interning. The hot
//! path (`counter_add` on an existing key) takes one lock and does no
//! allocation.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
/// Bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`; bucket 64 covers
/// `[2^63, u64::MAX]`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Representative value for a bucket (its midpoint), used for percentile
/// estimation. Bucket 0 is exactly 0.
pub fn bucket_midpoint(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let lo = 1u64 << (i - 1);
    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
    lo + (hi - lo) / 2
}

/// A log2-bucketed histogram. Values land in 65 buckets (zero + one per
/// power of two), giving ≤ 2x relative error on percentile estimates at
/// constant memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: vec![0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Estimated q-quantile (`0.0 ..= 1.0`) from bucket midpoints. Returns
    /// 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_midpoint(i);
            }
        }
        bucket_midpoint(HISTOGRAM_BUCKETS - 1)
    }

    /// The (p50, p95, p99) summary most latency consumers report — one
    /// snapshot walk instead of three independent percentile calls.
    pub fn summary(&self) -> (u64, u64, u64) {
        (self.percentile(0.50), self.percentile(0.95), self.percentile(0.99))
    }

    /// Merge another histogram into this one (used when restoring persisted
    /// snapshots).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

fn counters() -> &'static Mutex<BTreeMap<String, u64>> {
    static COUNTERS: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn histograms() -> &'static Mutex<BTreeMap<String, Histogram>> {
    static HISTOGRAMS: OnceLock<Mutex<BTreeMap<String, Histogram>>> = OnceLock::new();
    HISTOGRAMS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Add `delta` to the named counter. No-op unless metrics are enabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut map = counters().lock().unwrap_or_else(|e| e.into_inner());
    match map.get_mut(name) {
        Some(v) => *v = v.saturating_add(delta),
        None => {
            map.insert(name.to_string(), delta);
        }
    }
}

/// Current value of a counter (0 if never written).
pub fn counter_value(name: &str) -> u64 {
    counters()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Record one observation into the named histogram. No-op unless metrics
/// are enabled.
pub fn histogram_record(name: &str, value: u64) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut map = histograms().lock().unwrap_or_else(|e| e.into_inner());
    match map.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = Histogram::new();
            h.record(value);
            map.insert(name.to_string(), h);
        }
    }
}

/// Merge a previously persisted histogram into the named histogram. Used
/// when a daemon restores a journaled metrics snapshot on startup; the
/// restored buckets accumulate under everything recorded since. No-op
/// unless metrics are enabled.
pub fn histogram_merge(name: &str, restored: &Histogram) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut map = histograms().lock().unwrap_or_else(|e| e.into_inner());
    match map.get_mut(name) {
        Some(h) => h.merge(restored),
        None => {
            map.insert(name.to_string(), restored.clone());
        }
    }
}

/// Copy of all counters, sorted by name.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    counters().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Copy of all histograms, sorted by name.
pub fn histograms_snapshot() -> BTreeMap<String, Histogram> {
    histograms().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

pub(crate) fn reset() {
    counters().lock().unwrap_or_else(|e| e.into_inner()).clear();
    histograms().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        // Every power-of-two boundary: 2^k opens bucket k+1, 2^k - 1 closes
        // bucket k.
        for k in 1..64usize {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert_eq!(bucket_index(v - 1), k, "2^{k} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_midpoints_are_in_range() {
        assert_eq!(bucket_midpoint(0), 0);
        assert_eq!(bucket_midpoint(1), 1);
        for i in 1..HISTOGRAM_BUCKETS {
            let mid = bucket_midpoint(i);
            assert_eq!(bucket_index(mid), i, "midpoint of bucket {i} must land in it");
        }
    }

    #[test]
    fn histogram_extremes_do_not_panic_or_wrap() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[64], 2);
        assert_eq!(h.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.percentile(0.0), 0);
        assert!(h.percentile(0.99) >= 1u64 << 63);
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p95, p99) = h.summary();
        // Log buckets bound relative error by 2x.
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        assert!((500..=2000).contains(&p95), "p95 = {p95}");
        assert!((500..=2000).contains(&p99), "p99 = {p99}");
        assert!(p95 >= p50);
        assert!(p99 >= p95, "the tail ordering must hold");
        assert_eq!(Histogram::new().percentile(0.5), 0, "empty histogram");
        assert_eq!(Histogram::new().summary(), (0, 0, 0));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(1);
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1026);
        assert_eq!(a.buckets[bucket_index(1)], 2);
        assert_eq!(a.buckets[bucket_index(1024)], 1);
    }

    #[test]
    fn counters_accumulate_and_saturate() {
        let _guard = crate::test_lock();
        crate::init(crate::TelemetryConfig::MetricsOnly);
        crate::reset();
        counter_add("t.counter", 3);
        counter_add("t.counter", 4);
        assert_eq!(counter_value("t.counter"), 7);
        counter_add("t.counter", u64::MAX);
        assert_eq!(counter_value("t.counter"), u64::MAX);
        histogram_record("t.hist", 100);
        histogram_record("t.hist", 200);
        let snap = histograms_snapshot();
        assert_eq!(snap["t.hist"].count, 2);
        assert_eq!(snap["t.hist"].sum, 300);
        crate::init(crate::TelemetryConfig::Off);
    }
}
