//! # lisa-telemetry
//!
//! Structured observability for the LISA enforcement pipeline: hierarchical
//! spans (thread-local span stack, monotonic ids, wall time plus derived
//! self-time), structured events, named counters, and log-bucketed latency
//! histograms. Exporters produce an NDJSON event stream, a Chrome
//! trace-event JSON file loadable in Perfetto (`ui.perfetto.dev`), and a
//! metrics snapshot JSON.
//!
//! ## Design constraints
//!
//! - **Std-only.** No external crates; the registry is a sharded
//!   `Mutex<Vec<..>>` keyed by thread, which keeps cross-thread contention
//!   near zero without unsafe code.
//! - **Near-zero cost when off.** [`TelemetryConfig::Off`] is the default;
//!   every entry point first checks a relaxed [`AtomicBool`] and returns
//!   before touching thread-local state or allocating.
//! - **Deterministic-safe.** Telemetry is a write-only side channel: nothing
//!   in this crate feeds back into verdict computation, so artifacts such as
//!   `DurableGateReport::verdicts_text()` stay byte-identical whether
//!   telemetry is on or off. Timestamps appear only in telemetry output
//!   files, never in verdict artifacts.
//! - **Unwind-safe spans.** A [`SpanGuard`] pops the thread-local stack by
//!   truncating at its *own* id rather than popping one frame, so a panic
//!   caught by `catch_unwind` in a child frame cannot leave the stack
//!   unbalanced (DESIGN.md §11).
//!
//! ```
//! use lisa_telemetry as tel;
//! tel::init(tel::TelemetryConfig::Full);
//! {
//!     let mut outer = tel::span("pipeline.rule");
//!     outer.arg("tests", 3);
//!     let _inner = tel::span("smt.check");
//!     tel::counter_add("smt.queries", 1);
//!     tel::histogram_record("smt.query_us", 1500);
//! }
//! let trace = tel::chrome_trace_json();
//! assert!(trace.contains("\"smt.check\""));
//! ```

#![forbid(unsafe_code)]

mod export;
mod metrics;
mod span;

pub use export::{chrome_trace_json, metrics_json, ndjson};
pub use metrics::{
    bucket_index, bucket_midpoint, counter_add, counter_value, counters_snapshot,
    histogram_merge, histogram_record, histograms_snapshot, Histogram, HISTOGRAM_BUCKETS,
};
pub use span::{event, span, span_with, stack_depth, EventRecord, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};

/// How much telemetry to collect. The default is [`TelemetryConfig::Off`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryConfig {
    /// Collect nothing; every entry point is a relaxed atomic load + branch.
    Off,
    /// Counters and histograms only — no spans, no events. Suitable for
    /// long-running daemons where an unbounded span registry would leak.
    MetricsOnly,
    /// Spans, events, counters, and histograms.
    Full,
}

static METRICS_ON: AtomicBool = AtomicBool::new(false);
static SPANS_ON: AtomicBool = AtomicBool::new(false);
static VERBOSE: AtomicBool = AtomicBool::new(false);

/// Set the global collection level. May be called repeatedly (e.g. by a
/// bench harness toggling collection between phases); already-collected
/// data is kept until [`reset`].
pub fn init(config: TelemetryConfig) {
    let (metrics, spans) = match config {
        TelemetryConfig::Off => (false, false),
        TelemetryConfig::MetricsOnly => (true, false),
        TelemetryConfig::Full => (true, true),
    };
    span::ensure_epoch();
    METRICS_ON.store(metrics, Ordering::Relaxed);
    SPANS_ON.store(spans, Ordering::Relaxed);
}

/// The current global collection level.
pub fn config() -> TelemetryConfig {
    match (metrics_enabled(), spans_enabled()) {
        (_, true) => TelemetryConfig::Full,
        (true, false) => TelemetryConfig::MetricsOnly,
        (false, false) => TelemetryConfig::Off,
    }
}

/// True when counters and histograms are being collected.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// True when spans and events are being collected.
#[inline]
pub fn spans_enabled() -> bool {
    SPANS_ON.load(Ordering::Relaxed)
}

/// Toggle human-readable diagnostics on stderr (the `--verbose` flag).
pub fn set_verbose(on: bool) {
    VERBOSE.store(on, Ordering::Relaxed);
}

/// True when [`note`] should print to stderr.
#[inline]
pub fn verbose() -> bool {
    VERBOSE.load(Ordering::Relaxed)
}

/// A diagnostic note: printed to stderr under `--verbose`, recorded as a
/// structured event when spans are on, and free otherwise. The message is
/// built lazily so the disabled path never formats.
pub fn note<F: FnOnce() -> String>(category: &'static str, msg: F) {
    let print = verbose();
    let record = spans_enabled();
    if !print && !record {
        return;
    }
    let text = msg();
    if print {
        eprintln!("[lisa] {category}: {text}");
    }
    if record {
        span::event(category, text);
    }
}

/// Clear all collected spans, events, counters, and histograms. The
/// collection level is unchanged.
pub fn reset() {
    span::reset();
    metrics::reset();
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // Config and registries are process-global; tests that flip them must
    // serialize. Poisoning is irrelevant for a unit guard.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_is_a_noop() {
        let _guard = test_lock();
        init(TelemetryConfig::Off);
        reset();
        {
            let mut s = span("should.not.exist");
            s.arg("x", 1);
            counter_add("c", 5);
            histogram_record("h", 10);
            event("e", "ignored");
        }
        assert_eq!(stack_depth(), 0);
        assert!(counters_snapshot().is_empty());
        assert!(histograms_snapshot().is_empty());
        assert!(!chrome_trace_json().contains("should.not.exist"));
    }

    #[test]
    fn metrics_only_skips_spans() {
        let _guard = test_lock();
        init(TelemetryConfig::MetricsOnly);
        reset();
        {
            let _s = span("no.span");
            counter_add("only.counter", 2);
        }
        assert_eq!(counter_value("only.counter"), 2);
        assert!(!ndjson().contains("no.span"));
        init(TelemetryConfig::Off);
    }

    #[test]
    fn config_round_trips() {
        let _guard = test_lock();
        for c in [TelemetryConfig::Full, TelemetryConfig::MetricsOnly, TelemetryConfig::Off] {
            init(c);
            assert_eq!(config(), c);
        }
    }
}
