//! Exporters: Chrome trace-event JSON (Perfetto-loadable), NDJSON event
//! stream, and a metrics snapshot JSON.
//!
//! All output is hand-serialized (the workspace is std-only); strings go
//! through a conservative escaper and every number is an integer, so the
//! output parses under strict JSON readers including `core::json`.

use crate::metrics::{counters_snapshot, histograms_snapshot};
use crate::span::{self, SpanRecord};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn span_args_json(s: &SpanRecord, self_us: u64) -> String {
    let mut args = String::new();
    let _ = write!(args, "{{\"id\":{},\"parent\":{},\"self_us\":{}", s.id, s.parent, self_us);
    if !s.detail.is_empty() {
        let _ = write!(args, ",\"detail\":\"{}\"", escape(&s.detail));
    }
    for (k, v) in &s.args {
        let _ = write!(args, ",\"{}\":{}", escape(k), v);
    }
    args.push('}');
    args
}

/// A Chrome trace-event file: `{"traceEvents":[...]}` with complete (`"X"`)
/// events for spans and instant (`"i"`) events for point events. Load it at
/// `ui.perfetto.dev` or `chrome://tracing`.
pub fn chrome_trace_json() -> String {
    let (spans, events) = span::snapshot();
    let selfs = span::self_times(&spans);
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for s in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        let self_us = selfs.get(&s.id).copied().unwrap_or(s.dur_us);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"lisa\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{}}}",
            escape(s.name),
            s.tid,
            s.start_us,
            s.dur_us,
            span_args_json(s, self_us),
        );
    }
    for e in &events {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"lisa\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"parent\":{},\"detail\":\"{}\"}}}}",
            escape(e.name),
            e.tid,
            e.ts_us,
            e.parent,
            escape(&e.detail),
        );
    }
    out.push_str("]}");
    out
}

/// One JSON object per line: every span (`"type":"span"`) and event
/// (`"type":"event"`) in start-time order.
pub fn ndjson() -> String {
    let (spans, events) = span::snapshot();
    let selfs = span::self_times(&spans);
    let mut out = String::new();
    for s in &spans {
        let self_us = selfs.get(&s.id).copied().unwrap_or(s.dur_us);
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":\"{}\",\"tid\":{},\"ts_us\":{},\"dur_us\":{},\"args\":{}}}",
            escape(s.name),
            s.tid,
            s.start_us,
            s.dur_us,
            span_args_json(s, self_us),
        );
    }
    for e in &events {
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",\"name\":\"{}\",\"tid\":{},\"ts_us\":{},\"parent\":{},\"detail\":\"{}\"}}",
            escape(e.name),
            e.tid,
            e.ts_us,
            e.parent,
            escape(&e.detail),
        );
    }
    out
}

fn histogram_json(h: &crate::Histogram) -> String {
    let mut buckets = String::from("[");
    // Emit up to the last nonempty bucket to keep snapshots compact while
    // staying restorable (missing tail buckets are zero).
    let last = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
    for (i, &n) in h.buckets[..last].iter().enumerate() {
        if i > 0 {
            buckets.push(',');
        }
        let _ = write!(buckets, "{n}");
    }
    buckets.push(']');
    format!(
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"buckets\":{}}}",
        h.count,
        h.sum,
        h.percentile(0.50),
        h.percentile(0.95),
        buckets,
    )
}

/// Snapshot of all counters and histograms:
/// `{"counters":{..},"histograms":{name:{count,sum,p50,p95,buckets}}}`.
pub fn metrics_json() -> String {
    let counters = counters_snapshot();
    let histograms = histograms_snapshot();
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (k, v) in &counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", escape(k), v);
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (k, h) in &histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", escape(k), histogram_json(h));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn exporters_round_trip_collected_data() {
        let _guard = crate::test_lock();
        crate::init(TelemetryConfig::Full);
        crate::reset();
        {
            let mut s = crate::span_with("export.root", "det\"ail");
            s.arg("n", 42);
            crate::event("export.evt", "note");
        }
        crate::counter_add("export.counter", 7);
        crate::histogram_record("export.hist", 1000);

        let trace = chrome_trace_json();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"export.root\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("det\\\"ail"));
        assert!(trace.contains("\"n\":42"));

        let nd = ndjson();
        assert!(nd.lines().count() >= 2);
        assert!(nd.contains("\"type\":\"span\""));
        assert!(nd.contains("\"type\":\"event\""));

        let metrics = metrics_json();
        assert!(metrics.contains("\"export.counter\":7"));
        assert!(metrics.contains("\"export.hist\""));
        assert!(metrics.contains("\"count\":1"));
        crate::init(TelemetryConfig::Off);
    }

    #[test]
    fn empty_registry_exports_valid_shells() {
        let _guard = crate::test_lock();
        crate::init(TelemetryConfig::Off);
        crate::reset();
        assert_eq!(chrome_trace_json(), "{\"traceEvents\":[]}");
        assert_eq!(ndjson(), "");
        assert_eq!(metrics_json(), "{\"counters\":{},\"histograms\":{}}");
    }
}
