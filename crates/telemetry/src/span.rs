//! Hierarchical spans and structured events.
//!
//! Each thread owns a span *stack* (thread-local `Vec` of span ids); a new
//! span's parent is whatever is on top when it starts. Finished spans land
//! in a sharded registry — one `Mutex<Vec<..>>` per shard, sharded by
//! thread id — so concurrent workers almost never contend.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const SHARDS: usize = 8;

/// A completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Monotonic id, unique across threads. Never 0.
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Taxonomy name, e.g. `"smt.check"` (DESIGN.md §11).
    pub name: &'static str,
    /// Free-form qualifier (rule id, file name, ...). May be empty.
    pub detail: String,
    /// Small dense thread id (first span on a thread allocates it).
    pub tid: u64,
    /// Start, microseconds since the telemetry epoch ([`crate::init`]).
    pub start_us: u64,
    /// Wall duration in microseconds.
    pub dur_us: u64,
    /// Numeric attributes attached via [`SpanGuard::arg`].
    pub args: Vec<(&'static str, u64)>,
}

/// A point-in-time structured event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    pub name: &'static str,
    pub detail: String,
    pub tid: u64,
    /// Microseconds since the telemetry epoch.
    pub ts_us: u64,
    /// Enclosing span id at emission time, or 0.
    pub parent: u64,
}

struct Registry {
    spans: [Mutex<Vec<SpanRecord>>; SHARDS],
    events: [Mutex<Vec<EventRecord>>; SHARDS],
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        spans: std::array::from_fn(|_| Mutex::new(Vec::new())),
        events: std::array::from_fn(|_| Mutex::new(Vec::new())),
    })
}

pub(crate) fn ensure_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

fn micros_since_epoch(now: Instant) -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    now.saturating_duration_since(epoch).as_micros() as u64
}

fn tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    detail: String,
    tid: u64,
    start: Instant,
    start_us: u64,
    args: Vec<(&'static str, u64)>,
}

/// RAII guard for an open span; the span is recorded when the guard drops.
///
/// When spans are disabled this is an empty shell: construction touches no
/// thread-local state and allocates nothing.
pub struct SpanGuard(Option<ActiveSpan>);

/// Open a span named `name` under the current thread's innermost span.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, String::new())
}

/// Open a span with a free-form detail string (rule id, path, ...).
pub fn span_with(name: &'static str, detail: impl Into<String>) -> SpanGuard {
    if !crate::spans_enabled() {
        return SpanGuard(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let tid = tid();
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    let start = Instant::now();
    SpanGuard(Some(ActiveSpan {
        id,
        parent,
        name,
        detail: detail.into(),
        tid,
        start,
        start_us: micros_since_epoch(start),
        args: Vec::new(),
    }))
}

impl SpanGuard {
    /// Attach a numeric attribute; exported under `args` in both formats.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if let Some(s) = &mut self.0 {
            s.args.push((key, value));
        }
    }

    /// Replace the detail string (useful when it is only known at the end).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if let Some(s) = &mut self.0 {
            s.detail = detail.into();
        }
    }

    /// This span's id, or 0 when spans are disabled.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.0.take() else { return };
        // Unbalance-proof pop: truncate at our own id instead of popping one
        // frame. If a child frame leaked (e.g. its guard was forgotten, or
        // drop order was disturbed by unwinding), this still restores the
        // stack to the state before this span opened.
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == s.id) {
                stack.truncate(pos);
            }
        });
        let record = SpanRecord {
            id: s.id,
            parent: s.parent,
            name: s.name,
            detail: s.detail,
            tid: s.tid,
            start_us: s.start_us,
            dur_us: s.start.elapsed().as_micros() as u64,
            args: s.args,
        };
        let shard = (s.tid as usize) % SHARDS;
        registry().spans[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }
}

/// Record a point-in-time event under the current innermost span.
pub fn event(name: &'static str, detail: impl Into<String>) {
    if !crate::spans_enabled() {
        return;
    }
    let tid = tid();
    let parent = STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let record = EventRecord {
        name,
        detail: detail.into(),
        tid,
        ts_us: micros_since_epoch(Instant::now()),
        parent,
    };
    registry().events[(tid as usize) % SHARDS]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(record);
}

/// Depth of the calling thread's span stack (open spans). Exposed so tests
/// can assert stack balance across panic isolation boundaries.
pub fn stack_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// Snapshot all finished spans and events, ordered by start time then id.
pub(crate) fn snapshot() -> (Vec<SpanRecord>, Vec<EventRecord>) {
    let reg = registry();
    let mut spans = Vec::new();
    let mut events = Vec::new();
    for shard in &reg.spans {
        spans.extend(shard.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned());
    }
    for shard in &reg.events {
        events.extend(shard.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned());
    }
    spans.sort_by_key(|s| (s.start_us, s.id));
    events.sort_by_key(|e| (e.ts_us, e.tid));
    (spans, events)
}

/// Wall-minus-children time per span id: the "CPU-ish" cost attributable to
/// the span itself rather than its children.
pub(crate) fn self_times(spans: &[SpanRecord]) -> BTreeMap<u64, u64> {
    let mut children: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if s.parent != 0 {
            *children.entry(s.parent).or_insert(0) += s.dur_us;
        }
    }
    spans
        .iter()
        .map(|s| (s.id, s.dur_us.saturating_sub(children.get(&s.id).copied().unwrap_or(0))))
        .collect()
}

pub(crate) fn reset() {
    let reg = registry();
    for shard in &reg.spans {
        shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
    for shard in &reg.events {
        shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    #[test]
    fn spans_nest_and_link_parents() {
        let _guard = crate::test_lock();
        crate::init(TelemetryConfig::Full);
        crate::reset();
        let outer_id;
        {
            let outer = span_with("outer", "o");
            outer_id = outer.id();
            assert_eq!(stack_depth(), 1);
            {
                let inner = span("inner");
                assert_eq!(stack_depth(), 2);
                assert_ne!(inner.id(), outer_id);
            }
            assert_eq!(stack_depth(), 1);
        }
        assert_eq!(stack_depth(), 0);
        let (spans, _) = snapshot();
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer recorded");
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner recorded");
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.id, outer_id);
        assert!(outer.dur_us >= inner.dur_us);
        crate::init(TelemetryConfig::Off);
    }

    #[test]
    fn stack_survives_catch_unwind_panic() {
        let _guard = crate::test_lock();
        crate::init(TelemetryConfig::Full);
        crate::reset();
        let _outer = span("panic.outer");
        assert_eq!(stack_depth(), 1);
        let result = std::panic::catch_unwind(|| {
            let _inner = span("panic.inner");
            let _deeper = span("panic.deeper");
            panic!("boom");
        });
        assert!(result.is_err());
        // Unwinding dropped inner+deeper; the outer frame must be intact.
        assert_eq!(stack_depth(), 1, "panic must not corrupt the span stack");
        // A fresh span still nests correctly under the survivor.
        let outer_id = _outer.id();
        {
            let after = span("panic.after");
            assert_eq!(stack_depth(), 2);
            drop(after);
        }
        let (spans, _) = snapshot();
        let after = spans.iter().find(|s| s.name == "panic.after").expect("recorded");
        assert_eq!(after.parent, outer_id);
        crate::init(TelemetryConfig::Off);
    }

    #[test]
    fn truncate_pop_repairs_leaked_frames() {
        let _guard = crate::test_lock();
        crate::init(TelemetryConfig::Full);
        crate::reset();
        {
            let outer = span("leak.outer");
            let inner = span("leak.inner");
            // Drop out of order: outer first. Its truncate-at-own-id pop
            // clears the leaked inner frame too.
            drop(outer);
            assert_eq!(stack_depth(), 0);
            drop(inner);
            assert_eq!(stack_depth(), 0);
        }
        crate::init(TelemetryConfig::Off);
    }

    #[test]
    fn events_attach_to_innermost_span() {
        let _guard = crate::test_lock();
        crate::init(TelemetryConfig::Full);
        crate::reset();
        let parent_id;
        {
            let s = span("evt.parent");
            parent_id = s.id();
            event("evt.note", "something happened");
        }
        let (_, events) = snapshot();
        let e = events.iter().find(|e| e.name == "evt.note").expect("event recorded");
        assert_eq!(e.parent, parent_id);
        assert_eq!(e.detail, "something happened");
        crate::init(TelemetryConfig::Off);
    }

    #[test]
    fn self_time_subtracts_children() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "root",
                detail: String::new(),
                tid: 1,
                start_us: 0,
                dur_us: 100,
                args: Vec::new(),
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "child",
                detail: String::new(),
                tid: 1,
                start_us: 10,
                dur_us: 30,
                args: Vec::new(),
            },
            SpanRecord {
                id: 3,
                parent: 1,
                name: "child",
                detail: String::new(),
                tid: 1,
                start_us: 50,
                dur_us: 40,
                args: Vec::new(),
            },
        ];
        let selfs = self_times(&spans);
        assert_eq!(selfs[&1], 30);
        assert_eq!(selfs[&2], 30);
        assert_eq!(selfs[&3], 40);
    }
}
