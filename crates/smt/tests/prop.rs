//! Property tests: the DPLL(T) solver against a brute-force oracle.
//!
//! The fragment has a small-model property: integer atoms use constants in
//! a narrow range and only difference/bound constraints, so if a formula
//! is satisfiable at all it is satisfiable with every integer in a window
//! slightly wider than the constant range, refs drawn from {null, #1, #2,
//! #3}, and strings from the mentioned literals plus one fresh value.
//! Brute-force enumeration over that domain is therefore a complete
//! reference solver.

use proptest::prelude::*;

use lisa_smt::model::{Model, Value};
use lisa_smt::solver::{implies, is_sat, violates, Solver};
use lisa_smt::term::{CmpOp, Term};

const INT_VARS: [&str; 2] = ["x", "y"];
const BOOL_VARS: [&str; 2] = ["p", "q"];
const REF_VARS: [&str; 2] = ["r", "t"];
const STR_VARS: [&str; 1] = ["s"];
const STR_LITS: [&str; 2] = ["open", "closed"];

fn arb_atom() -> impl Strategy<Value = Term> {
    prop_oneof![
        proptest::sample::select(&BOOL_VARS[..]).prop_map(Term::bool_var),
        (
            proptest::sample::select(&INT_VARS[..]),
            arb_cmpop(),
            -3i64..=3,
        )
            .prop_map(|(v, op, c)| Term::int_cmp_c(v, op, c)),
        (
            proptest::sample::select(&INT_VARS[..]),
            arb_cmpop(),
            proptest::sample::select(&INT_VARS[..]),
        )
            .prop_map(|(a, op, b)| Term::int_cmp_v(a, op, b)),
        proptest::sample::select(&REF_VARS[..]).prop_map(Term::is_null),
        (
            proptest::sample::select(&REF_VARS[..]),
            proptest::sample::select(&REF_VARS[..]),
        )
            .prop_map(|(a, b)| Term::ref_eq(a, b)),
        (
            proptest::sample::select(&STR_VARS[..]),
            proptest::sample::select(&STR_LITS[..]),
        )
            .prop_map(|(v, l)| Term::str_eq_lit(v, l)),
    ]
}

fn arb_cmpop() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    arb_atom().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Term::not),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Term::and),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Term::or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.iff(b)),
        ]
    })
}

/// Enumerate the small-model domain and report whether any assignment
/// satisfies `t`.
fn brute_force_sat(t: &Term) -> bool {
    let ints: Vec<i64> = (-6..=6).collect();
    let refs: Vec<Option<u64>> = vec![None, Some(1), Some(2)];
    let strs = ["open", "closed", "$other"];
    for &x in &ints {
        for &y in &ints {
            for pb in [false, true] {
                for qb in [false, true] {
                    for &rv in &refs {
                        for &tv in &refs {
                            for sv in strs {
                                let mut m = Model::new();
                                m.set("x", Value::Int(x));
                                m.set("y", Value::Int(y));
                                m.set("p", Value::Bool(pb));
                                m.set("q", Value::Bool(qb));
                                m.set("r", Value::Ref(rv));
                                m.set("t", Value::Ref(tv));
                                m.set("s", Value::Str(sv.to_string()));
                                if m.eval(t) {
                                    return true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force(t in arb_term()) {
        let expected = brute_force_sat(&t);
        let got = is_sat(&t);
        prop_assert_eq!(got, expected, "term: {}", t);
    }

    #[test]
    fn sat_models_validate(t in arb_term()) {
        let mut solver = Solver::new();
        if let lisa_smt::SatResult::Sat(m) = solver.check(&t) {
            prop_assert!(m.validated, "model {} does not satisfy {}", m, t);
        }
    }

    #[test]
    fn preprocess_preserves_truth_pointwise(t in arb_term(), x in -6i64..=6, y in -6i64..=6,
                                            pb in any::<bool>(), qb in any::<bool>(),
                                            r in 0usize..3, tv in 0usize..3, s in 0usize..3) {
        let refs = [None, Some(1), Some(2)];
        let strs = ["open", "closed", "$other"];
        let mut m = Model::new();
        m.set("x", Value::Int(x));
        m.set("y", Value::Int(y));
        m.set("p", Value::Bool(pb));
        m.set("q", Value::Bool(qb));
        m.set("r", Value::Ref(refs[r]));
        m.set("t", Value::Ref(refs[tv]));
        m.set("s", Value::Str(strs[s].to_string()));
        let pre = lisa_smt::preprocess(&t);
        prop_assert_eq!(m.eval(&t), m.eval(&pre), "term: {} pre: {}", t, pre);
    }

    #[test]
    fn violates_is_negated_implication(pi in arb_term(), checker in arb_term()) {
        let v = violates(&pi, &checker).is_some();
        prop_assert_eq!(v, !implies(&pi, &checker));
    }

    #[test]
    fn double_negation_roundtrip(t in arb_term()) {
        prop_assert_eq!(is_sat(&t), is_sat(&t.clone().not().not()));
    }

    #[test]
    fn conjunction_with_negation_unsat(t in arb_term()) {
        prop_assert!(!is_sat(&Term::and([t.clone(), t.not()])));
    }

    #[test]
    fn parser_roundtrips_display(t in arb_term()) {
        // Display output must re-parse to an equivalent term (sort hints
        // supplied for ref/str var-var comparisons).
        let mut hints = std::collections::HashMap::new();
        for (v, sort) in t.vars() {
            hints.insert(v, sort);
        }
        let printed = t.to_string();
        let reparsed = lisa_smt::parse_cond_with(&printed, &hints)
            .map_err(|e| TestCaseError::fail(format!("reparse of {printed:?}: {e}")))?;
        prop_assert!(lisa_smt::equivalent(&t, &reparsed),
                     "printed {} reparsed {}", printed, reparsed);
    }
}
