//! Property tests: the DPLL(T) solver against a brute-force oracle.
//!
//! The fragment has a small-model property: integer atoms use constants in
//! a narrow range and only difference/bound constraints, so if a formula
//! is satisfiable at all it is satisfiable with every integer in a window
//! slightly wider than the constant range, refs drawn from {null, #1, #2,
//! #3}, and strings from the mentioned literals plus one fresh value.
//! Brute-force enumeration over that domain is therefore a complete
//! reference solver.
//!
//! Randomness comes from `lisa_util::Prng` with fixed seeds, so every
//! case is reproducible without an external property-testing crate.

use lisa_smt::model::{Model, Value};
use lisa_smt::solver::{implies, is_sat, violates, Solver};
use lisa_smt::term::{CmpOp, Term};
use lisa_util::Prng;

const INT_VARS: [&str; 2] = ["x", "y"];
const BOOL_VARS: [&str; 2] = ["p", "q"];
const REF_VARS: [&str; 2] = ["r", "t"];
const STR_VARS: [&str; 1] = ["s"];
const STR_LITS: [&str; 2] = ["open", "closed"];

const CMP_OPS: [CmpOp; 6] =
    [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

fn gen_atom(rng: &mut Prng) -> Term {
    match rng.gen_index(6) {
        0 => Term::bool_var(*rng.pick(&BOOL_VARS)),
        1 => {
            let v = *rng.pick(&INT_VARS);
            let op = *rng.pick(&CMP_OPS);
            Term::int_cmp_c(v, op, rng.gen_range_i64(-3, 3))
        }
        2 => {
            let a = *rng.pick(&INT_VARS);
            let op = *rng.pick(&CMP_OPS);
            let b = *rng.pick(&INT_VARS);
            Term::int_cmp_v(a, op, b)
        }
        3 => Term::is_null(*rng.pick(&REF_VARS)),
        4 => Term::ref_eq(*rng.pick(&REF_VARS), *rng.pick(&REF_VARS)),
        _ => Term::str_eq_lit(*rng.pick(&STR_VARS), *rng.pick(&STR_LITS)),
    }
}

/// Random term with bounded nesting depth, mirroring proptest's
/// `prop_recursive(3, ..)` shape: at depth 0 only atoms are produced.
fn gen_term(rng: &mut Prng, depth: usize) -> Term {
    if depth == 0 || rng.gen_bool(0.35) {
        return gen_atom(rng);
    }
    match rng.gen_index(5) {
        0 => gen_term(rng, depth - 1).not(),
        1 => {
            let n = 2 + rng.gen_index(2);
            Term::and((0..n).map(|_| gen_term(rng, depth - 1)).collect::<Vec<_>>())
        }
        2 => {
            let n = 2 + rng.gen_index(2);
            Term::or((0..n).map(|_| gen_term(rng, depth - 1)).collect::<Vec<_>>())
        }
        3 => gen_term(rng, depth - 1).implies(gen_term(rng, depth - 1)),
        _ => gen_term(rng, depth - 1).iff(gen_term(rng, depth - 1)),
    }
}

/// Enumerate the small-model domain and report whether any assignment
/// satisfies `t`.
fn brute_force_sat(t: &Term) -> bool {
    let ints: Vec<i64> = (-6..=6).collect();
    let refs: Vec<Option<u64>> = vec![None, Some(1), Some(2)];
    let strs = ["open", "closed", "$other"];
    for &x in &ints {
        for &y in &ints {
            for pb in [false, true] {
                for qb in [false, true] {
                    for &rv in &refs {
                        for &tv in &refs {
                            for sv in strs {
                                let mut m = Model::new();
                                m.set("x", Value::Int(x));
                                m.set("y", Value::Int(y));
                                m.set("p", Value::Bool(pb));
                                m.set("q", Value::Bool(qb));
                                m.set("r", Value::Ref(rv));
                                m.set("t", Value::Ref(tv));
                                m.set("s", Value::Str(sv.to_string()));
                                if m.eval(t) {
                                    return true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    false
}

fn random_model(rng: &mut Prng) -> Model {
    let refs = [None, Some(1), Some(2)];
    let strs = ["open", "closed", "$other"];
    let mut m = Model::new();
    m.set("x", Value::Int(rng.gen_range_i64(-6, 6)));
    m.set("y", Value::Int(rng.gen_range_i64(-6, 6)));
    m.set("p", Value::Bool(rng.gen_bool(0.5)));
    m.set("q", Value::Bool(rng.gen_bool(0.5)));
    m.set("r", Value::Ref(*rng.pick(&refs)));
    m.set("t", Value::Ref(*rng.pick(&refs)));
    m.set("s", Value::Str(rng.pick(&strs).to_string()));
    m
}

#[test]
fn solver_agrees_with_brute_force() {
    let mut rng = Prng::seed_from_u64(0xabcd_0000);
    for case in 0..256 {
        let t = gen_term(&mut rng, 3);
        let expected = brute_force_sat(&t);
        let got = is_sat(&t);
        assert_eq!(got, expected, "case {case}, term: {t}");
    }
}

#[test]
fn sat_models_validate() {
    let mut rng = Prng::seed_from_u64(0xabcd_0001);
    for case in 0..256 {
        let t = gen_term(&mut rng, 3);
        let mut solver = Solver::new();
        if let lisa_smt::SatResult::Sat(m) = solver.check(&t) {
            assert!(m.validated, "case {case}: model {m} does not satisfy {t}");
        }
    }
}

#[test]
fn preprocess_preserves_truth_pointwise() {
    let mut rng = Prng::seed_from_u64(0xabcd_0002);
    for case in 0..256 {
        let t = gen_term(&mut rng, 3);
        let m = random_model(&mut rng);
        let pre = lisa_smt::preprocess(&t);
        assert_eq!(m.eval(&t), m.eval(&pre), "case {case}: term: {t} pre: {pre}");
    }
}

#[test]
fn violates_is_negated_implication() {
    let mut rng = Prng::seed_from_u64(0xabcd_0003);
    for case in 0..192 {
        let pi = gen_term(&mut rng, 3);
        let checker = gen_term(&mut rng, 3);
        let v = violates(&pi, &checker).is_some();
        assert_eq!(v, !implies(&pi, &checker), "case {case}: pi {pi} checker {checker}");
    }
}

#[test]
fn double_negation_roundtrip() {
    let mut rng = Prng::seed_from_u64(0xabcd_0004);
    for case in 0..256 {
        let t = gen_term(&mut rng, 3);
        assert_eq!(is_sat(&t), is_sat(&t.clone().not().not()), "case {case}: {t}");
    }
}

#[test]
fn conjunction_with_negation_unsat() {
    let mut rng = Prng::seed_from_u64(0xabcd_0005);
    for case in 0..256 {
        let t = gen_term(&mut rng, 3);
        assert!(!is_sat(&Term::and([t.clone(), t.clone().not()])), "case {case}: {t}");
    }
}

#[test]
fn parser_roundtrips_display() {
    // Display output must re-parse to an equivalent term (sort hints
    // supplied for ref/str var-var comparisons).
    let mut rng = Prng::seed_from_u64(0xabcd_0006);
    for case in 0..256 {
        let t = gen_term(&mut rng, 3);
        let mut hints = std::collections::HashMap::new();
        for (v, sort) in t.vars() {
            hints.insert(v, sort);
        }
        let printed = t.to_string();
        let reparsed = lisa_smt::parse_cond_with(&printed, &hints)
            .unwrap_or_else(|e| panic!("case {case}: reparse of {printed:?}: {e}"));
        assert!(
            lisa_smt::equivalent(&t, &reparsed),
            "case {case}: printed {printed} reparsed {reparsed}"
        );
    }
}

/// Canonical-rendering equality for violation outcomes: witness models
/// are compared by `Display` (sorted keys; `Debug` leaks HashMap order,
/// which differs even between two fresh solves of the same query).
fn outcomes_agree(a: &lisa_smt::ViolationOutcome, b: &lisa_smt::ViolationOutcome) -> bool {
    use lisa_smt::ViolationOutcome as V;
    match (a, b) {
        (V::Violated(ma), V::Violated(mb)) => {
            ma.to_string() == mb.to_string() && ma.validated == mb.validated
        }
        (V::Verified, V::Verified) => true,
        (V::Unknown { reason: ra }, V::Unknown { reason: rb }) => ra == rb,
        _ => false,
    }
}

#[test]
fn session_agrees_with_fresh_solver_over_random_sequences() {
    // The tentpole invariant: a whole sequence of queries through one
    // SolverSession — clauses learned on earlier π carried into later
    // ones — answers every query exactly as a fresh solver does,
    // witness models included.
    let mut rng = Prng::seed_from_u64(0xabcd_0008);
    for case in 0..64 {
        let checker = gen_term(&mut rng, 3);
        let session = lisa_smt::SolverSession::new(&checker);
        for step in 0..6 {
            let pi = gen_term(&mut rng, 3);
            let fresh = lisa_smt::violates_budgeted(&pi, &checker, None);
            let via_session = session.violates_budgeted(&pi, None);
            assert!(
                outcomes_agree(&fresh, &via_session),
                "case {case} step {step}: pi {pi} checker {checker}: \
                 fresh {fresh:?} vs session {via_session:?}"
            );
        }
    }
}

#[test]
fn budget_exhausted_query_never_poisons_later_session_answers() {
    // Session robustness: a budget-starved (`Unknown`) query in the
    // middle of a session must leave every subsequent query answering
    // exactly as a fresh solver would — exhaustion is an answer about
    // one query's budget, never contagion into the shared clause
    // database.
    let mut rng = Prng::seed_from_u64(0xabcd_0009);
    for case in 0..64 {
        let checker = gen_term(&mut rng, 3);
        let session = lisa_smt::SolverSession::new(&checker);
        for step in 0..8 {
            let pi = gen_term(&mut rng, 3);
            if step % 2 == 1 {
                // Zero conflict budget: anything needing real search
                // exhausts. Whatever this returns, it must not disturb
                // the unbudgeted queries around it.
                let _ = session.violates_budgeted(&pi, Some(0));
                continue;
            }
            let fresh = lisa_smt::violates_budgeted(&pi, &checker, None);
            let via_session = session.violates_budgeted(&pi, None);
            assert!(
                outcomes_agree(&fresh, &via_session),
                "case {case} step {step}: pi {pi} checker {checker}: \
                 fresh {fresh:?} vs session {via_session:?} \
                 (after interleaved budget-exhausted queries)"
            );
        }
        let stats = session.stats();
        assert_eq!(stats.budget_isolated, 4, "case {case}: every odd step isolated");
    }
}

#[test]
fn budgeted_session_queries_match_fresh_budgeted_answers() {
    // Budgeted queries run isolated on a throwaway solver, so even their
    // `Unknown { reason }` strings must match the fresh path's output
    // byte for byte.
    let mut rng = Prng::seed_from_u64(0xabcd_000a);
    for case in 0..64 {
        let checker = gen_term(&mut rng, 3);
        let session = lisa_smt::SolverSession::new(&checker);
        for (step, budget) in [Some(0), Some(1_000_000), None, Some(0)].into_iter().enumerate() {
            let pi = gen_term(&mut rng, 3);
            let fresh = lisa_smt::violates_budgeted(&pi, &checker, budget);
            let via_session = session.violates_budgeted(&pi, budget);
            assert!(
                outcomes_agree(&fresh, &via_session),
                "case {case} step {step} budget {budget:?}: pi {pi} checker {checker}: \
                 fresh {fresh:?} vs session {via_session:?}"
            );
        }
    }
}

#[test]
fn generous_budget_agrees_with_unbudgeted_solver() {
    // A budget large enough never to trip must leave the verdict exactly
    // where the unbudgeted solver puts it — `Unknown` is reserved for
    // genuine exhaustion, not a third answer the solver may wander into.
    let mut rng = Prng::seed_from_u64(0xabcd_0007);
    for case in 0..256 {
        let t = gen_term(&mut rng, 3);
        let unbudgeted = is_sat(&t);
        let r = Solver::with_conflict_budget(1_000_000).check(&t);
        assert!(
            !matches!(r, lisa_smt::SatResult::Unknown { .. }),
            "case {case}: generous budget must not exhaust on {t}"
        );
        assert_eq!(r.is_sat(), unbudgeted, "case {case}: {t}");
    }
}
